"""ReproService: fault injection as a long-running, multi-tenant API.

One process owns one result store and serves campaign submissions over
HTTP (see docs/SERVICE.md for the wire API):

- ``POST /campaigns`` — validate (:mod:`.spec`), admit (:mod:`.admission`),
  queue; returns the campaign id immediately.
- ``GET /campaigns/{id}`` — lifecycle status plus live partial counts.
- ``GET /campaigns/{id}/events`` — the campaign's lab event stream as
  close-delimited NDJSON (recent history replays first).
- ``GET /campaigns/{id}/results`` — final counts with provenance
  (how many injections were executed vs served from the store).

Concurrency model: the HTTP server, the scheduler, and all campaign
bookkeeping run on one asyncio loop (optionally hosted on a background
thread via :meth:`ReproService.start`); campaign execution blocks, so
each running campaign occupies a slot in a thread pool. Under the
local fabric each slot forks its own shard workers; under the cluster
fabric (``cluster_workers > 0``) all slots lease shards through one
:class:`~repro.cluster.coordinator.ClusterCoordinator`, whose
fair-share scheduler interleaves their grants by priority.

Duplicate submissions are cheap twice over. An identical spec
(*digest*, which excludes execution knobs) submitted while the
original is still in flight is **coalesced**: the follower occupies no
scheduler slot and adopts the leader's outcome. An identical spec
submitted after completion re-runs, but every shard is served from the
content-addressed store, so it costs ~0 compute
(``injections_executed == 0`` in its result proves it).

Graceful drain (SIGTERM/SIGINT): stop admitting (503), cancel queued
campaigns, interrupt running ones at their next shard boundary
(completed shards are already persisted), write a restart manifest,
exit. Interrupted specs resume from the store when resubmitted.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import threading
import time
from typing import Dict, List, Optional, Tuple

from ..chaos.hooks import chaos_point
from ..chaos.policy import SERVICE_POLL
from ..lab.events import CampaignInterrupted, EventBus
from .admission import AdmissionController, QuotaExceeded, TenantQuotas
from .http import (
    HttpError,
    HttpRequest,
    read_request,
    send_json,
    send_ndjson_line,
    start_ndjson,
)
from .runner import CampaignRunner
from .spec import CampaignRequest, SpecError, parse_request
from .state import (
    FAILED,
    INTERRUPTED,
    QUEUED,
    RUNNING,
    SUCCEEDED,
    TERMINAL,
    Campaign,
    CampaignFeed,
    load_manifest,
    result_summary,
    write_manifest,
)

_CAMPAIGN_SEQ = itertools.count(1)

#: Exit status of a chaos-"kill"ed service process (SIGKILL stand-in:
#: no drain, no manifest write beyond what already landed).
KILL_STATUS = 9


class ReproService:
    """The always-on campaign service. See the module docstring for
    the architecture; lifecycle::

        service = ReproService(store_path, port=0)
        host, port = service.start()       # background loop thread
        ...
        service.initiate_drain()           # or SIGTERM via serve_forever
        service.stop()
    """

    def __init__(
        self,
        store_path: str,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        quotas: Optional[TenantQuotas] = None,
        quota_overrides: Optional[Dict[str, TenantQuotas]] = None,
        cluster_workers: int = 0,
        lease_timeout: float = 30.0,
        max_running: int = 2,
        manifest_path: Optional[str] = None,
        resume_manifest: bool = True,
    ):
        self.store_path = store_path
        self.manifest_path = manifest_path or f"{store_path}.manifest.json"
        #: Cold-start recovery: resubmit the manifest's interrupted and
        #: queued campaigns on start (each resumes from its banked
        #: store shards). ``False`` restores the old explicit-resubmit
        #: behaviour.
        self.resume_manifest = resume_manifest
        self.admission = AdmissionController(quotas, quota_overrides)
        self.max_running = max(1, max_running)
        self.cluster_workers = cluster_workers
        self.lease_timeout = lease_timeout
        self._requested = (host, port)
        self.host: Optional[str] = None
        self.port: Optional[int] = None

        self._campaigns: Dict[str, Campaign] = {}
        self._order: List[str] = []          # submission order (for listing)
        self._pending: List[str] = []        # queued, scheduler-visible
        self._running: Dict[str, Campaign] = {}
        self._followers: Dict[str, List[str]] = {}   # leader id -> followers
        self._inflight: Dict[str, str] = {}  # spec digest -> leader id

        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor = None
        self._runner: Optional[CampaignRunner] = None
        self._coordinator = None
        self._worker_procs: List = []

        self._draining = False
        #: Cross-thread drain signal: local-fabric interrupt guards
        #: (EventBus subscribers on runner threads) poll it per event.
        self._drain_flag = threading.Event()
        #: Set once drain has fully settled (manifest written).
        self._drained = threading.Event()
        self._stopped = False

    # Lifecycle ---------------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Bind and serve on a background loop thread; returns the
        bound (host, port) — port 0 picks an ephemeral one."""
        from concurrent.futures import ThreadPoolExecutor

        if self.cluster_workers:
            from ..cluster.cli import spawn_local_workers
            from ..cluster.coordinator import ClusterCoordinator
            from ..cluster.lease import LeasePolicy

            self._coordinator = ClusterCoordinator(
                store_path=self.store_path,
                policy=LeasePolicy(lease_timeout=self.lease_timeout),
            )
            _, cport = self._coordinator.start()
            self._worker_procs = spawn_local_workers(
                "127.0.0.1", cport, self.cluster_workers)
            # Coordinator-side events (lease grants, shard commits)
            # carry the campaign tag; route them into that campaign's
            # feed. Fires on the coordinator's loop thread — publish
            # is thread-safe.
            self._coordinator.events.subscribe(self._route_cluster_event)

        self._runner = CampaignRunner(self.store_path,
                                      coordinator=self._coordinator)
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_running, thread_name_prefix="repro-campaign")

        ready = threading.Event()
        failure: List[BaseException] = []

        def _run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                host, port = self._requested
                self._server = loop.run_until_complete(
                    asyncio.start_server(self._serve, host, port))
                sock = self._server.sockets[0]
                self.host, self.port = sock.getsockname()[:2]
            except BaseException as exc:
                failure.append(exc)
                ready.set()
                return
            ready.set()
            try:
                loop.run_forever()
            finally:
                pending = asyncio.all_tasks(loop)
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True))
                loop.run_until_complete(loop.shutdown_asyncgens())
                loop.close()

        self._thread = threading.Thread(target=_run, daemon=True,
                                        name="repro-service")
        self._thread.start()
        ready.wait()
        if failure:
            self._teardown_fabric()
            raise failure[0]
        if self.resume_manifest:
            self._loop.call_soon_threadsafe(
                lambda: self._loop.create_task(self._recover_from_manifest()))
        return self.host, self.port

    def initiate_drain(self) -> None:
        """Thread/signal-safe: begin a graceful drain. Returns at
        once; :meth:`wait_drained` / :meth:`stop` observe completion."""
        self._drain_flag.set()
        if self._loop is not None:
            self._loop.call_soon_threadsafe(
                lambda: self._loop.create_task(self._drain()))

    def wait_drained(self, timeout: Optional[float] = None) -> bool:
        return self._drained.wait(timeout)

    def stop(self, drain_timeout: float = 60.0) -> None:
        """Drain (if not already) and tear everything down."""
        if self._stopped:
            return
        self._stopped = True
        if self._loop is not None:
            self.initiate_drain()
            self.wait_drained(drain_timeout)
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10.0)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        self._teardown_fabric()

    def serve_forever(self) -> int:
        """CLI mode: start, handle SIGTERM/SIGINT as graceful drain,
        block until drained, tear down. Returns an exit code."""
        import signal

        host, port = self.start()
        print(f"-- repro service listening on {host}:{port} "
              f"(store {self.store_path})", flush=True)

        def _on_signal(signum, frame):
            print(f"-- signal {signum}: draining "
                  "(finishing leased shards, admitting nothing)", flush=True)
            self.initiate_drain()

        previous = {}
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous[signum] = signal.signal(signum, _on_signal)
        try:
            while not self.wait_drained(timeout=0.5):
                pass
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
        self.stop()
        print(f"-- drained; manifest at {self.manifest_path}", flush=True)
        return 0

    def _teardown_fabric(self) -> None:
        if self._coordinator is not None:
            self._coordinator.stop()
            self._coordinator = None
        if self._worker_procs:
            from ..cluster.cli import reap_workers

            reap_workers(self._worker_procs)
            self._worker_procs = []

    # Submission / scheduling (loop thread) -----------------------------------

    def _submit(self, tenant: str, request: CampaignRequest) -> Campaign:
        if self._draining:
            raise HttpError(503, {"code": "service-draining",
                                  "message": "service is draining; "
                                             "resubmit after restart"})
        digest = request.digest()
        # Charge admission before creating any record: a rejected
        # submission leaves no trace.
        self.admission.admit(tenant, request.injections)

        campaign_id = f"c{next(_CAMPAIGN_SEQ):04d}-{digest[:8]}"
        campaign = Campaign(
            id=campaign_id, tenant=tenant, request=request, digest=digest,
            feed=CampaignFeed(self._loop),
        )
        self._campaigns[campaign_id] = campaign
        self._order.append(campaign_id)

        leader_id = self._inflight.get(digest)
        if leader_id is not None:
            # Identical spec already in flight: adopt its outcome
            # instead of queueing a duplicate (bit-identical by the
            # determinism contract, so nothing is lost).
            campaign.coalesced_with = leader_id
            self._followers.setdefault(leader_id, []).append(campaign_id)
            campaign.feed.publish({
                "kind": "campaign-coalesced", "ts": time.time(),
                "campaign": campaign_id, "leader": leader_id,
            })
        else:
            self._inflight[digest] = campaign_id
            self._pending.append(campaign_id)
            self._pump()
        return campaign

    def _pump(self) -> None:
        """Start queued campaigns while slots are free: highest
        priority first, then submission order."""
        while (not self._draining and self._pending
               and len(self._running) < self.max_running):
            best = max(self._pending,
                       key=lambda cid: (self._campaigns[cid].request.priority,
                                        -self._order.index(cid)))
            self._pending.remove(best)
            campaign = self._campaigns[best]
            campaign.status = RUNNING
            campaign.started = time.time()
            self._running[best] = campaign
            self._loop.create_task(self._run_one(campaign))

    async def _recover_from_manifest(self) -> None:
        """Cold-start recovery (loop thread): resubmit every campaign
        the previous incarnation cut short. The manifest supplies the
        specs; the content-addressed store supplies the work already
        done — each resubmission replays its banked shard prefix for
        free and executes only the remainder. A missing or torn
        manifest (checksum mismatch) recovers nothing, loudly doing
        nothing rather than quietly doing the wrong thing."""
        payload = load_manifest(self.manifest_path)
        if payload is None:
            return
        for row in payload.get("campaigns", []):
            if row.get("status") not in (INTERRUPTED, QUEUED):
                continue
            try:
                request = parse_request(row.get("spec") or {})
                campaign = self._submit(
                    str(row.get("tenant") or "anonymous"), request)
            except (SpecError, QuotaExceeded, HttpError):
                continue  # stale/over-quota rows never block startup
            campaign.resumed_from = str(row.get("id"))
            banked_shards = banked_injections = None
            spec_key = (row.get("progress") or {}).get("spec_key")
            if spec_key:
                banked_shards, banked_injections = self._probe_banked(
                    str(spec_key))
            campaign.feed.publish({
                "kind": "campaign-resumed", "ts": time.time(),
                "campaign": campaign.id,
                "resumed_from": campaign.resumed_from,
                "banked_shards": banked_shards,
                "banked_injections": banked_injections,
            })

    def _probe_banked(self, spec_key: str) -> Tuple[int, int]:
        """(shards, injections) of the contiguous completed prefix the
        store already holds for ``spec_key`` — the part of a recovered
        campaign that costs nothing to 're'-execute."""
        from ..lab.store import ResultStore

        store = ResultStore(self.store_path)
        try:
            shards, injections, _ = store.spec_progress(spec_key)
        finally:
            store.close()
        return shards, injections

    async def _run_one(self, campaign: Campaign) -> None:
        try:
            outcome = await self._loop.run_in_executor(
                self._executor, self._run_campaign_sync, campaign)
        except (CampaignInterrupted, KeyboardInterrupt):
            self._settle(campaign, INTERRUPTED, error={
                "code": "interrupted",
                "message": "service drained before the campaign finished; "
                           "completed shards are persisted — resubmit the "
                           "identical spec to resume",
            })
            return
        except BaseException as exc:
            self._settle(campaign, FAILED, error={
                "code": "campaign-failed",
                "message": f"{type(exc).__name__}: {exc}",
            })
            return

        summary = result_summary(outcome)
        info = outcome.info
        if (self._draining and info.stopped_early
                and (campaign.request.ci_target is None
                     or (info.ci_halfwidth or 1.0)
                     > campaign.request.ci_target)):
            # Cluster-fabric drains don't raise: the cell returns its
            # completed contiguous prefix. Early stop during a drain
            # that the adaptive rule can't claim is an interruption.
            self._settle(campaign, INTERRUPTED, result=summary, error={
                "code": "interrupted",
                "message": "drained mid-campaign; partial counts cover the "
                           "completed shard prefix only",
            })
            return
        self._settle(campaign, SUCCEEDED, result=summary)

    def _settle(self, campaign: Campaign, status: str, *,
                result: Optional[Dict] = None,
                error: Optional[Dict] = None) -> None:
        """Terminal transition: record, release, resolve followers."""
        campaign.status = status
        campaign.result = result
        campaign.error = error
        campaign.finished = time.time()
        campaign.feed.publish({
            "kind": "campaign-settled", "ts": campaign.finished,
            "campaign": campaign.id, "status": status,
        })
        campaign.feed.close()
        self._running.pop(campaign.id, None)
        self.admission.release(campaign.tenant, campaign.request.injections)
        if self._inflight.get(campaign.digest) == campaign.id:
            del self._inflight[campaign.digest]
        for follower_id in self._followers.pop(campaign.id, ()):
            follower = self._campaigns[follower_id]
            follower.status = status
            follower.result = result
            follower.error = error
            follower.started = follower.started or campaign.started
            follower.finished = campaign.finished
            follower.feed.publish({
                "kind": "campaign-settled", "ts": campaign.finished,
                "campaign": follower_id, "status": status,
                "leader": campaign.id,
            })
            follower.feed.close()
            self.admission.release(follower.tenant,
                                   follower.request.injections)
        self._pump()

    # Campaign execution (runner threads) -------------------------------------

    def _run_campaign_sync(self, campaign: Campaign):
        bus = EventBus()
        feed = campaign.feed
        progress = campaign.progress

        def publish(event) -> None:
            data = event.as_dict()
            data["campaign"] = campaign.id
            if event.kind == "campaign-started":
                progress["shards_total"] = event.data.get("shards", 0)
                progress["injections_total"] = event.data.get("injections", 0)
                # Stashed so a restart manifest can tell the next
                # incarnation where this campaign's rows live.
                if event.data.get("spec_key"):
                    progress["spec_key"] = event.data["spec_key"]
            elif event.kind in ("shard-completed", "shard-store-hit"):
                progress["shards_done"] = progress.get("shards_done", 0) + 1
                progress["injections_done"] = (
                    progress.get("injections_done", 0)
                    + int(event.data.get("n", 0)))
            feed.publish(data)
            # The service-restart seam, pinned to event kinds so a
            # scenario can die at an exact point in a campaign's life:
            # "kill" is SIGKILL (no drain, no manifest); "drain" is
            # SIGTERM (graceful: manifest written, then the interrupt
            # guard below fires at this very shard boundary).
            rule = chaos_point("service.event", kind=event.kind,
                               campaign=campaign.id)
            if rule is not None:
                if rule.action == "kill":
                    os._exit(KILL_STATUS)
                elif rule.action == "drain":
                    self.initiate_drain()
            # Local fabric: honour a drain at the next shard boundary
            # (the event fires after the shard is persisted, so nothing
            # is lost). Cluster cells drain inside the coordinator.
            if (self._coordinator is None and self._drain_flag.is_set()
                    and event.kind != "campaign-finished"):
                raise CampaignInterrupted("service draining")

        bus.subscribe(publish)
        return self._runner.run_request(campaign.request, events=bus,
                                        campaign_id=campaign.id)

    def _route_cluster_event(self, event) -> None:
        """Coordinator bus -> per-campaign feed, by campaign tag.
        Runs on the coordinator's loop thread."""
        campaign_id = event.data.get("campaign")
        if not campaign_id:
            return
        campaign = self._campaigns.get(campaign_id)
        if campaign is not None:
            data = event.as_dict()
            campaign.feed.publish(data)

    # Drain -------------------------------------------------------------------

    async def _drain(self) -> None:
        if self._draining:
            return
        self._draining = True
        # Queued (never started) campaigns are cancelled outright;
        # their specs live on in the manifest.
        for campaign_id in list(self._pending):
            self._pending.remove(campaign_id)
            self._settle(self._campaigns[campaign_id], INTERRUPTED, error={
                "code": "interrupted",
                "message": "cancelled while queued: service drained",
            })
        if self._coordinator is not None:
            self._coordinator.request_drain()
        while self._running:
            await asyncio.sleep(SERVICE_POLL.backoff)
        write_manifest(self.manifest_path,
                       [self._campaigns[cid] for cid in self._order],
                       reason="drain")
        if self._server is not None:
            self._server.close()
        self._drained.set()

    # HTTP --------------------------------------------------------------------

    async def _serve(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        try:
            try:
                request = await read_request(reader)
                if request is None:
                    return
                await self._route(request, writer)
            except HttpError as exc:
                await send_json(writer, exc.status, {"error": exc.payload})
            except (ConnectionError, OSError):
                pass
            except Exception as exc:
                try:
                    await send_json(writer, 500, {"error": {
                        "code": "internal",
                        "message": f"{type(exc).__name__}: {exc}"}})
                except (ConnectionError, OSError):
                    pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _lookup(self, campaign_id: str) -> Campaign:
        campaign = self._campaigns.get(campaign_id)
        if campaign is None:
            raise HttpError(404, {"code": "not-found",
                                  "message": f"no campaign {campaign_id!r}"})
        return campaign

    async def _route(self, request: HttpRequest,
                     writer: asyncio.StreamWriter) -> None:
        method, path = request.method, request.path.rstrip("/") or "/"
        parts = [p for p in path.split("/") if p]

        if path == "/status" and method == "GET":
            await send_json(writer, 200, self._status_payload())
            return
        if path == "/campaigns" and method == "POST":
            await self._post_campaign(request, writer)
            return
        if path == "/campaigns" and method == "GET":
            tenant = request.headers.get("x-repro-tenant", "").strip()
            rows = [self._campaigns[cid].as_dict() for cid in self._order
                    if not tenant or self._campaigns[cid].tenant == tenant]
            await send_json(writer, 200, {"campaigns": rows})
            return
        if len(parts) >= 2 and parts[0] == "campaigns":
            if method != "GET":
                raise HttpError(405, {"code": "method-not-allowed",
                                      "message": f"{method} {path}"})
            campaign = self._lookup(parts[1])
            if len(parts) == 2:
                await send_json(writer, 200, campaign.as_dict())
                return
            if len(parts) == 3 and parts[2] == "events":
                await self._stream_events(campaign, writer)
                return
            if len(parts) == 3 and parts[2] == "results":
                await self._get_results(campaign, writer)
                return
        raise HttpError(404, {"code": "not-found",
                              "message": f"{method} {path}"})

    def _status_payload(self) -> Dict:
        by_status: Dict[str, int] = {}
        for campaign in self._campaigns.values():
            by_status[campaign.status] = by_status.get(campaign.status, 0) + 1
        payload = {
            "service": "repro",
            "store": self.store_path,
            "draining": self._draining,
            "max_running": self.max_running,
            "campaigns": by_status,
            "admission": self.admission.snapshot(),
        }
        if self._coordinator is not None:
            payload["cluster"] = {
                "workers": self._coordinator.worker_count,
                "active_sessions": self._coordinator.active_sessions,
            }
        return payload

    async def _post_campaign(self, request: HttpRequest,
                             writer: asyncio.StreamWriter) -> None:
        payload = request.json()
        try:
            spec = parse_request(payload)
        except SpecError as exc:
            raise HttpError(400, exc.as_dict()) from None
        try:
            campaign = self._submit(request.tenant, spec)
        except QuotaExceeded as exc:
            raise HttpError(429, exc.as_dict()) from None
        await send_json(writer, 201, {
            "id": campaign.id,
            "status": campaign.status,
            "digest": campaign.digest,
            "coalesced_with": campaign.coalesced_with,
        })

    async def _get_results(self, campaign: Campaign,
                           writer: asyncio.StreamWriter) -> None:
        if campaign.status not in TERMINAL:
            raise HttpError(409, {
                "code": "not-finished",
                "message": f"campaign {campaign.id} is {campaign.status}; "
                           "poll GET /campaigns/{id} or stream /events",
                "status": campaign.status,
            })
        if campaign.result is None:
            raise HttpError(409, {
                "code": "no-results",
                "message": f"campaign {campaign.id} ended {campaign.status} "
                           "without counts",
                "status": campaign.status,
                "error": campaign.error,
            })
        await send_json(writer, 200, {
            "id": campaign.id,
            "status": campaign.status,
            "spec": campaign.request.as_dict(),
            "result": campaign.result,
        })

    async def _stream_events(self, campaign: Campaign,
                             writer: asyncio.StreamWriter) -> None:
        # A coalesced follower's own feed only carries lifecycle
        # markers; stream the leader's feed (same events by
        # construction — that's what coalescing means).
        feed = campaign.feed
        if campaign.coalesced_with is not None:
            leader = self._campaigns.get(campaign.coalesced_with)
            if leader is not None:
                feed = leader.feed
        history, queue = feed.subscribe()
        await start_ndjson(writer)
        try:
            for event in history:
                await send_ndjson_line(writer, event)
            while queue is not None:
                event = await queue.get()
                if event is None:  # feed closed
                    break
                await send_ndjson_line(writer, event)
        finally:
            if queue is not None:
                feed.unsubscribe(queue)
