"""Campaign request specs: validation, normalization, content digest.

A service campaign is one cell — ``(workload, variant, fault model,
engine, budget, CI target)`` — expressed as a flat JSON object. This
module is the admission boundary's *shape* check: every field is
validated against the same registries the CLI uses (the workload
registry, the toolchain variant registry, the fault-model registry),
so a request the service accepts is exactly a request ``python -m
repro campaign`` could run, and the two produce bit-identical counts.

:func:`CampaignRequest.digest` is the request's content address over
the *outcome-determining* fields only. Execution knobs — engine,
batch, workers, priority — are excluded for the same reason the lab
store excludes them from its spec keys: counts are bit-identical
across all of them by contract. Two requests with equal digests
therefore have equal results, which is what lets the service coalesce
duplicate in-flight submissions and serve repeats from the store for
~0 compute.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Optional

from ..cpu.interpreter import registered_engines
from ..faults.campaign import CampaignConfig
from ..faults.models import DEFAULT_MODEL, model_names
from ..lab.store import digest_of
from ..toolchain import get_variant, variant_names
from ..workloads.registry import ALL as ALL_WORKLOADS

#: Per ``scale``: default (injections, shard_size) — identical to the
#: campaign CLI's ``_SCALE_DEFAULTS`` so a bare service spec and a bare
#: CLI invocation land on the same store rows.
SCALE_DEFAULTS = {"test": (40, 10), "perf": (150, 25)}

#: Hard ceiling on one campaign's injection budget, independent of
#: tenant quotas (which are usually tighter).
MAX_INJECTIONS = 1_000_000


class SpecError(ValueError):
    """A request field failed validation. Carries the structured form
    the HTTP layer returns as a 400."""

    def __init__(self, field_name: str, message: str):
        super().__init__(f"{field_name}: {message}")
        self.field = field_name
        self.message = message

    def as_dict(self) -> Dict[str, str]:
        return {"code": "invalid-spec", "field": self.field,
                "message": self.message}


@dataclass(frozen=True)
class CampaignRequest:
    """A validated campaign submission (one cell)."""

    workload: str
    version: str
    fault_model: str = DEFAULT_MODEL
    engine: str = "compiled"
    scale: str = "test"
    injections: int = 0      # 0 -> scale default
    seed: int = 2016
    shard_size: int = 0      # 0 -> scale default
    ci_target: Optional[float] = None
    batch: int = 1
    #: Local-fabric forked workers per campaign (ignored under the
    #: cluster fabric, where parallelism is the worker pool).
    workers: int = 1
    priority: int = 0

    @property
    def build_scale(self) -> str:
        return "fi" if self.scale == "perf" else "test"

    def config(self) -> CampaignConfig:
        return CampaignConfig(
            injections=self.injections, seed=self.seed,
            workers=self.workers, fault_model=self.fault_model,
            engine=self.engine, batch=self.batch,
        )

    def digest(self) -> str:
        """Content address over outcome-determining fields only."""
        return digest_of([
            1, "service-spec", self.workload, self.scale, self.version,
            self.fault_model, self.seed, self.injections, self.shard_size,
            repr(self.ci_target),
        ])

    def as_dict(self) -> Dict:
        return asdict(self)


_FIELDS = {f: True for f in (
    "workload", "version", "fault_model", "engine", "scale", "injections",
    "seed", "shard_size", "ci_target", "batch", "workers", "priority",
)}


def _as_int(payload: Dict, name: str, default: int, lo: int, hi: int) -> int:
    value = payload.get(name, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise SpecError(name, f"expected an integer, got {value!r}")
    if not lo <= value <= hi:
        raise SpecError(name, f"must be in [{lo}, {hi}], got {value}")
    return value


def parse_request(payload: object) -> CampaignRequest:
    """Validate a JSON submission into a :class:`CampaignRequest`.

    Raises :class:`SpecError` naming the offending field — the HTTP
    layer turns it into a structured 400. Unknown fields are rejected
    (a typo'd knob silently ignored would silently change nothing,
    which is worse than failing loudly).
    """
    if not isinstance(payload, dict):
        raise SpecError("body", "expected a JSON object")
    unknown = sorted(k for k in payload if k not in _FIELDS)
    if unknown:
        raise SpecError(unknown[0], "unknown field")

    scale = payload.get("scale", "test")
    if scale not in SCALE_DEFAULTS:
        raise SpecError("scale", f"must be one of {sorted(SCALE_DEFAULTS)}, "
                                 f"got {scale!r}")
    default_injections, default_shard = SCALE_DEFAULTS[scale]

    workload = payload.get("workload")
    if not isinstance(workload, str) or workload not in ALL_WORKLOADS:
        raise SpecError("workload",
                        f"unknown workload {workload!r}; see "
                        f"{', '.join(sorted(ALL_WORKLOADS))}")

    version = payload.get("version")
    if not isinstance(version, str):
        raise SpecError("version", "required: a variant registry name")
    try:
        get_variant(version)
    except KeyError:
        raise SpecError("version",
                        f"unknown variant {version!r}; see "
                        f"{', '.join(variant_names())}") from None

    fault_model = payload.get("fault_model", DEFAULT_MODEL)
    if fault_model not in model_names():
        raise SpecError("fault_model",
                        f"unknown fault model {fault_model!r}; see "
                        f"{', '.join(model_names())}")

    engine = payload.get("engine", "decoded")
    if engine not in registered_engines():
        raise SpecError("engine",
                        f"unknown engine {engine!r}; registered: "
                        f"{', '.join(registered_engines())}")

    ci_target = payload.get("ci_target")
    if ci_target is not None:
        if isinstance(ci_target, bool) or \
                not isinstance(ci_target, (int, float)):
            raise SpecError("ci_target", f"expected a number, "
                                         f"got {ci_target!r}")
        if not 0.0 < float(ci_target) < 1.0:
            raise SpecError("ci_target", "must be in (0, 1), "
                                         f"got {ci_target}")
        ci_target = float(ci_target)

    return CampaignRequest(
        workload=workload,
        version=version,
        fault_model=fault_model,
        engine=engine,
        scale=scale,
        injections=_as_int(payload, "injections", default_injections,
                           1, MAX_INJECTIONS),
        seed=_as_int(payload, "seed", 2016, 0, 2**63 - 1),
        shard_size=_as_int(payload, "shard_size", default_shard, 1, 100_000),
        ci_target=ci_target,
        batch=_as_int(payload, "batch", 1, 1, 4096),
        workers=_as_int(payload, "workers", 1, 0, 256),
        priority=_as_int(payload, "priority", 0, -100, 100),
    )
