"""``python -m repro serve`` / ``python -m repro submit``.

Examples::

    # An always-on campaign service over 2 cluster worker agents:
    python -m repro serve --port 8642 --cluster 2

    # Submit from another shell (or machine) and watch it run:
    python -m repro submit --url 127.0.0.1:8642 --tenant alice \\
        --workload histogram --version elzar --stream

    # Resubmitting the identical spec is a ~0-compute store hit:
    python -m repro submit --url 127.0.0.1:8642 --tenant alice \\
        --workload histogram --version elzar --wait

Stop the service with SIGTERM (or Ctrl-C): it stops admitting,
finishes leased shards, writes a restart manifest next to the store,
and exits cleanly.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..cpu.interpreter import registered_engines
from ..faults.models import DEFAULT_MODEL, model_names
from ..lab.store import default_store_path
from .admission import TenantQuotas
from .app import ReproService
from .client import ServiceClient, ServiceError


def _serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Run the fault-injection campaign service.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8642,
                        help="listen port (0 = ephemeral)")
    parser.add_argument("--store", default=None,
                        help="result store path (default: $REPRO_LAB_STORE "
                             "or the user cache dir)")
    parser.add_argument("--cluster", type=int, default=0, metavar="N",
                        help="lease shards to N local worker agents "
                             "instead of forking per campaign")
    parser.add_argument("--lease-timeout", type=float, default=30.0)
    parser.add_argument("--max-running", type=int, default=2,
                        help="campaigns executing concurrently "
                             "(queued beyond this)")
    parser.add_argument("--max-concurrent", type=int, default=4,
                        help="per-tenant cap on unfinished campaigns")
    parser.add_argument("--max-injections", type=int, default=100_000,
                        help="per-tenant cap on one campaign's budget")
    parser.add_argument("--max-active-injections", type=int,
                        default=250_000,
                        help="per-tenant cap on summed unfinished budgets")
    parser.add_argument("--manifest", default=None,
                        help="restart manifest path "
                             "(default: <store>.manifest.json)")
    parser.add_argument("--no-resume", action="store_true",
                        help="do not resubmit the manifest's interrupted "
                             "campaigns on startup")
    return parser


def serve_main(argv: Optional[List[str]] = None) -> int:
    args = _serve_parser().parse_args(argv)
    service = ReproService(
        args.store or default_store_path(),
        host=args.host, port=args.port,
        quotas=TenantQuotas(
            max_concurrent=args.max_concurrent,
            max_injections=args.max_injections,
            max_active_injections=args.max_active_injections,
        ),
        cluster_workers=args.cluster,
        lease_timeout=args.lease_timeout,
        max_running=args.max_running,
        manifest_path=args.manifest,
        resume_manifest=not args.no_resume,
    )
    return service.serve_forever()


def _submit_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro submit",
        description="Submit a campaign to a running repro service.",
    )
    parser.add_argument("--url", default="127.0.0.1:8642",
                        metavar="HOST:PORT")
    parser.add_argument("--tenant", default=None,
                        help="tenant name (X-Repro-Tenant header)")
    parser.add_argument("--workload", required=True)
    parser.add_argument("--version", required=True,
                        help="variant registry name "
                             "(see `python -m repro variants`)")
    parser.add_argument("--fault-model", default=DEFAULT_MODEL,
                        choices=model_names())
    parser.add_argument("--engine", default="compiled",
                        choices=registered_engines())
    parser.add_argument("--scale", default="test",
                        choices=("test", "perf"))
    parser.add_argument("--injections", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--shard-size", type=int, default=None)
    parser.add_argument("--ci-target", type=float, default=None)
    parser.add_argument("--batch", type=int, default=None)
    parser.add_argument("--workers", type=int, default=None,
                        help="forked workers (local-fabric service only)")
    parser.add_argument("--priority", type=int, default=None)
    parser.add_argument("--wait", action="store_true",
                        help="block until the campaign settles and print "
                             "its results")
    parser.add_argument("--stream", action="store_true",
                        help="stream the campaign's events (implies the "
                             "settled outcome is seen)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="with --wait/--stream: also write the final "
                             "record as JSON")
    return parser


def submit_main(argv: Optional[List[str]] = None) -> int:
    args = _submit_parser().parse_args(argv)
    host, _, port_text = args.url.rpartition(":")
    if not host or not port_text.isdigit():
        print(f"--url must be HOST:PORT, got {args.url!r}", file=sys.stderr)
        return 2
    client = ServiceClient(host, int(port_text), tenant=args.tenant)

    spec = {"workload": args.workload, "version": args.version,
            "fault_model": args.fault_model, "engine": args.engine,
            "scale": args.scale}
    for name in ("injections", "seed", "shard_size", "ci_target", "batch",
                 "workers", "priority"):
        value = getattr(args, name)
        if value is not None:
            spec[name] = value

    try:
        submitted = client.submit(spec)
    except ServiceError as exc:
        print(f"-- rejected ({exc.status}): "
              f"{json.dumps(exc.payload, sort_keys=True)}", file=sys.stderr)
        return 1
    except (ConnectionError, OSError) as exc:
        print(f"-- cannot reach {args.url}: {exc}", file=sys.stderr)
        return 1
    campaign_id = submitted["id"]
    print(f"-- campaign {campaign_id} ({submitted['status']})"
          + (f", coalesced with {submitted['coalesced_with']}"
             if submitted.get("coalesced_with") else ""))

    if args.stream:
        for event in client.stream_events(campaign_id):
            print(json.dumps(event, sort_keys=True))
    if not (args.wait or args.stream):
        return 0

    record = client.wait(campaign_id)
    print(f"-- {campaign_id}: {record['status']}")
    if record["status"] == "succeeded":
        result = record["result"]
        print(f"   counts: {json.dumps(result['counts'], sort_keys=True)}")
        print(f"   injections: {result['injections_used']} counted, "
              f"{result['injections_executed']} executed, "
              f"{result['injections_from_store']} from store")
    elif record.get("error"):
        print(f"   error: {json.dumps(record['error'], sort_keys=True)}")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(record, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"-- wrote {args.json}")
    return 0 if record["status"] == "succeeded" else 1
