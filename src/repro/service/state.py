"""Service-side campaign state: records, event feeds, restart manifest.

A :class:`Campaign` is the service's ledger entry for one submission —
who asked (tenant), what they asked for (the validated
:class:`~repro.service.spec.CampaignRequest` and its digest), where it
is in its lifecycle, and what came out. All mutation happens on the
service's event loop thread; runner threads report back through
:meth:`~repro.service.app.ReproService` callbacks that are marshalled
onto the loop, so records need no locks.

The :class:`CampaignFeed` is the one genuinely cross-thread piece: lab
:class:`~repro.lab.events.EventBus` subscribers fire on whichever
thread executes the campaign, while HTTP streaming consumers await on
the loop. The feed keeps a bounded replay ring (late subscribers see
recent history) and fans out to per-subscriber asyncio queues via
``call_soon_threadsafe`` — the only loop-safe way in from a foreign
thread.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from .spec import CampaignRequest

#: Lifecycle: ``queued`` (admitted, awaiting a scheduler slot) ->
#: ``running`` -> one of the terminal states. ``interrupted`` means the
#: service drained before the campaign finished; completed shards are
#: in the store and an identical resubmission resumes from them.
QUEUED = "queued"
RUNNING = "running"
SUCCEEDED = "succeeded"
FAILED = "failed"
INTERRUPTED = "interrupted"
TERMINAL = (SUCCEEDED, FAILED, INTERRUPTED)

#: Events replayed to a late ``/events`` subscriber.
FEED_RING = 2048

#: A queued sentinel that means "feed closed, stop streaming".
_CLOSE = None


class CampaignFeed:
    """Bounded-replay, multi-subscriber bridge from EventBus threads to
    asyncio consumers."""

    def __init__(self, loop: asyncio.AbstractEventLoop):
        self._loop = loop
        self._lock = threading.Lock()
        self._ring: Deque[Dict] = deque(maxlen=FEED_RING)
        self._dropped = 0
        self._queues: List[asyncio.Queue] = []
        self._closed = False

    def publish(self, event: Dict) -> None:
        """Append an event; any thread."""
        with self._lock:
            if self._closed:
                return
            if len(self._ring) == self._ring.maxlen:
                self._dropped += 1
            self._ring.append(event)
            queues = list(self._queues)
        for queue in queues:
            self._loop.call_soon_threadsafe(queue.put_nowait, event)

    def close(self) -> None:
        """No more events will arrive; wake every subscriber."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            queues = list(self._queues)
        for queue in queues:
            self._loop.call_soon_threadsafe(queue.put_nowait, _CLOSE)

    def subscribe(self) -> Tuple[List[Dict], Optional[asyncio.Queue]]:
        """(replayable history, live queue or None if already closed).
        Loop thread only."""
        with self._lock:
            history = list(self._ring)
            if self._closed:
                return history, None
            queue: asyncio.Queue = asyncio.Queue()
            self._queues.append(queue)
            return history, queue

    def unsubscribe(self, queue: asyncio.Queue) -> None:
        with self._lock:
            if queue in self._queues:
                self._queues.remove(queue)

    @property
    def dropped(self) -> int:
        return self._dropped


@dataclass
class Campaign:
    """One admitted submission and everything the API reports about it."""

    id: str
    tenant: str
    request: CampaignRequest
    digest: str
    feed: CampaignFeed
    status: str = QUEUED
    submitted: float = field(default_factory=time.time)
    started: Optional[float] = None
    finished: Optional[float] = None
    #: Leader campaign id when this submission was coalesced onto an
    #: identical in-flight one (same digest): it runs no injections of
    #: its own, it adopts the leader's outcome.
    coalesced_with: Optional[str] = None
    #: Structured error (``SpecError``/exception form) on FAILED.
    error: Optional[Dict] = None
    #: Final counts + provenance on SUCCEEDED (see ``result_summary``).
    result: Optional[Dict] = None
    #: Live partial counters (shards/injections done vs total),
    #: updated by the campaign's event subscriber as shards land.
    progress: Dict = field(default_factory=dict)
    #: Manifest campaign id this record was recovered from, when the
    #: service resubmitted it on cold start after a drain/crash.
    resumed_from: Optional[str] = None

    def as_dict(self) -> Dict:
        out = {
            "id": self.id,
            "tenant": self.tenant,
            "status": self.status,
            "digest": self.digest,
            "spec": self.request.as_dict(),
            "submitted": self.submitted,
            "started": self.started,
            "finished": self.finished,
        }
        if self.progress:
            out["progress"] = dict(self.progress)
        if self.coalesced_with:
            out["coalesced_with"] = self.coalesced_with
        if self.resumed_from:
            out["resumed_from"] = self.resumed_from
        if self.error is not None:
            out["error"] = self.error
        if self.result is not None:
            out["result"] = self.result
        return out


def result_summary(outcome) -> Dict:
    """Flatten a :class:`~repro.lab.durable.DurableCampaign` into the
    JSON shape ``GET /campaigns/{id}/results`` serves."""
    from ..faults.outcomes import Outcome

    result, info = outcome.result, outcome.info
    return {
        # Every outcome class, zeros included — the same shape as the
        # campaign CLI's JSON report, so the two are diffable.
        "counts": {o.value: int(result.counts[o]) for o in Outcome},
        "rates": result.as_dict(),
        "injections_used": info.injections_used,
        "injections_executed": info.injections_executed,
        "injections_from_store": info.injections_from_store,
        "shards_total": info.shards_total,
        "shards_from_store": info.shards_from_store,
        "shards_executed": info.shards_executed,
        "batch_lanes_degraded": info.batch_lanes_degraded,
        "stopped_early": info.stopped_early,
        "ci_halfwidth": info.ci_halfwidth,
        "spec_key": outcome.spec.spec_key if outcome.spec else None,
    }


# Restart manifest -----------------------------------------------------------
#
# Written on graceful drain (and after every terminal transition while
# draining): enough for a restarted service to resubmit whatever was
# cut short (interrupted/queued rows — see
# ``ReproService._recover_from_manifest``) and for operators to audit
# what finished. Durability discipline: the payload is checksummed,
# written to a temp file, fsync'd, and renamed into place — a torn or
# tampered manifest fails its checksum on load and degrades to "no
# manifest" (a fresh start), never to resubmitting garbage.

MANIFEST_VERSION = 1


def _manifest_checksum(payload: Dict) -> str:
    import hashlib

    body = json.dumps({k: v for k, v in payload.items() if k != "checksum"},
                      sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def write_manifest(path: str, campaigns: List[Campaign],
                   reason: str) -> None:
    payload = {
        "version": MANIFEST_VERSION,
        "written": time.time(),
        "reason": reason,
        "campaigns": [c.as_dict() for c in campaigns],
    }
    payload["checksum"] = _manifest_checksum(payload)
    tmp = f"{path}.tmp"
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def load_manifest(path: str) -> Optional[Dict]:
    """The manifest at ``path``, or None when it is absent, torn
    (checksum mismatch), or from a different schema version."""
    try:
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, ValueError):
        return None
    if payload.get("version") != MANIFEST_VERSION:
        return None
    if payload.get("checksum") != _manifest_checksum(payload):
        return None
    return payload
