"""repro.analysis — result aggregation, text rendering, and static
module inspection."""

from .inspect import (
    FunctionReport,
    ModuleReport,
    diff_reports,
    inspect_function,
    inspect_module,
)
from .report import arithmetic_mean, fmt, geometric_mean, render_table

__all__ = [
    "FunctionReport",
    "ModuleReport",
    "arithmetic_mean",
    "diff_reports",
    "fmt",
    "geometric_mean",
    "inspect_function",
    "inspect_module",
    "render_table",
]
