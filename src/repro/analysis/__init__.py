"""repro.analysis — result aggregation, text rendering, and static
module inspection."""

from .inspect import (
    FunctionReport,
    ModuleReport,
    diff_reports,
    inspect_function,
    inspect_module,
)
from .report import arithmetic_mean, fmt, geometric_mean, render_table
from .vulnerability import (
    CrossCheckRow,
    FunctionVulnerability,
    VulnerabilityReport,
    analyze_function,
    analyze_module,
    cross_check,
    exposed_sites_for_model,
)

__all__ = [
    "CrossCheckRow",
    "FunctionReport",
    "FunctionVulnerability",
    "ModuleReport",
    "VulnerabilityReport",
    "analyze_function",
    "analyze_module",
    "arithmetic_mean",
    "cross_check",
    "diff_reports",
    "exposed_sites_for_model",
    "fmt",
    "geometric_mean",
    "inspect_function",
    "inspect_module",
    "render_table",
]
