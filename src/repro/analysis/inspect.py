"""Static inspection of (hardened) modules.

Answers "what did the transformation actually do" without running
anything: instruction histograms, wrapper/check densities, replication
coverage. Used by tests and the inspection example, and handy when
tuning the cost model.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List

from ..ir.function import Function
from ..ir.instructions import CallInst
from ..ir.module import Module

#: Intrinsic name prefixes considered hardening machinery.
_CHECK_PREFIXES = (
    "elzar.check", "elzar.branch_cond", "tmr.vote", "swift.check",
)
_WRAPPER_OPS = ("extractelement", "insertelement", "broadcast")


@dataclass
class FunctionReport:
    name: str
    hardened: str  # "" for native
    instructions: int = 0
    blocks: int = 0
    vector_instructions: int = 0
    wrapper_instructions: int = 0
    check_calls: int = 0
    calls: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    opcode_histogram: Counter = field(default_factory=Counter)

    @property
    def replication_coverage(self) -> float:
        """Fraction of value-producing instructions whose result is
        replicated (vector-typed)."""
        producing = sum(
            n for op, n in self.opcode_histogram.items()
            if op not in ("store", "br", "ret", "unreachable")
        )
        if producing == 0:
            return 0.0
        return self.vector_instructions / producing


@dataclass
class ModuleReport:
    name: str
    functions: Dict[str, FunctionReport] = field(default_factory=dict)

    @property
    def instructions(self) -> int:
        return sum(f.instructions for f in self.functions.values())

    @property
    def check_calls(self) -> int:
        return sum(f.check_calls for f in self.functions.values())

    @property
    def wrapper_instructions(self) -> int:
        return sum(f.wrapper_instructions for f in self.functions.values())

    def summary_rows(self) -> List[tuple]:
        rows = []
        for fr in self.functions.values():
            rows.append(
                (
                    fr.name,
                    fr.hardened or "-",
                    fr.instructions,
                    f"{100 * fr.replication_coverage:.0f}%",
                    fr.wrapper_instructions,
                    fr.check_calls,
                )
            )
        return rows


def inspect_function(fn: Function) -> FunctionReport:
    report = FunctionReport(name=fn.name, hardened=fn.hardened or "")
    report.blocks = len(fn.blocks)
    for inst in fn.instructions():
        report.instructions += 1
        opcode = inst.opcode
        report.opcode_histogram[opcode] += 1
        if inst.type.is_vector:
            report.vector_instructions += 1
        if opcode in _WRAPPER_OPS:
            report.wrapper_instructions += 1
        elif opcode == "load":
            report.loads += 1
        elif opcode == "store":
            report.stores += 1
        elif opcode == "br":
            report.branches += 1
        elif isinstance(inst, CallInst):
            name = inst.callee.name
            if name.startswith(_CHECK_PREFIXES):
                report.check_calls += 1
            else:
                report.calls += 1
    return report


def inspect_module(module: Module) -> ModuleReport:
    report = ModuleReport(name=module.name)
    for fn in module.defined_functions():
        report.functions[fn.name] = inspect_function(fn)
    return report


def diff_reports(before: ModuleReport, after: ModuleReport) -> List[tuple]:
    """Per-function static instruction growth (the static analogue of
    Table III's dynamic increase factors)."""
    rows = []
    for name, fb in before.functions.items():
        fa = after.functions.get(name)
        if fa is None or fb.instructions == 0:
            continue
        rows.append(
            (
                name,
                fb.instructions,
                fa.instructions,
                fa.instructions / fb.instructions,
                fa.check_calls,
                fa.wrapper_instructions,
            )
        )
    return rows
