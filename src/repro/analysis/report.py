"""Text rendering for experiment results: aligned tables matching the
paper's figures/tables, printable from benchmarks and examples."""

from __future__ import annotations

from typing import List, Sequence


def fmt(value, digits: int = 2) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence],
    digits: int = 2,
) -> str:
    """Render rows as an aligned text table with a title rule."""
    str_rows = [[fmt(c, digits) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out: List[str] = []
    rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
    out.append(title)
    out.append(rule)
    out.append(line(headers))
    out.append(rule)
    for row in str_rows:
        out.append(line(row))
    out.append(rule)
    return "\n".join(out)


def geometric_mean(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))


def arithmetic_mean(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    return sum(values) / len(values)
