"""Campaign telemetry: the lab's event stream.

Everything the lab does — shard completions, store hits, worker
retries, degradation to serial, adaptive stopping — is narrated as
:class:`LabEvent`s on an :class:`EventBus`. Consumers range from the
``python -m repro campaign`` progress reporter to tests that subscribe
in order to interrupt a campaign mid-flight: resume equivalence is
exercised through the same seam the Ctrl-C path uses.

Subscribers run synchronously on the emitting side, *after* the state
they describe has been persisted (a ``shard-completed`` event fires
only once the shard's counts are in the result store). An exception
raised by a subscriber therefore aborts the campaign without losing
completed work — that is the supported way to interrupt a run
programmatically (see :func:`interrupt_after`).

Event kinds emitted today:

================== ====================================================
``campaign-started``   workload, version, shards, injections, from_store
``shard-store-hit``    index, n
``shard-completed``    index, n, seconds, counts (by outcome value)
``shard-retry``        index, attempt, reason
``shard-degraded``     index, reason (runs in-process from here on)
``batch-lane-degraded`` index, plan_kind, target (a batched lane died
                       unreported; its plan was reclassified
                       sequentially). Emitted by the process running
                       the batch, so forked shard workers' events stay
                       in the worker — in-process runs (the default
                       service/cluster shard path, ``--workers 1``)
                       see every one.
``engine-compile``     digest, variant, functions, blocks, segments,
                       compile_ms, code_hits, code_misses (the
                       compiled engine translated this campaign's
                       module; cache-warm campaigns emit none)
``store-stale``        purged (stale shard rows dropped for this cell)
``store-disabled``     reason (unkeyable eligibility predicate)
``adaptive-stop``      injections, halfwidth, target
``campaign-finished``  workload, version, injections, executed, from_store
================== ====================================================
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


class CampaignInterrupted(KeyboardInterrupt):
    """Raised (by a subscriber) to abort a campaign between shards.

    Subclasses :class:`KeyboardInterrupt` so the simulated interrupt of
    the test suite and a real Ctrl-C take the identical path through
    the orchestrator and the CLI.
    """


@dataclass
class LabEvent:
    kind: str
    data: Dict[str, object] = field(default_factory=dict)
    ts: float = 0.0
    #: Monotonic stamp (``time.monotonic()``) taken at emit time, so
    #: inter-event latencies in a JSONL trace survive wall-clock jumps.
    mono: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        out = {"kind": self.kind, "ts": self.ts, "mono": self.mono}
        out.update(self.data)
        return out


class EventBus:
    """Synchronous fan-out of :class:`LabEvent`s to subscribers."""

    def __init__(self):
        self._subscribers: List[Callable[[LabEvent], None]] = []

    def subscribe(self, fn: Callable[[LabEvent], None]) -> None:
        self._subscribers.append(fn)

    def emit(self, kind: str, **data) -> LabEvent:
        event = LabEvent(kind, data, time.time(), time.monotonic())
        for fn in self._subscribers:
            fn(event)
        return event


class EventLog:
    """Subscriber that records every event (tests, post-hoc stats)."""

    def __init__(self):
        self.events: List[LabEvent] = []

    def __call__(self, event: LabEvent) -> None:
        self.events.append(event)

    def kinds(self) -> List[str]:
        return [e.kind for e in self.events]

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    def of(self, kind: str) -> List[LabEvent]:
        return [e for e in self.events if e.kind == kind]


class JsonlSink:
    """Subscriber that appends every event to a JSONL file — one JSON
    object per line, carrying both the wall-clock (``ts``) and the
    monotonic (``mono``) emit stamp. Both local (``--events-log``) and
    cluster campaigns leave the same inspectable trace format.

    Each line is flushed as it is written, so readers tailing the file
    (``GET /campaigns/{id}/events``, ``tail -f`` on ``--events-log``)
    never see a torn or stale line, and a trace is complete up to
    the moment of an interrupt or crash. Values that JSON cannot encode
    degrade to ``repr`` rather than aborting the campaign.

    ``fsync=True`` additionally forces every line to stable storage
    before the emitter proceeds — for audit trails that must survive a
    machine (not just process) crash. It costs a syscall per event;
    the default is the plain flush.
    """

    def __init__(self, path: str, fsync: bool = False):
        self.path = path
        self.fsync = fsync
        self._fh = open(path, "a", encoding="utf-8")

    def __call__(self, event: LabEvent) -> None:
        try:
            line = json.dumps(event.as_dict(), sort_keys=True)
        except TypeError:
            line = json.dumps(
                {k: repr(v) for k, v in event.as_dict().items()},
                sort_keys=True,
            )
        self._fh.write(line + "\n")
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        self._fh.close()


def interrupt_after(n: int, kind: str = "shard-completed"):
    """Subscriber that raises :class:`CampaignInterrupted` once ``n``
    events of ``kind`` have fired — completed shards stay persisted, so
    the next identical invocation resumes from the store."""
    state = {"seen": 0}

    def subscriber(event: LabEvent) -> None:
        if event.kind != kind:
            return
        state["seen"] += 1
        if state["seen"] >= n:
            raise CampaignInterrupted(
                f"simulated interrupt after {state['seen']} {kind} event(s)"
            )

    return subscriber


class ConsoleReporter:
    """Render lab events as terse per-shard progress lines with an ETA
    (moving average of completed-shard latency times shards left)."""

    def __init__(self, stream=None):
        self._stream = stream if stream is not None else sys.stdout
        self._label = ""
        self._total = 0
        self._done = 0
        self._latencies: List[float] = []

    def _say(self, text: str) -> None:
        print(text, file=self._stream, flush=True)

    def _eta(self) -> Optional[float]:
        if not self._latencies:
            return None
        remaining = self._total - self._done
        return remaining * (sum(self._latencies) / len(self._latencies))

    def __call__(self, event: LabEvent) -> None:
        data = event.data
        if event.kind == "campaign-started":
            self._label = f"{data.get('workload')}/{data.get('version')}"
            self._total = int(data.get("shards", 0))
            self._done = int(data.get("from_store", 0))
            self._latencies = []
            self._say(
                f"[lab] {self._label}: {data.get('injections')} injections "
                f"in {self._total} shard(s), {self._done} from store"
            )
        elif event.kind == "shard-completed":
            self._done += 1
            self._latencies.append(float(data.get("seconds", 0.0)))
            eta = self._eta()
            eta_text = f"  eta {eta:.1f}s" if eta and eta > 0.05 else ""
            self._say(
                f"[lab]   shard {data.get('index')} done "
                f"({self._done}/{self._total}) in "
                f"{float(data.get('seconds', 0.0)):.2f}s{eta_text}"
            )
        elif event.kind == "shard-retry":
            self._say(
                f"[lab]   shard {data.get('index')} retry "
                f"{data.get('attempt')}: {data.get('reason')}"
            )
        elif event.kind == "shard-degraded":
            self._say(
                f"[lab]   shard {data.get('index')} degraded to in-process "
                f"run: {data.get('reason')}"
            )
        elif event.kind == "batch-lane-degraded":
            self._say(
                f"[lab]   batched lane for plan {data.get('index')} "
                f"({data.get('plan_kind')} @{data.get('target')}) died "
                "unreported; reclassified sequentially"
            )
        elif event.kind == "store-stale":
            self._say(
                f"[lab]   dropped {data.get('purged')} stale shard row(s) "
                "(golden digest changed)"
            )
        elif event.kind == "adaptive-stop":
            self._say(
                f"[lab]   adaptive stop at {data.get('injections')} "
                f"injections (CI half-width "
                f"{float(data.get('halfwidth', 0.0)):.4f} <= "
                f"{float(data.get('target', 0.0)):.4f})"
            )
        elif event.kind == "campaign-finished":
            self._say(
                f"[lab] {self._label}: {data.get('injections')} injections "
                f"counted, {data.get('executed')} executed, "
                f"{data.get('from_store')} from store"
            )
