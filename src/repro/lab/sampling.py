"""Adaptive stopping for fault-injection campaigns (Wilson intervals).

The paper fixed 2500 injections per program because that is what a
25-machine cluster could afford overnight — the number says nothing
about how tight the resulting rate estimates are. Each outcome rate
(SDC, crashed, masked, ...) is a binomial proportion, so the honest
question is statistical: keep injecting until the 95% confidence
interval of *every* outcome class is narrower than a target, then
stop. The fixed budget becomes the cap, not the default.

We use the Wilson score interval rather than the normal (Wald)
approximation because campaign proportions routinely sit near 0 or 1
(ELZAR's SDC rate, native's corrected rate), exactly where Wald
collapses to zero width and lies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Tuple

from ..faults.outcomes import Outcome

#: Two-sided 95% normal quantile.
Z95 = 1.959963984540054


def wilson_interval(successes: int, n: int, z: float = Z95) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion, as (lo, hi)
    proportions in [0, 1]. For ``n == 0`` the interval is (0, 1)."""
    if n <= 0:
        return (0.0, 1.0)
    if successes < 0 or successes > n:
        raise ValueError(f"successes {successes} outside [0, {n}]")
    p = successes / n
    z2 = z * z
    denom = 1.0 + z2 / n
    center = (p + z2 / (2.0 * n)) / denom
    half = (z * math.sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n))) / denom
    return (max(0.0, center - half), min(1.0, center + half))


def wilson_halfwidth(successes: int, n: int, z: float = Z95) -> float:
    """Half the width of the Wilson interval (proportion units)."""
    lo, hi = wilson_interval(successes, n, z)
    return (hi - lo) / 2.0


@dataclass(frozen=True)
class AdaptiveStop:
    """Stopping rule: halt once every outcome class's Wilson CI
    half-width is at most ``ci_target`` (proportion units, e.g. 0.02
    for ±2 percentage points at 95% confidence).

    ``min_injections`` guards against stopping on the quiet early
    shards of a campaign whose rare outcomes have not shown up yet.
    """

    ci_target: float
    z: float = Z95
    min_injections: int = 50

    def max_halfwidth(self, counts: Mapping[Outcome, int]) -> float:
        n = sum(counts.values())
        return max(
            wilson_halfwidth(counts.get(outcome, 0), n, self.z)
            for outcome in Outcome
        )

    def satisfied(self, counts: Mapping[Outcome, int]) -> bool:
        n = sum(counts.values())
        if n < self.min_injections:
            return False
        return self.max_halfwidth(counts) <= self.ci_target
