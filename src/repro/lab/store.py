"""Persistent, content-addressed campaign result store (SQLite).

Replay-based FI systems (RepTFD and kin) live or die on deterministic
re-execution plus durable bookkeeping. Our campaigns are deterministic
by construction — the outcome of a shard is a pure function of the
module IR, the entry/args, the eligibility predicate, and the fault
plans (which are a pure function of ``(eligible, seed)``) — so outcomes
can be *addressed by content* and never recomputed:

- ``goldens`` rows record the fault-free reference for one *cell*
  (module digest + entry + args + eligibility): an output digest plus
  the eligible/executed instruction counts. A digest mismatch on a
  later run means simulator semantics drifted under the same IR; the
  cell's shards are purged rather than silently replayed.
- ``shards`` rows record per-shard outcome counts keyed by the full
  campaign spec (cell + seed + hang_factor + rtol + eligible +
  shard_size) and the shard index. Fault plans are drawn sequentially
  from one seeded RNG, so shard contents do not depend on the campaign
  *cap*: raising ``injections`` from 150 to 2500 reuses every stored
  full shard and only executes the new tail.
- ``runs`` rows record CLI invocations (the parameter set as JSON and
  a running/complete status) so ``python -m repro campaign --resume``
  can pick up the latest interrupted run without repeating flags.

Schema changes bump :data:`LAB_SCHEMA`, which salts every key — an old
store file degrades to a miss, never to a wrong answer.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..chaos.hooks import ChaosCrash, chaos_point
from ..faults.outcomes import Outcome
# Canonicalization/digesting moved to repro.toolchain.digest (the
# toolchain is below the lab in the import graph); re-exported here
# because store keys are where they are used most.
from ..toolchain.digest import _canonical, digest_of  # noqa: F401

#: Bump when key derivation or row semantics change.
#: 2: spec keys carry the fault model + its target-stream population
#:    (pluggable fault models); goldens record the full stream profile.
#: 3: cell/spec keys are salted with the toolchain digest
#:    (repro.toolchain), and campaign cells are built through the
#:    unified toolchain pipeline (mem2reg -> inline -> mem2reg before
#:    hardening, same as harness figures) — shards recorded under the
#:    old divergent cell recipes can never be mixed with new ones.
LAB_SCHEMA = 3

_SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS goldens (
    cell_key   TEXT PRIMARY KEY,
    digest     TEXT NOT NULL,
    eligible   INTEGER NOT NULL,
    executed   INTEGER NOT NULL,
    created    REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS shards (
    spec_key    TEXT NOT NULL,
    shard_index INTEGER NOT NULL,
    cell_key    TEXT NOT NULL,
    n           INTEGER NOT NULL,
    counts      TEXT NOT NULL,
    seconds     REAL NOT NULL,
    created     REAL NOT NULL,
    PRIMARY KEY (spec_key, shard_index)
);
CREATE INDEX IF NOT EXISTS shards_by_cell ON shards (cell_key);
CREATE TABLE IF NOT EXISTS runs (
    run_id  INTEGER PRIMARY KEY AUTOINCREMENT,
    created REAL NOT NULL,
    status  TEXT NOT NULL,
    spec    TEXT NOT NULL
);
"""


def _encode_counts(counts: Counter) -> str:
    return json.dumps(
        {o.value: int(n) for o, n in sorted(counts.items(),
                                            key=lambda kv: kv[0].value)}
    )


def _decode_counts(text: str) -> Counter:
    return Counter({Outcome(k): v for k, v in json.loads(text).items()})


@dataclass(frozen=True)
class GoldenRecord:
    digest: str
    eligible: int
    executed: int


class ResultStore:
    """One SQLite file of campaign results. Safe to share between
    sequential invocations and between concurrent processes (SQLite
    locking; all writes are idempotent upserts of deterministic data).
    Only the parent/orchestrator process touches the store — forked
    shard workers return counts over a pipe."""

    def __init__(self, path: str = ":memory:"):
        self.path = path
        if path != ":memory:":
            parent = os.path.dirname(os.path.abspath(path))
            os.makedirs(parent, exist_ok=True)
        self._conn = sqlite3.connect(path, timeout=30.0)
        self._conn.executescript(_SCHEMA_SQL)
        self._conn.commit()

    def close(self) -> None:
        self._conn.close()

    # Goldens -----------------------------------------------------------------

    def get_golden(self, cell_key: str) -> Optional[GoldenRecord]:
        row = self._conn.execute(
            "SELECT digest, eligible, executed FROM goldens WHERE cell_key = ?",
            (cell_key,),
        ).fetchone()
        if row is None:
            return None
        return GoldenRecord(digest=row[0], eligible=row[1], executed=row[2])

    def put_golden(self, cell_key: str, digest: str, eligible: int,
                   executed: int) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO goldens VALUES (?, ?, ?, ?, ?)",
            (cell_key, digest, eligible, executed, time.time()),
        )
        self._conn.commit()

    # Shards ------------------------------------------------------------------

    def get_shard(self, spec_key: str, index: int
                  ) -> Optional[Tuple[int, Counter]]:
        row = self._conn.execute(
            "SELECT n, counts FROM shards WHERE spec_key = ? AND shard_index = ?",
            (spec_key, index),
        ).fetchone()
        if row is None:
            return None
        return row[0], _decode_counts(row[1])

    def get_shards(self, spec_key: str) -> Dict[int, Tuple[int, Counter]]:
        rows = self._conn.execute(
            "SELECT shard_index, n, counts FROM shards WHERE spec_key = ?",
            (spec_key,),
        ).fetchall()
        return {idx: (n, _decode_counts(text)) for idx, n, text in rows}

    def spec_progress(self, spec_key: str) -> Tuple[int, int, Counter]:
        """(completed shards, injections, summed counts) for one spec.

        Reads the *contiguous completed prefix* (shard 0..k with no
        gap), matching how the durable runner counts shards into a
        result — a shard landed out of order by a cluster worker is
        excluded until the gap before it fills. The service polls this
        for live partial status and to report how much of a submission
        is already banked (the resubmission ~0-compute probe)."""
        rows = self._conn.execute(
            "SELECT shard_index, n, counts FROM shards WHERE spec_key = ? "
            "ORDER BY shard_index", (spec_key,),
        ).fetchall()
        shards = 0
        injections = 0
        counts: Counter = Counter()
        for index, n, text in rows:
            if index != shards:
                break
            shards += 1
            injections += n
            counts.update(_decode_counts(text))
        return shards, injections, counts

    def put_shard(self, spec_key: str, cell_key: str, index: int, n: int,
                  counts: Counter, seconds: float) -> None:
        # The write-durability seam: "lose-write" is the machine dying
        # with the row still in the page cache (the shard's work is
        # gone and must be re-executed on resume); "crash-after-write"
        # dies with the row fsync'd (resume must treat the row as a
        # hit, not a stale duplicate). Both rely on put_shard being an
        # idempotent upsert of deterministic data.
        rule = chaos_point("lab.store.put-shard", index=index)
        if rule is not None and rule.action == "lose-write":
            raise ChaosCrash(f"chaos: shard {index} write lost "
                             "(simulated crash before commit)")
        self._conn.execute(
            "INSERT OR REPLACE INTO shards VALUES (?, ?, ?, ?, ?, ?, ?)",
            (spec_key, index, cell_key, n, _encode_counts(counts), seconds,
             time.time()),
        )
        self._conn.commit()
        if rule is not None and rule.action == "crash-after-write":
            raise ChaosCrash(f"chaos: simulated crash after shard {index} "
                             "committed")

    def purge_cell(self, cell_key: str) -> int:
        """Drop every shard of a cell (stale goldens); returns the
        number of rows removed."""
        cursor = self._conn.execute(
            "DELETE FROM shards WHERE cell_key = ?", (cell_key,)
        )
        self._conn.commit()
        return cursor.rowcount

    def shard_rows(self):
        """Every shard row as (spec_key, index, n, counts-json) —
        resume-equivalence tests compare whole-store row sets."""
        return set(
            self._conn.execute(
                "SELECT spec_key, shard_index, n, counts FROM shards"
            ).fetchall()
        )

    # Runs (CLI resume manifests) ---------------------------------------------

    def begin_run(self, spec: Dict) -> int:
        cursor = self._conn.execute(
            "INSERT INTO runs (created, status, spec) VALUES (?, 'running', ?)",
            (time.time(), json.dumps(spec, sort_keys=True)),
        )
        self._conn.commit()
        return int(cursor.lastrowid)

    def finish_run(self, run_id: int) -> None:
        self._conn.execute(
            "UPDATE runs SET status = 'complete' WHERE run_id = ?", (run_id,)
        )
        self._conn.commit()

    def latest_incomplete_run(self) -> Optional[Tuple[int, Dict]]:
        row = self._conn.execute(
            "SELECT run_id, spec FROM runs WHERE status = 'running' "
            "ORDER BY run_id DESC LIMIT 1"
        ).fetchone()
        if row is None:
            return None
        return int(row[0]), json.loads(row[1])


def default_store_path() -> str:
    """``$REPRO_LAB_STORE`` if set, else a per-user cache location."""
    env = os.environ.get("REPRO_LAB_STORE")
    if env:
        return env
    cache_root = os.environ.get(
        "XDG_CACHE_HOME", os.path.join(os.path.expanduser("~"), ".cache")
    )
    return os.path.join(cache_root, "repro-lab", "store.sqlite")


_OPEN_STORES: Dict[str, ResultStore] = {}


def default_store() -> ResultStore:
    """Process-wide store at :func:`default_store_path` (one open
    connection per path, so repeated figure regeneration shares it)."""
    path = default_store_path()
    store = _OPEN_STORES.get(path)
    if store is None:
        store = ResultStore(path)
        _OPEN_STORES[path] = store
    return store
