"""``python -m repro campaign`` — durable fault-injection campaigns.

Examples::

    # A tiny end-to-end campaign (CI smoke); rerunning it is ~free —
    # every shard is served from the store.
    python -m repro campaign --scale test

    # The Figure-13 cells, 8 workers, stop each cell once every
    # outcome rate is known to ±2 points (95% CI), cap at 2500:
    python -m repro campaign --injections 2500 --workers 8 --ci-target 0.02

    # Interrupted? Completed shards are already persisted:
    python -m repro campaign --resume

The store lives at ``--store`` / ``$REPRO_LAB_STORE`` / the user cache
dir; see docs/LAB.md for the schema and replay rules.
"""

from __future__ import annotations

import argparse
import json
from typing import Dict, List, Optional

from ..cpu.interpreter import registered_engines
from ..faults.campaign import CampaignConfig
from ..faults.models import DEFAULT_MODEL, model_names
from ..faults.outcomes import Outcome
from ..harness.base import Experiment
from ..service.runner import CampaignRunner
from ..toolchain import default_toolchain, get_variant, variant_names
from ..workloads.registry import FI_BENCHMARKS, SHORT_NAMES
from .events import CampaignInterrupted, ConsoleReporter, EventBus, \
    JsonlSink, interrupt_after
from .store import ResultStore, default_store_path

#: Defaults per ``--scale``: (benchmarks, injections, shard_size).
_SCALE_DEFAULTS = {
    "test": (("histogram", "blackscholes"), 40, 10),
    "perf": (tuple(w.name for w in FI_BENCHMARKS), 150, 25),
}

#: Every registry variant is a valid ``--versions`` entry: the variant
#: vocabulary lives in repro.toolchain.registry, shared with the
#: harness figures and cluster workers, so all three cannot disagree
#: about what ``elzar-detect`` means.
_VERSIONS = variant_names()


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro campaign",
        description="Run a durable, resumable fault-injection campaign.",
    )
    parser.add_argument("--scale", default="perf", choices=("perf", "test"),
                        help="perf = fi-scale inputs; test = tiny smoke run")
    parser.add_argument("--benchmarks", default=None,
                        help="comma-separated workload names "
                             "(default depends on --scale)")
    parser.add_argument("--versions", default="native,elzar",
                        help="comma-separated subset of the variant "
                             f"registry: {', '.join(_VERSIONS)} "
                             "(see `python -m repro variants`)")
    parser.add_argument("--injections", type=int, default=None,
                        help="injection cap per cell (paper: 2500; "
                             "default 150, or 40 at --scale test)")
    parser.add_argument("--fault-model", default=DEFAULT_MODEL,
                        choices=model_names(),
                        help="fault shape to inject (see docs/FAULTS.md); "
                             "each model keys its own store rows")
    parser.add_argument("--engine", default="compiled",
                        choices=registered_engines(),
                        help="execution engine; outcome counts are "
                             "bit-identical on every engine (CI proves "
                             "it), so the store is shared between engines")
    parser.add_argument("--seed", type=int, default=2016)
    parser.add_argument("--workers", type=int, default=1,
                        help="forked campaign workers (0 = all CPUs)")
    parser.add_argument("--batch", type=int, default=1, metavar="K",
                        help="lane-parallel injections per batched golden "
                             "run (repro.cpu.batch); a per-worker knob that "
                             "composes with --workers and --cluster — each "
                             "worker batches its own shards. Outcome counts "
                             "are bit-identical to --batch 1, so the store "
                             "is shared across batch sizes. Requires the "
                             "compiled or decoded engine; falls back to "
                             "sequential injection otherwise")
    parser.add_argument("--cluster", type=int, default=None, metavar="N",
                        help="distribute shards over N local worker agents "
                             "(TCP, not fork) — counts are bit-identical to "
                             "--workers N; see docs/CLUSTER.md")
    parser.add_argument("--events-log", metavar="PATH", default=None,
                        help="append every campaign event to PATH as JSONL "
                             "(one event per line, wall + monotonic stamps)")
    parser.add_argument("--lease-timeout", type=float, default=30.0,
                        help="cluster modes: seconds without a worker "
                             "heartbeat before a shard is re-leased")
    # Set by `python -m repro cluster coordinator`: listen on HOST:PORT
    # for external workers instead of spawning local ones.
    parser.add_argument("--serve-cluster", metavar="HOST:PORT", default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument("--ci-target", type=float, default=None,
                        help="adaptive stop: max Wilson 95%% CI half-width "
                             "per outcome class, in proportion units "
                             "(e.g. 0.02)")
    parser.add_argument("--shard-size", type=int, default=None,
                        help="injections per shard (the checkpoint/replay "
                             "unit; default 25, or 10 at --scale test)")
    parser.add_argument("--resume", action="store_true",
                        help="continue the latest interrupted campaign "
                             "recorded in the store (reuses its parameters)")
    parser.add_argument("--store", default=None,
                        help="store path (default: $REPRO_LAB_STORE or "
                             "the user cache dir)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the report as JSON")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-shard progress lines")
    # Test/CI hook: abort (as Ctrl-C would) after N completed shards.
    parser.add_argument("--interrupt-after-shards", type=int, default=None,
                        help=argparse.SUPPRESS)
    return parser


def _spec_from_args(args: argparse.Namespace) -> Dict:
    benchmarks, injections, shard_size = _SCALE_DEFAULTS[args.scale]
    if args.benchmarks:
        benchmarks = tuple(
            name.strip() for name in args.benchmarks.split(",") if name.strip()
        )
    return {
        "scale": args.scale,
        "benchmarks": list(benchmarks),
        "versions": [v.strip() for v in args.versions.split(",") if v.strip()],
        "injections": args.injections if args.injections is not None
        else injections,
        "seed": args.seed,
        "workers": args.workers,
        "ci_target": args.ci_target,
        "shard_size": args.shard_size if args.shard_size is not None
        else shard_size,
        "fault_model": args.fault_model,
        "engine": args.engine,
        "batch": args.batch,
        "cluster": args.cluster or 0,
    }


def _run_cells(spec: Dict, store: ResultStore, events: EventBus,
               cell_runner):
    """Execute every benchmark × version cell; returns (rows, cells,
    totals) where rows feed the text table and cells the JSON report.

    ``cell_runner(module, built, name, version, config, build_scale)``
    is the execution fabric for one cell — ``main`` builds it from
    :class:`repro.service.runner.CampaignRunner`, which schedules onto
    local forked workers or leases shards to networked worker agents.
    Either way the cell's outcome counts are bit-identical."""
    build_scale = "fi" if spec["scale"] == "perf" else "test"
    # Resume manifests written before the fault-model/engine/batch
    # flags existed lack these keys; default to the historical
    # behaviour.
    fault_model = spec.get("fault_model", DEFAULT_MODEL)
    engine = spec.get("engine", "decoded")
    batch = int(spec.get("batch", 1))
    rows: List[tuple] = []
    cells: List[Dict] = []
    totals = {"shards_total": 0, "shards_from_store": 0,
              "injections_executed": 0, "injections_from_store": 0,
              "batch_lanes_degraded": 0}
    toolchain = default_toolchain()
    for name in spec["benchmarks"]:
        for version in spec["versions"]:
            try:
                get_variant(version)
            except KeyError as exc:
                raise SystemExit(str(exc.args[0]))
            built = toolchain.build(name, build_scale, version)
            module = built.module
            config = CampaignConfig(
                injections=spec["injections"], seed=spec["seed"],
                workers=spec["workers"], fault_model=fault_model,
                engine=engine, batch=batch,
            )
            try:
                outcome = cell_runner(module, built, name, version, config,
                                      build_scale)
            except ValueError as exc:
                # Empty target stream for this model × version (e.g.
                # checker-fault against native code): an expected hole
                # in the matrix, not an error.
                print(f"-- skipping {name}/{version}: {exc}")
                cells.append({"workload": name, "version": version,
                              "fault_model": fault_model,
                              "skipped": str(exc)})
                continue
            result, info = outcome.result, outcome.info
            rows.append((
                SHORT_NAMES.get(name, name), version, result.total,
                result.crash_rate, result.correct_rate, result.sdc_rate,
                result.rate(Outcome.CORRECTED),
                100.0 * info.shards_from_store / max(1, info.shards_total),
            ))
            cells.append({
                "workload": name,
                "version": version,
                "fault_model": result.fault_model,
                "injections_used": info.injections_used,
                "stopped_early": info.stopped_early,
                "ci_halfwidth": info.ci_halfwidth,
                "counts": {o.value: int(result.counts[o]) for o in Outcome},
                "rates": result.as_dict(),
                "shards_total": info.shards_total,
                "shards_from_store": info.shards_from_store,
                "injections_executed": info.injections_executed,
                "injections_from_store": info.injections_from_store,
                "batch_lanes_degraded": info.batch_lanes_degraded,
            })
            totals["shards_total"] += info.shards_total
            totals["shards_from_store"] += info.shards_from_store
            totals["injections_executed"] += info.injections_executed
            totals["injections_from_store"] += info.injections_from_store
            totals["batch_lanes_degraded"] += info.batch_lanes_degraded
    return rows, cells, totals


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.batch < 1:
        parser.error(f"--batch must be >= 1 (got {args.batch})")
    store_path = args.store or default_store_path()
    store = ResultStore(store_path)

    spec = _spec_from_args(args)
    run_id = None
    if args.resume:
        latest = store.latest_incomplete_run()
        if latest is not None:
            run_id, spec = latest
            print(f"-- resuming interrupted campaign run {run_id} "
                  f"({len(spec['benchmarks'])} benchmark(s), "
                  f"{spec['injections']} injections/cell)")
        else:
            print("-- nothing to resume; starting a fresh campaign")
    if run_id is None:
        run_id = store.begin_run(spec)

    events = EventBus()
    if not args.quiet:
        events.subscribe(ConsoleReporter())
    events_sink = None
    if args.events_log:
        events_sink = JsonlSink(args.events_log)
        events.subscribe(events_sink)
    if args.interrupt_after_shards is not None:
        events.subscribe(interrupt_after(args.interrupt_after_shards))

    cluster_n = int(spec.get("cluster") or 0)
    coordinator = None
    worker_procs: List = []
    if cluster_n or args.serve_cluster:
        from ..cluster.cli import reap_workers, spawn_local_workers
        from ..cluster.coordinator import ClusterCoordinator
        from ..cluster.lease import LeasePolicy

        if args.serve_cluster:
            listen_host, _, port_text = args.serve_cluster.rpartition(":")
            listen = (listen_host or "0.0.0.0", int(port_text))
        else:
            listen = ("127.0.0.1", 0)
        coordinator = ClusterCoordinator(
            store_path=store_path, events=events,
            policy=LeasePolicy(lease_timeout=args.lease_timeout),
            host=listen[0], port=listen[1],
        )
        bound_host, bound_port = coordinator.start()
        print(f"-- cluster coordinator listening on "
              f"{bound_host}:{bound_port}")
        if cluster_n:
            worker_procs = spawn_local_workers(
                "127.0.0.1", bound_port, cluster_n)
            print(f"-- spawned {cluster_n} local worker agent(s)")

    # Both fabrics run through the same embeddable executor the
    # service uses, so the CLI and the API cannot drift apart.
    runner = CampaignRunner(store_path, coordinator=coordinator)

    def cell_runner(module, built, name, version, config, build_scale):
        return runner.run_cell(
            module, built.entry, built.args, name, version, config,
            build_scale=build_scale, shard_size=spec["shard_size"],
            ci_target=spec["ci_target"], store=store, events=events,
        )

    try:
        rows, cells, totals = _run_cells(spec, store, events, cell_runner)
    except (CampaignInterrupted, KeyboardInterrupt):
        if coordinator is not None:
            coordinator.request_drain()
        print(f"-- interrupted; completed shards are stored in {store_path}. "
              "Rerun with --resume to continue.")
        return 130
    finally:
        if coordinator is not None:
            coordinator.stop()
        if worker_procs:
            reap_workers(worker_procs)
        if events_sink is not None:
            events_sink.close()

    store.finish_run(run_id)

    exp = Experiment(
        id="campaign",
        title=(f"Durable campaign, "
               f"{spec.get('fault_model', DEFAULT_MODEL)} faults, "
               f"cap {spec['injections']}/cell"
               + (f", CI target ±{spec['ci_target']}" if spec["ci_target"]
                  else "")),
        headers=("benchmark", "version", "injections", "crashed", "correct",
                 "corrupted(SDC)", "corrected", "store_hit%"),
        rows=rows,
        digits=1,
    )
    print(exp.render())
    hit_rate = (totals["shards_from_store"] / totals["shards_total"]
                if totals["shards_total"] else 0.0)
    print(f"-- store {store_path}")
    print(f"-- store-hits: {totals['shards_from_store']}/"
          f"{totals['shards_total']} shards ({hit_rate:.0%}); "
          f"executed {totals['injections_executed']} new injection(s), "
          f"reused {totals['injections_from_store']}")

    if args.json:
        report = {
            "command": "campaign",
            "run_id": run_id,
            "spec": spec,
            "store": {
                "path": store_path,
                "hit_rate": hit_rate,
                **totals,
            },
            "cells": cells,
        }
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"-- wrote {args.json}")
    return 0
