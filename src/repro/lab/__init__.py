"""repro.lab — durable campaign orchestration.

The paper amortized its fault-injection cost across a 25-machine
cluster driven by ad-hoc scripts (§IV-B, 2500 faults per program).
This package is that layer for the simulator, built so a 100k-injection
study is a resumable, observable batch job rather than a one-shot loop:

- :mod:`repro.lab.store` — a content-addressed SQLite result store
  keyed on (module IR digest, entry, args, eligibility, seed, shard
  geometry); every campaign is incremental by construction.
- :mod:`repro.lab.checkpoint` — shard-level checkpointing. Fault plans
  are pre-drawn in serial RNG order, so contiguous shards are the
  natural replay unit: an interrupted campaign resumes bit-identically.
- :mod:`repro.lab.scheduler` — supervised forked workers with
  per-shard timeout, bounded retry with backoff, and graceful
  degradation to in-process execution.
- :mod:`repro.lab.sampling` — Wilson-interval adaptive stopping: run
  shards until every outcome class's 95% CI half-width is below a
  target (the paper's fixed 2500/program becomes the cap, not the
  default).
- :mod:`repro.lab.events` — the telemetry stream consumed by
  ``python -m repro campaign`` (progress, shard latency, retries, ETA).

:func:`run_durable_campaign` ties these together; it is what
``harness.fault_experiments.fig13_fault_injection`` and
``harness.ablations`` schedule onto.
"""

from .checkpoint import (
    DEFAULT_SHARD_SIZE,
    CampaignSpec,
    ShardPlan,
    build_spec,
    golden_digest,
    module_digest,
    partition,
)
from .durable import DurableCampaign, LabRunInfo, run_durable_campaign
from .events import (
    CampaignInterrupted,
    ConsoleReporter,
    EventBus,
    EventLog,
    JsonlSink,
    LabEvent,
    interrupt_after,
)
from .sampling import Z95, AdaptiveStop, wilson_halfwidth, wilson_interval
from .scheduler import SchedulerPolicy, ShardScheduler
from .store import LAB_SCHEMA, ResultStore, default_store, default_store_path

__all__ = [
    "AdaptiveStop",
    "CampaignInterrupted",
    "CampaignSpec",
    "ConsoleReporter",
    "DEFAULT_SHARD_SIZE",
    "DurableCampaign",
    "EventBus",
    "EventLog",
    "JsonlSink",
    "LAB_SCHEMA",
    "LabEvent",
    "LabRunInfo",
    "ResultStore",
    "SchedulerPolicy",
    "ShardPlan",
    "ShardScheduler",
    "Z95",
    "build_spec",
    "default_store",
    "default_store_path",
    "golden_digest",
    "interrupt_after",
    "module_digest",
    "partition",
    "run_durable_campaign",
    "wilson_halfwidth",
    "wilson_interval",
]
