"""Supervised shard execution: forked workers, timeouts, retry, degrade.

The paper drove its cluster with ad-hoc scripts; the failure mode of
ad-hoc scripts is a wedged worker silently stalling the whole night's
campaign. This scheduler supervises every shard:

- up to ``workers`` forked processes run shards concurrently (fork
  start method only — modules and eligibility predicates are inherited,
  never pickled; results come back over a pipe);
- each in-flight shard has an optional wall-clock ``timeout``; an
  overrunning worker is terminated and the shard requeued;
- a failed shard (crash, nonzero exit, timeout, reported exception) is
  retried up to ``max_retries`` times with exponential backoff;
- a shard that keeps dying *degrades gracefully*: it runs in-process in
  the supervisor, where a real error surfaces as a real traceback. The
  same in-process path serves platforms without ``fork``.

None of this affects results: a shard's outcome counts are a pure
function of its plans, so scheduling, retries, and completion order are
invisible in the aggregated campaign.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import time
from collections import Counter
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..chaos.hooks import chaos_point
from ..chaos.policy import RetryPolicy
from ..faults.campaign import resolve_workers
from ..faults.outcomes import Outcome
from .checkpoint import ShardPlan
from .events import EventBus

#: runner(shard) -> Counter of Outcome; executed in workers (and, on
#: degradation, in the supervisor).
ShardRunner = Callable[[ShardPlan], Counter]
#: on_result(shard, counts, seconds) — called in the supervisor, in
#: completion order, after each shard finishes.
ResultSink = Callable[[ShardPlan, Counter, float], None]


@dataclass
class SchedulerPolicy:
    #: Concurrent worker processes; 0 = ``os.cpu_count()``, 1 = run
    #: everything in-process.
    workers: int = 1
    #: Per-shard wall-clock limit in seconds (None = unlimited).
    timeout: Optional[float] = None
    #: Re-executions of a failed shard before degrading to in-process.
    max_retries: int = 2
    #: Base delay before a retry; grows by ``backoff_factor`` per attempt.
    backoff: float = 0.05
    backoff_factor: float = 2.0
    #: Accepted for back-compat only. The supervisor blocks in
    #: ``multiprocessing.connection.wait`` on the worker pipes (waking
    #: on results, worker death, the next shard deadline, or the next
    #: retry becoming eligible), so idle supervision costs no CPU and
    #: this interval is no longer used as a sleep period.
    poll_interval: float = 0.01

    @property
    def retry(self) -> RetryPolicy:
        """The shard retry schedule in the stack-wide
        :class:`~repro.chaos.policy.RetryPolicy` shape. No jitter:
        shard retries are per-campaign, not fleet-wide, so there is no
        herd to spread."""
        return RetryPolicy(max_attempts=self.max_retries + 1,
                           backoff=self.backoff,
                           backoff_factor=self.backoff_factor,
                           jitter=0.0, timeout=self.timeout)


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _shard_child(conn, runner: ShardRunner, shard: ShardPlan,
                 sabotage, attempt: int) -> None:
    """Worker body: run one shard, ship counts back over the pipe."""
    try:
        if sabotage is not None:
            sabotage(shard.index, attempt)
        # Fork inherits the driver's armed chaos controller, so seeded
        # worker kills/stalls/errors fire here, inside the child —
        # degradation to the supervisor stays chaos-free.
        chaos_point("lab.worker.shard", index=shard.index, attempt=attempt)
        start = time.perf_counter()
        counts = runner(shard)
        payload = {o.value: int(n) for o, n in counts.items()}
        conn.send(("ok", payload, time.perf_counter() - start))
    except BaseException as exc:  # report, never hang the supervisor
        try:
            conn.send(("error", repr(exc), 0.0))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


@dataclass
class _InFlight:
    shard: ShardPlan
    attempt: int
    proc: object
    conn: object
    deadline: Optional[float]


@dataclass
class _Queued:
    shard: ShardPlan
    attempt: int
    not_before: float


class ShardScheduler:
    """Run shards under a :class:`SchedulerPolicy`, reporting each
    completion through a result sink (the orchestrator persists the
    shard there, *before* any event subscriber can interrupt)."""

    def __init__(self, policy: Optional[SchedulerPolicy] = None,
                 events: Optional[EventBus] = None):
        self.policy = policy or SchedulerPolicy()
        self.events = events or EventBus()

    def run(self, shards: List[ShardPlan], runner: ShardRunner,
            on_result: ResultSink, _sabotage=None) -> None:
        """Execute ``shards`` (any order, all supervised). ``_sabotage``
        is a test-only hook run inside workers before the runner — it
        never executes in the supervisor, so degradation stays safe."""
        if not shards:
            return
        workers = max(1, min(resolve_workers(self.policy.workers), len(shards)))
        if workers <= 1 or not _fork_available():
            for shard in shards:
                self._run_in_process(shard, runner, on_result)
            return
        self._run_forked(shards, runner, on_result, workers, _sabotage)

    # In-process path ---------------------------------------------------------

    def _run_in_process(self, shard: ShardPlan, runner: ShardRunner,
                        on_result: ResultSink) -> None:
        start = time.perf_counter()
        counts = runner(shard)
        on_result(shard, counts, time.perf_counter() - start)

    # Forked path -------------------------------------------------------------

    def _spawn(self, ctx, shard: ShardPlan, attempt: int, runner: ShardRunner,
               sabotage) -> _InFlight:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_shard_child,
            args=(child_conn, runner, shard, sabotage, attempt),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        deadline = None
        if self.policy.timeout is not None:
            deadline = time.monotonic() + self.policy.timeout
        return _InFlight(shard=shard, attempt=attempt, proc=proc,
                         conn=parent_conn, deadline=deadline)

    def _reap(self, flight: _InFlight) -> None:
        if flight.proc.is_alive():
            flight.proc.terminate()
        flight.proc.join(timeout=5.0)
        try:
            flight.conn.close()
        except Exception:
            pass

    def _handle_failure(self, flight: _InFlight, reason: str,
                        queue: List[_Queued], runner: ShardRunner,
                        on_result: ResultSink) -> None:
        attempt = flight.attempt + 1
        if attempt <= self.policy.max_retries:
            delay = self.policy.retry.delay(flight.attempt)
            self.events.emit("shard-retry", index=flight.shard.index,
                             attempt=attempt, reason=reason)
            queue.append(_Queued(shard=flight.shard, attempt=attempt,
                                 not_before=time.monotonic() + delay))
            return
        # Out of retries: degrade to the supervisor process, where a
        # genuine error produces a genuine traceback instead of a
        # silently incomplete campaign.
        self.events.emit("shard-degraded", index=flight.shard.index,
                         reason=reason)
        self._run_in_process(flight.shard, runner, on_result)

    def _run_forked(self, shards: List[ShardPlan], runner: ShardRunner,
                    on_result: ResultSink, workers: int, sabotage) -> None:
        ctx = multiprocessing.get_context("fork")
        queue: List[_Queued] = [
            _Queued(shard=s, attempt=0, not_before=0.0) for s in shards
        ]
        running: Dict[int, _InFlight] = {}
        try:
            while queue or running:
                now = time.monotonic()
                # Launch eligible queued shards into free worker slots.
                for entry in list(queue):
                    if len(running) >= workers:
                        break
                    if entry.not_before > now:
                        continue
                    queue.remove(entry)
                    running[entry.shard.index] = self._spawn(
                        ctx, entry.shard, entry.attempt, runner, sabotage
                    )
                progressed = False
                for index, flight in list(running.items()):
                    status = self._poll(flight)
                    if status is None:
                        continue
                    progressed = True
                    del running[index]
                    kind, payload, seconds = status
                    self._reap(flight)
                    if kind == "ok":
                        counts = Counter(
                            {Outcome(k): v for k, v in payload.items()}
                        )
                        on_result(flight.shard, counts, seconds)
                    else:
                        self._handle_failure(flight, payload, queue, runner,
                                             on_result)
                if not progressed:
                    self._wait_for_activity(running, queue, workers)
        finally:
            for flight in running.values():
                self._reap(flight)

    def _wait_for_activity(self, running: Dict[int, _InFlight],
                           queue: List[_Queued], workers: int) -> None:
        """Block until something can change: a worker pipe becomes
        readable (result or death — a dying child closes its end), a
        shard deadline passes, or a backed-off retry becomes eligible
        for a free slot. Event-driven, so an idle supervisor costs no
        CPU between completions."""
        now = time.monotonic()
        wakeups = [f.deadline for f in running.values()
                   if f.deadline is not None]
        if len(running) < workers:
            wakeups.extend(entry.not_before for entry in queue)
        timeout = None
        if wakeups:
            timeout = max(0.0, min(wakeups) - now)
        conns = [f.conn for f in running.values()]
        if conns:
            multiprocessing.connection.wait(conns, timeout)
        elif timeout is not None:
            time.sleep(timeout)

    def _poll(self, flight: _InFlight):
        """None while still running; otherwise ("ok", counts-dict,
        seconds) or ("error", reason, 0.0)."""
        try:
            if flight.conn.poll():
                return flight.conn.recv()
        except (EOFError, OSError):
            return ("error", "worker pipe closed mid-message", 0.0)
        if not flight.proc.is_alive():
            # Drain the race between the result write and process exit.
            try:
                if flight.conn.poll(0.1):
                    return flight.conn.recv()
            except (EOFError, OSError):
                pass
            return ("error",
                    f"worker died (exitcode {flight.proc.exitcode})", 0.0)
        if flight.deadline is not None and time.monotonic() > flight.deadline:
            return ("error",
                    f"shard timeout after {self.policy.timeout:.1f}s", 0.0)
        return None
