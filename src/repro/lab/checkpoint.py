"""Shard planning and checkpoint/replay rules.

A campaign's fault plans are pre-drawn from one seeded RNG in the
serial draw order (:func:`repro.faults.campaign.draw_plans`), which
makes *contiguous* slices of the plan list the natural replay unit:

- the outcome multiset of the whole campaign is the disjoint union of
  the shards' outcome multisets, independent of execution order and
  worker count;
- plans are drawn sequentially, so shard ``i`` of a campaign depends
  only on ``(fault model, population, seed, shard_size, i)`` — not on
  the campaign's total injection cap. Raising the cap (150 → 2500) extends the plan
  list; every previously stored *full* shard is still byte-for-byte
  the same work and is reused.

Checkpointing is therefore just: persist each shard's counts as it
completes, and on (re)start load whichever shards of the spec already
exist with matching plan counts. An interrupted campaign resumed this
way is bit-identical to an uninterrupted one by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Counter as CounterT
from typing import Dict, List, Optional, Sequence

from ..chaos.hooks import chaos_point
from ..cpu.interpreter import FaultPlan
from ..faults.campaign import CampaignConfig, _args_key, _eligibility_key
from ..faults.models import get_model
from ..ir.module import Module
# module_digest moved to the toolchain (cluster handshakes and the
# artifact cache share it); re-exported here for existing importers.
from ..toolchain.build import module_digest, toolchain_digest  # noqa: F401
from .events import EventBus
from .store import LAB_SCHEMA, GoldenRecord, ResultStore, _canonical, digest_of

#: Injections per shard. Fixed (not derived from the worker count) so
#: the same store rows serve every ``--workers`` setting.
DEFAULT_SHARD_SIZE = 25


def golden_digest(reference: Sequence, eligible: int, executed: int,
                  *streams: int) -> str:
    """Digest of a fault-free run (exact: floats via ``repr``). Extra
    ``streams`` counts (memory accesses, conditional branches, checker
    sites) fold in the full :class:`~repro.faults.models.StreamProfile`,
    so drift in *any* targeting stream purges the cell's shards."""
    return digest_of(["golden", [repr(v) for v in reference], eligible,
                      executed, list(streams)])


@dataclass(frozen=True)
class ShardPlan:
    """One contiguous slice of the campaign's serial plan list."""

    index: int
    start: int  # position of plans[0] in the serial draw order
    plans: List[FaultPlan]


def partition(plans: Sequence[FaultPlan],
              shard_size: int = DEFAULT_SHARD_SIZE) -> List[ShardPlan]:
    if shard_size <= 0:
        raise ValueError(f"shard_size must be positive, got {shard_size}")
    return [
        ShardPlan(index=i, start=i * shard_size,
                  plans=list(plans[i * shard_size:(i + 1) * shard_size]))
        for i in range((len(plans) + shard_size - 1) // shard_size)
    ]


@dataclass(frozen=True)
class CampaignSpec:
    """Everything that determines a shard's outcome counts, digested
    into store keys. The *cell* (module + entry + args + eligibility)
    identifies the golden run; the full spec adds the fault-drawing and
    classification parameters. The injection *cap* is deliberately
    absent — see the module docstring."""

    module_digest: str
    entry: str
    args_key: str
    eligibility: object
    seed: int
    hang_factor: float
    rtol: float
    #: Registered fault-model name; its ``cache_key`` salts the spec
    #: key, so campaigns under different models never share shard rows.
    fault_model: str
    #: Size of the model's target stream (eligible results for the
    #: default model, dynamic memory accesses for address flips, …) —
    #: the modulus every plan's ``target_index`` was drawn against.
    population: int
    shard_size: int

    @property
    def cell_key(self) -> str:
        # Salted with the toolchain digest (LAB_SCHEMA 3): shards
        # recorded under a different build recipe (e.g. the pre-unified
        # cells pipeline that skipped inlining) degrade to misses.
        return digest_of([LAB_SCHEMA, toolchain_digest(), "cell",
                          self.module_digest, self.entry,
                          self.args_key, _canonical(self.eligibility)])

    @property
    def spec_key(self) -> str:
        model_key = _canonical(get_model(self.fault_model).cache_key)
        return digest_of([LAB_SCHEMA, "spec", self.cell_key, self.seed,
                          repr(self.hang_factor), repr(self.rtol),
                          model_key, self.population, self.shard_size])


def build_spec(module: Module, entry: str, args: Sequence,
               config: CampaignConfig, population: int,
               shard_size: int = DEFAULT_SHARD_SIZE
               ) -> Optional[CampaignSpec]:
    """Spec for a campaign, or ``None`` when the eligibility predicate
    is unkeyable (no ``cache_key`` — the campaign then runs without
    durable storage; :func:`repro.faults.campaign._eligibility_key`
    warns once). ``population`` is the size of ``config.fault_model``'s
    target stream, as measured by the golden run. ``config.engine`` and
    ``config.batch`` are deliberately absent: both engines classify
    bit-identical outcomes, and batched execution (``--batch K``)
    produces the same outcomes as sequential injection for every K, so
    their shards are interchangeable store rows."""
    ekey = _eligibility_key(config.fault_eligible)
    if ekey is None:
        return None
    return CampaignSpec(
        module_digest=module_digest(module),
        entry=entry,
        args_key=repr(_args_key(args)),
        eligibility=ekey,
        seed=config.seed,
        hang_factor=config.hang_factor,
        rtol=config.rtol,
        fault_model=config.fault_model,
        population=population,
        shard_size=shard_size,
    )


def ensure_golden(store: ResultStore, spec: CampaignSpec, digest: str,
                  eligible: int, executed: int, events: EventBus) -> bool:
    """Record (or cross-check) the cell's golden run. On a digest
    mismatch — same IR text, different behaviour, i.e. simulator
    semantics drifted — purge the cell's stored shards so nothing stale
    is replayed. Returns True when the stored golden matched."""
    record = store.get_golden(spec.cell_key)
    rule = chaos_point("lab.checkpoint.golden", cell=spec.cell_key[:12])
    if rule is not None and rule.action == "corrupt" and record is not None:
        # A torn golden row read back from disk: the digest no longer
        # matches, which must route through the purge path below (the
        # cell's shards are dropped and re-executed) — never silently
        # replay shards recorded under a golden we cannot verify.
        record = GoldenRecord(digest="chaos-torn-golden",
                              eligible=record.eligible,
                              executed=record.executed)
    if record is None:
        store.put_golden(spec.cell_key, digest, eligible, executed)
        return True
    if record.digest != digest or record.eligible != eligible:
        purged = store.purge_cell(spec.cell_key)
        store.put_golden(spec.cell_key, digest, eligible, executed)
        events.emit("store-stale", purged=purged, cell_key=spec.cell_key)
        return False
    return True


def load_completed(store: ResultStore, spec: CampaignSpec,
                   shards: Sequence[ShardPlan]
                   ) -> Dict[int, CounterT]:
    """Stored outcome counts for every shard of ``spec`` whose plan
    count matches (a short final shard under a smaller cap never
    masquerades as the full shard of a larger one)."""
    stored = store.get_shards(spec.spec_key)
    loaded: Dict[int, CounterT] = {}
    for shard in shards:
        row = stored.get(shard.index)
        if row is not None and row[0] == len(shard.plans):
            loaded[shard.index] = row[1]
    return loaded
