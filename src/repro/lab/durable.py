"""Durable campaign orchestration: store + checkpoint + scheduler +
adaptive sampling, behind one call.

:func:`run_durable_campaign` is the lab's equivalent of
:func:`repro.faults.campaign.run_campaign` — same golden run, same
pre-drawn serial fault plans, same per-injection classification — with
the injection loop replaced by shard bookkeeping:

1. partition the plan list into contiguous shards (the replay unit);
2. serve every shard already in the result store (``shard-store-hit``);
3. schedule the rest onto supervised forked workers, persisting each
   shard's counts the moment it completes — *before* telemetry fires,
   so an interrupt (Ctrl-C or a subscriber raising) never loses work;
4. optionally stop early once the Wilson 95% CI half-width of every
   outcome class is below ``ci_target``, evaluated over the contiguous
   completed shard *prefix* so the stopping point — and therefore the
   counted outcome multiset — is identical for every worker count.

Determinism contract: for a fixed (module, entry, args, config,
shard_size, ci_target) the returned counts are bit-identical across
worker counts, across interrupt/resume cycles, and across store
hit/miss mixtures.
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..faults.campaign import (
    CampaignConfig,
    draw_model_plans,
    golden_profile,
    resolve_workers,
    run_plans,
)
from ..faults.models import get_model
from ..faults.outcomes import CampaignResult
from ..ir.module import Module
from .checkpoint import (
    DEFAULT_SHARD_SIZE,
    CampaignSpec,
    ShardPlan,
    build_spec,
    ensure_golden,
    golden_digest,
    load_completed,
    partition,
)
from .events import EventBus
from .sampling import AdaptiveStop
from .scheduler import SchedulerPolicy, ShardScheduler
from .store import ResultStore, default_store


@contextmanager
def _engine_compile_events(events: EventBus):
    """Bridge segment-compiler telemetry onto the campaign's bus: every
    :func:`repro.cpu.compiled.ensure_compiled` invocation that did work
    while the campaign runs surfaces as an ``engine-compile`` event
    (module digest, block/segment counts, compile wall time, code-cache
    hit/miss split). In-process compiles only — a forked shard worker's
    compiles stay in the worker, like its other events."""
    from ..cpu.compiled import add_compile_hook, remove_compile_hook

    def hook(payload):
        events.emit("engine-compile", **payload)

    add_compile_hook(hook)
    try:
        yield
    finally:
        remove_compile_hook(hook)


@dataclass
class LabRunInfo:
    """What the lab did to produce a campaign result."""

    shards_total: int
    shards_from_store: int
    shards_executed: int
    injections_from_store: int
    injections_executed: int
    #: Injections counted into the result (< the cap under adaptive stop).
    injections_used: int
    stopped_early: bool
    #: Max Wilson CI half-width over outcome classes at the stopping
    #: point (only computed when a ci_target was given).
    ci_halfwidth: Optional[float]
    #: False when the store was disabled (or the spec was unkeyable).
    durable: bool
    #: Batched lanes that died unreported and were reclassified
    #: sequentially (each one costs a full extra run; a persistently
    #: nonzero count means batching is misbehaving for the cell). Only
    #: lanes run in *this* process are counted — forked shard workers
    #: report outcome counts alone, so their degradations stay local.
    batch_lanes_degraded: int = 0


@dataclass
class DurableCampaign:
    result: CampaignResult
    info: LabRunInfo
    spec: Optional[CampaignSpec]


def _prefix_status(shards: Sequence[ShardPlan],
                   results: Dict[int, Counter],
                   stopper: Optional[AdaptiveStop]
                   ) -> Tuple[Optional[int], int, Counter]:
    """Walk shards in index order accumulating completed counts.
    Returns (stop position or None, completed prefix length, cumulative
    counts over that prefix). The stop position is the first shard at
    which the stopping rule is satisfied — a pure function of the shard
    sequence, so identical for every execution schedule."""
    cumulative: Counter = Counter()
    for position, shard in enumerate(shards):
        counts = results.get(shard.index)
        if counts is None:
            return None, position, cumulative
        cumulative = cumulative + counts
        if stopper is not None and stopper.satisfied(cumulative):
            return position, position + 1, cumulative
    return len(shards) - 1, len(shards), cumulative


def run_durable_campaign(
    module: Module,
    entry: str,
    args: Sequence,
    workload: str = "",
    version: str = "",
    config: Optional[CampaignConfig] = None,
    *,
    store: Optional[ResultStore] = None,
    events: Optional[EventBus] = None,
    shard_size: int = DEFAULT_SHARD_SIZE,
    ci_target: Optional[float] = None,
    min_injections: int = 50,
    policy: Optional[SchedulerPolicy] = None,
) -> DurableCampaign:
    """Run (or resume, or entirely replay from the store) a campaign.

    ``store=None`` uses the process-wide default store
    (``$REPRO_LAB_STORE`` or the user cache dir); pass ``store=False``
    to run ephemerally. ``config.injections`` is the cap; with
    ``ci_target`` set, sampling stops at the first shard whose prefix
    satisfies the Wilson rule (see :mod:`repro.lab.sampling`).
    """
    config = config or CampaignConfig()
    events = events or EventBus()
    workers = resolve_workers(config.workers)

    with _engine_compile_events(events):
        reference, profile = golden_profile(
            module, entry, args, config.fault_eligible, engine=config.engine
        )
        if profile.eligible == 0:
            raise ValueError(f"no eligible instructions in @{entry}")
        budget = int(profile.executed * config.hang_factor) + 10_000
        # Raises ValueError when the model's target stream is empty (e.g.
        # checker-fault against unhardened code) — before any store writes.
        plans = draw_model_plans(profile, config)
        population = get_model(config.fault_model).population(profile)
        shards = partition(plans, shard_size)

        spec = build_spec(module, entry, args, config, population, shard_size)
        if store is None:
            store = default_store()
        elif store is False:
            store = None
        durable = spec is not None and store is not None
        if spec is None:
            events.emit("store-disabled",
                        reason="eligibility predicate has no cache_key")

        loaded: Dict[int, Counter] = {}
        if durable:
            digest = golden_digest(reference, profile.eligible, profile.executed,
                                   profile.mem_accesses, profile.cond_branches,
                                   profile.checker_sites)
            ensure_golden(store, spec, digest, profile.eligible, profile.executed,
                          events)
            loaded = load_completed(store, spec, shards)

        events.emit(
            "campaign-started", workload=workload, version=version,
            shards=len(shards), injections=len(plans), from_store=len(loaded),
            # The store address of this campaign's rows; the service stashes
            # it in restart manifests so a cold start can probe how much of
            # an interrupted campaign is already banked.
            spec_key=spec.spec_key if durable else None,
        )
        for index in sorted(loaded):
            events.emit("shard-store-hit", index=index,
                        n=sum(loaded[index].values()))

        results: Dict[int, Counter] = dict(loaded)
        executed_shards = [0]
        executed_injections = [0]
        lane_stats: Dict[str, int] = {}

        def runner(shard: ShardPlan) -> Counter:
            # Shard-level entry point shared with every other fabric:
            # honours config.batch (and falls back to the sequential
            # session loop when batching can't apply) with outcome counts
            # bit-identical either way. ``lane_stats`` / the bus only see
            # shards run in-process; forked workers report counts alone.
            return Counter(run_plans(
                module, entry, args, shard.plans, reference, budget,
                config.rtol, config.fault_eligible, engine=config.engine,
                batch=config.batch, fault_model=config.fault_model,
                snap=config.snap, events=events, stats=lane_stats))

        def on_result(shard: ShardPlan, counts: Counter, seconds: float) -> None:
            results[shard.index] = counts
            executed_shards[0] += 1
            executed_injections[0] += len(shard.plans)
            if durable:
                store.put_shard(spec.spec_key, spec.cell_key, shard.index,
                                len(shard.plans), counts, seconds)
            events.emit(
                "shard-completed", index=shard.index, n=len(shard.plans),
                seconds=seconds, workload=workload, version=version,
                counts={o.value: int(c) for o, c in counts.items()},
            )

        scheduler = ShardScheduler(
            policy or SchedulerPolicy(workers=workers), events
        )
        stopper = (AdaptiveStop(ci_target=ci_target, min_injections=min_injections)
                   if ci_target is not None else None)

        if stopper is None:
            missing = [s for s in shards if s.index not in results]
            scheduler.run(missing, runner, on_result)
            stop_position, _, cumulative = _prefix_status(shards, results, None)
        else:
            # Schedule in waves of at most ``workers`` shards, in index
            # order, re-evaluating the prefix rule between waves. Workers
            # may overrun the stopping point by at most one wave; overrun
            # shards land in the store (useful later) but are not counted.
            while True:
                stop_position, prefix_len, cumulative = _prefix_status(
                    shards, results, stopper
                )
                if stop_position is not None:
                    break
                wave = [s for s in shards[prefix_len:]
                        if s.index not in results][:max(1, workers)]
                if not wave:  # unreachable: an incomplete prefix has a gap
                    stop_position, _, cumulative = _prefix_status(
                        shards, results, None
                    )
                    break
                scheduler.run(wave, runner, on_result)
            if stop_position < len(shards) - 1:
                events.emit(
                    "adaptive-stop",
                    injections=sum(cumulative.values()),
                    halfwidth=stopper.max_halfwidth(cumulative),
                    target=stopper.ci_target,
                )

        used = shards[:stop_position + 1]
        result = CampaignResult(workload=workload, version=version,
                                fault_model=config.fault_model)
        for shard in used:
            result.counts.update(results[shard.index])

        used_indices = {s.index for s in used}
        info = LabRunInfo(
            shards_total=len(shards),
            shards_from_store=len(loaded),
            shards_executed=executed_shards[0],
            injections_from_store=sum(
                sum(c.values()) for i, c in loaded.items() if i in used_indices
            ),
            injections_executed=executed_injections[0],
            injections_used=result.total,
            stopped_early=len(used) < len(shards),
            ci_halfwidth=(stopper.max_halfwidth(result.counts)
                          if stopper is not None else None),
            durable=durable,
            batch_lanes_degraded=lane_stats.get("lanes_degraded", 0),
        )
        events.emit(
            "campaign-finished", workload=workload, version=version,
            injections=result.total, executed=info.injections_executed,
            from_store=info.injections_from_store,
            lanes_degraded=info.batch_lanes_degraded,
        )
        return DurableCampaign(result=result, info=info, spec=spec)
