"""Measurement plumbing for the case-study applications (§VI)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..apps import kvstore, sqldb, webserver, trace_by_name
from ..cpu.interpreter import Machine, MachineConfig, RunResult
from ..ir.module import Module
from ..passes.inline import inline_module
from ..passes.mem2reg import mem2reg
from ..toolchain import get_variant

#: Per-scale request counts (ops, keyspace) for the KV/SQL traces and
#: (requests, page size) for the web server.
_SIZES = {
    "perf": {"kv": (260, 2048), "sql": (160, 384), "web": (22, 8192)},
    "fi": {"kv": (40, 64), "sql": (24, 48), "web": (6, 1024)},
    "test": {"kv": (24, 32), "sql": (12, 24), "web": (4, 512)},
}

APPS = ("memcached", "sqlite3", "apache")


@dataclass
class AppInstance:
    name: str
    module: Module
    entry: str
    args: tuple
    expected: int
    exclude: frozenset = frozenset()


def build_app(name: str, trace_name: str = "A", scale: str = "perf") -> AppInstance:
    sizes = _SIZES[scale]
    if name == "memcached":
        nops, keyspace = sizes["kv"]
        trace = trace_by_name(trace_name, nops, keyspace)
        # A table much larger than the scaled LLC: Memcached's poor
        # memory locality is what amortizes ELZAR's overhead (§VI).
        app = kvstore.build(trace, table_size=1 << 13)
        inst = AppInstance(name, app.module, app.entry, app.args,
                           app.expected_checksum)
    elif name == "sqlite3":
        nops, keyspace = sizes["sql"]
        trace = trace_by_name(trace_name, nops, keyspace)
        app = sqldb.build(trace, tail_capacity=max(64, nops))
        inst = AppInstance(name, app.module, app.entry, app.args,
                           app.expected_checksum)
    elif name == "apache":
        nreq, page = sizes["web"]
        app = webserver.build(nrequests=nreq, page_size=page)
        inst = AppInstance(name, app.module, app.entry, app.args,
                           app.expected_checksum, exclude=webserver.THIRD_PARTY)
    else:
        raise KeyError(f"unknown app {name!r}; have {APPS}")
    mem2reg(inst.module)
    inline_module(inst.module, threshold=60, exclude=inst.exclude)
    mem2reg(inst.module)
    return inst


def app_variant_module(inst: AppInstance, variant: str) -> Module:
    """Apply a registry variant's hardening to the app base. Apps are
    not registry *workloads* (they build from traces, not scales), but
    the variant vocabulary and transforms are the registry's: the
    third-party/kernel ``exclude`` set (sendfile) is copied verbatim
    instead of vectorized/hardened (§VI)."""
    return get_variant(variant).transform(inst.module, exclude=inst.exclude)


class AppSession:
    """Caches app measurements across experiments (Figures 1 and 15)."""

    def __init__(self, scale: str = "perf"):
        self.scale = scale
        self._instances: Dict[Tuple[str, str], AppInstance] = {}
        self._results: Dict[Tuple[str, str, str], RunResult] = {}

    def instance(self, app: str, trace: str = "A") -> AppInstance:
        key = (app, trace)
        cached = self._instances.get(key)
        if cached is None:
            cached = build_app(app, trace, self.scale)
            self._instances[key] = cached
        return cached

    def run(self, app: str, variant: str, trace: str = "A") -> RunResult:
        key = (app, variant, trace)
        cached = self._results.get(key)
        if cached is not None:
            return cached
        inst = self.instance(app, trace)
        module = app_variant_module(inst, variant)
        machine = Machine(
            module,
            MachineConfig(cost_model=get_variant(variant).cost_model),
        )
        result = machine.run(inst.entry, inst.args)
        if result.output != [inst.expected]:
            raise AssertionError(
                f"{app}/{variant}/{trace}: wrong output {result.output} != "
                f"[{inst.expected}]"
            )
        self._results[key] = result
        return result

    def cycles_per_op(self, app: str, variant: str, trace: str = "A") -> float:
        result = self.run(app, variant, trace)
        nops = self.instance(app, trace).args[0]
        return result.cycles / nops
