"""Shared experiment plumbing.

A :class:`Session` memoizes runs so that experiments sharing
measurements (e.g. Figures 11, 12 and 14 all need native and ELZAR
runs) do not repeat work. Module construction is delegated to the
unified toolchain (:mod:`repro.toolchain`): the variant vocabulary is
the registry's (``repro.toolchain.VARIANTS``), the build recipe is the
canonical §IV-A pipeline, and results rehydrate from the shared
on-disk artifact cache when a previous process already built the cell.

See :mod:`repro.toolchain.registry` for the variant vocabulary
(``native``, ``noavx``, ``elzar``, the Figure 12 ablations,
``elzar_float``, ``elzar_proposed``, ``elzar_detect``, ``swiftr``,
``swift``).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..cpu.interpreter import Machine, MachineConfig, RunResult
from ..ir.module import Module
from ..toolchain import VARIANTS, Toolchain, get_variant  # noqa: F401
from ..workloads.common import BuiltWorkload, outputs_match


class Session:
    def __init__(self, scale: str = "perf", check_outputs: bool = True):
        self.scale = scale
        self.check_outputs = check_outputs
        self.toolchain = Toolchain()
        self._results: Dict[Tuple[str, str], RunResult] = {}

    # Workload/module plumbing -------------------------------------------------

    def built(self, name: str) -> BuiltWorkload:
        """The workload's O3 base (= the ``noavx`` variant's module)."""
        return self.toolchain.base(name, self.scale)

    def module(self, name: str, variant: str) -> Module:
        return self.toolchain.module(name, self.scale, variant)

    # Measurement -----------------------------------------------------------------

    def run(self, name: str, variant: str) -> RunResult:
        key = (name, variant)
        cached = self._results.get(key)
        if cached is not None:
            return cached
        built = self.toolchain.build(name, self.scale, variant)
        machine = Machine(
            built.module, MachineConfig(cost_model=built.spec.cost_model)
        )
        result = machine.run(built.entry, built.args)
        if self.check_outputs and built.expected is not None:
            if not outputs_match(result.output, built.expected, built.rtol):
                raise AssertionError(
                    f"{name}/{variant} produced wrong output: "
                    f"{result.output} != {built.expected}"
                )
        self._results[key] = result
        return result

    def cycles(self, name: str, variant: str) -> float:
        return self.run(name, variant).cycles

    def overhead(self, name: str, variant: str, baseline: str = "native") -> float:
        """Single-thread normalized runtime of ``variant`` over
        ``baseline``."""
        return self.cycles(name, variant) / self.cycles(name, baseline)
