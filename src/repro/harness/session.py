"""Shared experiment plumbing.

A :class:`Session` builds workloads once per scale, applies the
transformation pipelines, runs the simulator, and memoizes results so
that experiments sharing measurements (e.g. Figures 11, 12 and 14 all
need native and ELZAR runs) do not repeat work.

Variant names:

- ``native``      — mem2reg + auto-vectorization (the paper's baseline:
  "native version with all AVX optimizations enabled", §V-A);
- ``noavx``       — mem2reg only (the paper's no-SIMD build, Figure 1
  and the smatch-na row of Figure 11);
- ``elzar``       — full ELZAR (vectorization disabled first, §IV-A);
- ``elzar_noload`` / ``elzar_nostore`` / ``elzar_nobranch`` /
  ``elzar_nochecks`` — Figure 12's cumulative check ablation;
- ``elzar_float`` — float-only protection (§V-B);
- ``elzar_proposed`` — ELZAR costed with the proposed-AVX ISA (Fig 17);
- ``swiftr``      — SWIFT-R instruction triplication (Figure 14);
- ``swift``       — SWIFT DMR (ablation extra).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..avx.costs import HASWELL, PROPOSED_AVX
from ..cpu.interpreter import Machine, MachineConfig, RunResult
from ..ir.module import Module
from ..passes.clone import clone_module
from ..passes.elzar import ElzarOptions, elzar_transform
from ..passes.inline import inline_module
from ..passes.mem2reg import mem2reg
from ..passes.swiftr import swift_transform, swiftr_transform
from ..passes.vectorize import vectorize
from ..workloads.common import BuiltWorkload, outputs_match
from ..workloads.registry import get

_ELZAR_VARIANTS: Dict[str, ElzarOptions] = {
    "elzar": ElzarOptions(),
    "elzar_noload": ElzarOptions(check_loads=False),
    "elzar_nostore": ElzarOptions(check_loads=False, check_stores=False),
    "elzar_nobranch": ElzarOptions(
        check_loads=False, check_stores=False, check_branches=False
    ),
    "elzar_nochecks": ElzarOptions.no_checks(),
    "elzar_float": ElzarOptions(float_only=True),
    "elzar_proposed": ElzarOptions(),
}

VARIANTS = tuple(_ELZAR_VARIANTS) + ("native", "noavx", "swiftr", "swift")


class Session:
    def __init__(self, scale: str = "perf", check_outputs: bool = True):
        self.scale = scale
        self.check_outputs = check_outputs
        self._built: Dict[str, BuiltWorkload] = {}
        self._modules: Dict[Tuple[str, str], Module] = {}
        self._results: Dict[Tuple[str, str], RunResult] = {}

    # Workload/module plumbing -------------------------------------------------

    def built(self, name: str) -> BuiltWorkload:
        cached = self._built.get(name)
        if cached is None:
            cached = get(name).build_at(self.scale)
            # The -O3-equivalent pipeline the paper runs before
            # hardening (§IV-A): promote stack slots, inline the hot
            # helpers/libm, promote again.
            mem2reg(cached.module)
            inline_module(cached.module)
            mem2reg(cached.module)
            self._built[name] = cached
        return cached

    def module(self, name: str, variant: str) -> Module:
        key = (name, variant)
        cached = self._modules.get(key)
        if cached is not None:
            return cached
        base = self.built(name).module
        if variant == "noavx":
            module = base
        elif variant == "native":
            module = vectorize(clone_module(base, f"{base.name}.simd"))
        elif variant == "swiftr":
            module = swiftr_transform(base)
        elif variant == "swift":
            module = swift_transform(base)
        elif variant in _ELZAR_VARIANTS:
            module = elzar_transform(base, _ELZAR_VARIANTS[variant])
        else:
            raise KeyError(f"unknown variant {variant!r}; have {VARIANTS}")
        self._modules[key] = module
        return module

    # Measurement -----------------------------------------------------------------

    def run(self, name: str, variant: str) -> RunResult:
        key = (name, variant)
        cached = self._results.get(key)
        if cached is not None:
            return cached
        built = self.built(name)
        module = self.module(name, variant)
        cost_model = PROPOSED_AVX if variant == "elzar_proposed" else HASWELL
        machine = Machine(module, MachineConfig(cost_model=cost_model))
        result = machine.run(built.entry, built.args)
        if self.check_outputs and built.expected is not None:
            if not outputs_match(result.output, built.expected, built.rtol):
                raise AssertionError(
                    f"{name}/{variant} produced wrong output: "
                    f"{result.output} != {built.expected}"
                )
        self._results[key] = result
        return result

    def cycles(self, name: str, variant: str) -> float:
        return self.run(name, variant).cycles

    def overhead(self, name: str, variant: str, baseline: str = "native") -> float:
        """Single-thread normalized runtime of ``variant`` over
        ``baseline``."""
        return self.cycles(name, variant) / self.cycles(name, baseline)
