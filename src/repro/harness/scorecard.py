"""Reproduction scorecard: evaluate every paper claim programmatically.

EXPERIMENTS.md records verdicts narratively; this module computes them,
so a cost-model change (or a fresh environment) can re-grade the whole
reproduction in one call:

    python -m repro scorecard --scale test

Each claim is a named predicate over the experiment results; the
scorecard reports expected vs measured and PASS/FAIL per claim, plus a
summary line. Claims marked perf-only are skipped at test scale (their
regime needs perf-scale datasets — see docs/CALIBRATION.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .apps_runner import AppSession
from .base import Experiment
from .case_studies import fig15_case_studies, relative_throughput
from .fault_experiments import fig13_fault_injection
from .figures import (
    fig01_simd_speedup,
    fig11_overhead,
    fig12_checks_breakdown,
    fig14_swiftr_comparison,
    fig17_proposed_avx,
)
from .session import Session
from .tables import table2_native_stats, table3_ilp, table4_micro


@dataclass
class Claim:
    id: str
    statement: str
    expected: str
    measured: str
    passed: bool
    skipped: bool = False

    @property
    def verdict(self) -> str:
        if self.skipped:
            return "SKIP"
        return "PASS" if self.passed else "FAIL"


class Scorecard:
    def __init__(self, claims: List[Claim]):
        self.claims = claims

    @property
    def passed(self) -> int:
        return sum(1 for c in self.claims if c.passed and not c.skipped)

    @property
    def failed(self) -> int:
        return sum(1 for c in self.claims if not c.passed and not c.skipped)

    @property
    def skipped(self) -> int:
        return sum(1 for c in self.claims if c.skipped)

    def to_experiment(self) -> Experiment:
        exp = Experiment(
            id="scorecard",
            title=(
                f"Reproduction scorecard: {self.passed} pass, "
                f"{self.failed} fail, {self.skipped} skipped"
            ),
            headers=("claim", "statement", "expected", "measured", "verdict"),
        )
        for claim in self.claims:
            exp.rows.append(
                (claim.id, claim.statement, claim.expected, claim.measured,
                 claim.verdict)
            )
        return exp

    def render(self) -> str:
        return self.to_experiment().render()


def _overheads(exp: Experiment) -> dict:
    return {
        row[0]: row[1] for row in exp.rows
        if row[0] not in ("mean", "smatch-na")
    }


def compute_scorecard(
    session: Optional[Session] = None,
    apps: Optional[AppSession] = None,
    scale: str = "test",
    fi_injections: int = 0,
) -> Scorecard:
    """Evaluate every computable paper claim. ``fi_injections=0`` skips
    the (slow) Figure 13 campaign."""
    session = session or Session(scale)
    apps = apps or AppSession(scale)
    perf = session.scale == "perf"
    claims: List[Claim] = []

    def add(id_, statement, expected, measured, passed, skipped=False):
        claims.append(
            Claim(id_, statement, expected, str(measured), passed, skipped)
        )

    # Figure 1 ---------------------------------------------------------------
    fig1 = fig01_simd_speedup(session, apps)
    speedups = {r[0]: r[1] for r in fig1.rows}
    kernels = {k: v for k, v in speedups.items()
               if k not in ("memcached", "sqlite3", "apache")}
    add("fig1.smatch", "string_match gains most from native SIMD",
        "max, >25%", f"{speedups['smatch']:.0f}%",
        speedups["smatch"] == max(kernels.values())
        and speedups["smatch"] > 25.0)
    small = sum(1 for v in speedups.values() if v < 10.0)
    add("fig1.most-small", "most applications gain <10% from SIMD",
        ">=12/17 rows", f"{small}/17", small >= 12)

    # Figure 11 ---------------------------------------------------------------
    fig11 = fig11_overhead(session, threads=(1, 16))
    over = _overheads(fig11)
    mean_t1 = fig11.row_by_label("mean")[1]
    add("fig11.mean", "ELZAR mean overhead is severe (paper 4.1-5.6x)",
        "2-8x", f"{mean_t1:.2f}x", 2.0 < mean_t1 < 8.0)
    add("fig11.smatch-worst", "string_match is ELZAR's worst case",
        "max row", f"{over['smatch']:.2f}x",
        over["smatch"] == max(over.values()))
    add("fig11.black-cheap", "blackscholes is among ELZAR's best cases",
        "cheapest 4", f"{over['black']:.2f}x",
        "black" in sorted(over, key=over.get)[:4])
    dedup = fig11.row_by_label("dedup")
    add("fig11.amortize", "dedup's overhead is amortized by threads",
        "t16 < t1", f"{dedup[1]:.2f} -> {dedup[2]:.2f}",
        dedup[2] < dedup[1])

    # Figure 12 ---------------------------------------------------------------
    fig12 = fig12_checks_breakdown(session)
    mean12 = fig12.row_by_label("mean")
    add("fig12.monotone", "disabling checks monotonically cuts overhead",
        "non-increasing", " -> ".join(f"{v:.2f}" for v in mean12[1:]),
        all(mean12[i] >= mean12[i + 1] for i in range(1, 5)))
    branch_saving = (mean12[3] - mean12[4]) / mean12[3]
    add("fig12.branch-free", "branch checks nearly free (paper ~4%)",
        "<10%", f"{100 * branch_saving:.1f}%", branch_saving < 0.10)
    ls_saving = (mean12[1] - mean12[3]) / mean12[1]
    add("fig12.ls-costly", "load+store checks carry real cost (paper ~36%)",
        ">10%", f"{100 * ls_saving:.1f}%", ls_saving > 0.10)

    # Figure 14 ---------------------------------------------------------------
    fig14 = fig14_swiftr_comparison(session)
    mean14 = fig14.row_by_label("mean")
    add("fig14.swiftr-wins-mean", "SWIFT-R cheaper on average (paper +46%)",
        "elzar > swiftr", f"{mean14[1]:.2f} vs {mean14[2]:.2f}",
        mean14[2] > mean14[1])
    diffs = {r[0]: r[3] for r in fig14.rows if r[0] != "mean"}
    add("fig14.elzar-wins-fp", "ELZAR wins on blackscholes (paper -34%)",
        "diff < 0", f"{diffs['black']:+.0f}%", diffs["black"] < 0)
    add("fig14.swiftr-wins-mem", "SWIFT-R wins on histogram (paper +119%)",
        "diff > 0", f"{diffs['hist']:+.0f}%", diffs["hist"] > 0)

    # Figure 17 ---------------------------------------------------------------
    fig17 = fig17_proposed_avx(session)
    mean17 = fig17.row_by_label("mean")
    add("fig17.estimate", "proposed AVX slashes overhead (paper 3.7->1.48x)",
        "<0.75x of current, <2x", f"{mean17[1]:.2f} -> {mean17[2]:.2f}",
        mean17[2] < 0.75 * mean17[1] and mean17[2] < 2.0)

    # Table II ----------------------------------------------------------------
    t2 = table2_native_stats(session)
    rows2 = {r[0]: r for r in t2.rows}
    mem = {k: r[3] + r[4] for k, r in rows2.items()}
    add("table2.hist", "histogram most load/store-heavy",
        "max", f"{mem['hist']:.1f}%", mem["hist"] == max(mem.values()))
    l1max = max(rows2, key=lambda k: rows2[k][1])
    add("table2.mmul-l1", "matrix_multiply worst L1 miss ratio (paper 62%)",
        "max", f"{l1max}={rows2[l1max][1]:.1f}%",
        l1max == "mmul", skipped=not perf)

    # Table III ---------------------------------------------------------------
    t3 = table3_ilp(session)
    rows3 = {r[0]: r for r in t3.rows}
    add("table3.black", "ELZAR's instruction increase below SWIFT-R's on FP",
        "incr_elzar < incr_swiftr",
        f"{rows3['black'][4]:.2f} vs {rows3['black'][5]:.2f}",
        rows3["black"][4] < rows3["black"][5])
    add("table3.smatch", "string_match is ELZAR's blowup catastrophe (32.7x)",
        "max incr_elzar", f"{rows3['smatch'][4]:.1f}x",
        rows3["smatch"][4] == max(r[4] for r in t3.rows))

    # Table IV ----------------------------------------------------------------
    t4 = table4_micro(session)
    rows4 = {r[0]: r for r in t4.rows}
    add("table4.stores", "stores the least penalized class (store port)",
        "stores <= loads",
        f"{rows4['stores'][1]:.2f} vs {rows4['loads'][1]:.2f}",
        rows4["stores"][1] <= rows4["loads"][1])
    add("table4.trunc", "truncation the pathological case (paper ~8x)",
        "> loads & stores", f"{rows4['truncation'][1]:.2f}x",
        rows4["truncation"][1] > max(rows4["loads"][1], rows4["stores"][1]))

    # Figure 15 ----------------------------------------------------------------
    fig15 = fig15_case_studies(apps)
    kv = relative_throughput(fig15, "memcached", "A")
    sql = relative_throughput(fig15, "sqlite3", "A")
    web = relative_throughput(fig15, "apache", "-")
    add("fig15.rank", "sqlite3 suffers most, apache least (paper 25/78/85%)",
        "sql < kv and sql < web", f"{sql:.2f} / {kv:.2f} / {web:.2f}",
        sql < kv and sql < web)
    sqlite_native = [
        r for r in fig15.rows if r[0] == "sqlite3" and r[2] == "native"
    ][0]
    add("fig15.sqlite-reverse", "sqlite3 throughput falls with threads",
        "t1 > t16", f"{sqlite_native[3]:.0f} -> {sqlite_native[-1]:.0f}",
        sqlite_native[3] > sqlite_native[-1])

    # Figure 13 (optional: slow) -------------------------------------------------
    if fi_injections > 0:
        fi_scale = "fi" if perf else "test"
        fig13 = fig13_fault_injection(injections=fi_injections, scale=fi_scale)
        rows13 = {(r[0], r[1]): r for r in fig13.rows}
        nat = rows13[("mean", "native")]
        elz = rows13[("mean", "elzar")]
        add("fig13.sdc", "ELZAR slashes SDC (paper 27% -> 5%)",
            "elzar < native/2", f"{nat[4]:.1f}% -> {elz[4]:.1f}%",
            elz[4] < nat[4] / 2)
        add("fig13.crash", "ELZAR reduces crashes (paper 18% -> 6%)",
            "elzar < native", f"{nat[2]:.1f}% -> {elz[2]:.1f}%",
            elz[2] < nat[2])
    else:
        add("fig13", "fault-injection campaign", "run with --injections N",
            "skipped", True, skipped=True)

    return Scorecard(claims)
