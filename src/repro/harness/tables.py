"""Tables II, III and IV of the paper."""

from __future__ import annotations

from typing import Optional

from ..workloads.registry import BENCHMARKS, SHORT_NAMES
from .base import Experiment
from .session import Session


def table2_native_stats(
    session: Optional[Session] = None, scale: str = "perf"
) -> Experiment:
    """Table II: runtime statistics of the native versions — L1D-cache
    and branch miss ratios, and the fraction of loads, stores and
    branches over executed instructions (percent)."""
    session = session or Session(scale)
    exp = Experiment(
        id="table2",
        title="Native runtime statistics (%)",
        headers=("benchmark", "L1-miss", "br-miss", "loads", "stores", "branches"),
    )
    for wl in BENCHMARKS:
        c = session.run(wl.name, "native").counters
        exp.rows.append(
            (
                SHORT_NAMES[wl.name],
                c.l1_miss_ratio,
                c.branch_miss_ratio,
                c.load_fraction,
                c.store_fraction,
                c.branch_fraction,
            )
        )
    return exp


def table3_ilp(
    session: Optional[Session] = None, scale: str = "perf"
) -> Experiment:
    """Table III: instruction-level parallelism (instructions/cycle) of
    native, ELZAR and SWIFT-R, and each scheme's increase factor in
    executed (x86-equivalent) instructions w.r.t. native."""
    session = session or Session(scale)
    exp = Experiment(
        id="table3",
        title="ILP and instruction increase w.r.t. native",
        headers=(
            "benchmark", "ilp_native", "ilp_elzar", "ilp_swiftr",
            "incr_elzar", "incr_swiftr",
        ),
    )
    for wl in BENCHMARKS:
        native = session.run(wl.name, "native")
        elzar = session.run(wl.name, "elzar")
        swiftr = session.run(wl.name, "swiftr")
        base_uops = max(1, native.counters.uops)
        exp.rows.append(
            (
                SHORT_NAMES[wl.name],
                native.ilp,
                elzar.ilp,
                swiftr.ilp,
                elzar.counters.uops / base_uops,
                swiftr.counters.uops / base_uops,
            )
        )
    return exp


_TABLE4_PAIRS = (
    ("loads", "micro_loads_avg", "micro_loads_worst"),
    ("stores", "micro_stores_avg", "micro_stores_worst"),
    ("branches", "micro_branches_avg", "micro_branches_worst"),
)


def table4_micro(
    session: Optional[Session] = None, scale: str = "perf"
) -> Experiment:
    """Table IV: normalized runtime of the AVX-wrapped (ELZAR with all
    checks disabled, §VII-A) microbenchmarks w.r.t. native, average and
    worst case, plus the truncation microbenchmark (§VII-A: ~8x)."""
    session = session or Session(scale)
    exp = Experiment(
        id="table4",
        title="Microbenchmarks: AVX-based versions w.r.t. native",
        headers=("class", "average-case", "worst-case"),
    )
    for label, avg_name, worst_name in _TABLE4_PAIRS:
        avg = session.overhead(avg_name, "elzar_nochecks", baseline="noavx")
        worst = session.overhead(worst_name, "elzar_nochecks", baseline="noavx")
        exp.rows.append((label, avg, worst))
    trunc = session.overhead("micro_truncation", "elzar_nochecks", baseline="noavx")
    exp.rows.append(("truncation", trunc, None))
    return exp
