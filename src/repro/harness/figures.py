"""Performance experiments: Figures 1, 11, 12, 14, 17 and the §V-B
float-only study. Each function returns an :class:`Experiment` whose
rows mirror the corresponding paper figure.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..analysis.report import arithmetic_mean
from ..cpu.threads import normalized_overhead
from ..workloads.registry import BENCHMARKS, FP_ONLY_BENCHMARKS, SHORT_NAMES
from .apps_runner import AppSession
from .base import Experiment
from .session import Session

PAPER_THREADS = (1, 2, 4, 8, 16)
APP_LABELS = {"memcached": "memcached", "sqlite3": "sqlite3", "apache": "apache"}


def fig01_simd_speedup(
    session: Optional[Session] = None,
    apps: Optional[AppSession] = None,
    scale: str = "perf",
) -> Experiment:
    """Figure 1: performance improvement of native SIMD vectorization
    over a no-SIMD build (runtime speedup for the kernels, throughput
    increase for the applications)."""
    session = session or Session(scale)
    exp = Experiment(
        id="fig1",
        title="SIMD vectorization speedup over no-SIMD build (%)",
        headers=("benchmark", "speedup_pct"),
        digits=1,
    )
    for wl in BENCHMARKS:
        noavx = session.cycles(wl.name, "noavx")
        native = session.cycles(wl.name, "native")
        speedup = (noavx / native - 1.0) * 100.0
        exp.rows.append((SHORT_NAMES[wl.name], speedup))
    apps = apps or AppSession(scale)
    for app in ("memcached", "sqlite3", "apache"):
        noavx = apps.cycles_per_op(app, "noavx")
        native = apps.cycles_per_op(app, "native")
        speedup = (noavx / native - 1.0) * 100.0
        exp.rows.append((APP_LABELS[app], speedup))
    return exp


def fig11_overhead(
    session: Optional[Session] = None,
    scale: str = "perf",
    threads: Sequence[int] = PAPER_THREADS,
) -> Experiment:
    """Figure 11: ELZAR's normalized runtime w.r.t. native across
    thread counts, including the smatch-na (string_match vs no-AVX
    native) row and the mean."""
    session = session or Session(scale)
    exp = Experiment(
        id="fig11",
        title="ELZAR normalized runtime w.r.t. native",
        headers=("benchmark",) + tuple(f"t{t}" for t in threads),
    )
    per_thread = {t: [] for t in threads}
    for wl in BENCHMARKS:
        native = session.cycles(wl.name, "native")
        elzar = session.cycles(wl.name, "elzar")
        row = [SHORT_NAMES[wl.name]]
        for t in threads:
            o = normalized_overhead(native, elzar, t, wl.profile)
            row.append(o)
            per_thread[t].append(o)
        exp.rows.append(tuple(row))
        if wl.name == "string_match":
            noavx = session.cycles(wl.name, "noavx")
            row = ["smatch-na"]
            for t in threads:
                row.append(normalized_overhead(noavx, elzar, t, wl.profile))
            exp.rows.append(tuple(row))
    exp.rows.append(
        ("mean",) + tuple(arithmetic_mean(per_thread[t]) for t in threads)
    )
    return exp


FIG12_CONFIGS = (
    ("all checks enabled", "elzar"),
    ("no loads", "elzar_noload"),
    ("+ no stores", "elzar_nostore"),
    ("+ no branches", "elzar_nobranch"),
    ("all checks disabled", "elzar_nochecks"),
)


def fig12_checks_breakdown(
    session: Optional[Session] = None,
    scale: str = "perf",
    threads: int = 16,
) -> Experiment:
    """Figure 12: overhead breakdown by successively disabling ELZAR's
    checks (at 16 threads in the paper)."""
    session = session or Session(scale)
    exp = Experiment(
        id="fig12",
        title=f"ELZAR overhead by check configuration (t={threads})",
        headers=("benchmark",) + tuple(label for label, _ in FIG12_CONFIGS),
    )
    sums = [0.0] * len(FIG12_CONFIGS)
    for wl in BENCHMARKS:
        native = session.cycles(wl.name, "native")
        row = [SHORT_NAMES[wl.name]]
        for i, (_, variant) in enumerate(FIG12_CONFIGS):
            cycles = session.cycles(wl.name, variant)
            o = normalized_overhead(native, cycles, threads, wl.profile)
            row.append(o)
            sums[i] += o
        exp.rows.append(tuple(row))
    n = len(BENCHMARKS)
    exp.rows.append(("mean",) + tuple(s / n for s in sums))
    return exp


def fig14_swiftr_comparison(
    session: Optional[Session] = None,
    scale: str = "perf",
    threads: int = 16,
) -> Experiment:
    """Figure 14: ELZAR vs SWIFT-R normalized runtime (16 threads),
    with the per-benchmark relative difference the paper annotates."""
    session = session or Session(scale)
    exp = Experiment(
        id="fig14",
        title=f"ELZAR vs SWIFT-R normalized runtime (t={threads})",
        headers=("benchmark", "swiftr", "elzar", "elzar_vs_swiftr_pct"),
    )
    sw_all, el_all = [], []
    for wl in BENCHMARKS:
        native = session.cycles(wl.name, "native")
        swiftr = normalized_overhead(
            native, session.cycles(wl.name, "swiftr"), threads, wl.profile
        )
        elzar = normalized_overhead(
            native, session.cycles(wl.name, "elzar"), threads, wl.profile
        )
        diff = (elzar / swiftr - 1.0) * 100.0
        sw_all.append(swiftr)
        el_all.append(elzar)
        exp.rows.append((SHORT_NAMES[wl.name], swiftr, elzar, diff))
    mean_sw = arithmetic_mean(sw_all)
    mean_el = arithmetic_mean(el_all)
    exp.rows.append(
        ("mean", mean_sw, mean_el, (mean_el / mean_sw - 1.0) * 100.0)
    )
    return exp


def fig17_proposed_avx(
    session: Optional[Session] = None,
    scale: str = "perf",
    threads: int = 16,
) -> Experiment:
    """Figure 17: estimated ELZAR overhead with the proposed AVX
    changes (gathers/scatters, FLAGS-setting comparisons, offloaded
    checks), next to current ELZAR."""
    session = session or Session(scale)
    exp = Experiment(
        id="fig17",
        title=f"ELZAR with proposed AVX support, normalized runtime (t={threads})",
        headers=("benchmark", "elzar", "estimated_elzar"),
    )
    cur_all, est_all = [], []
    for wl in BENCHMARKS:
        native = session.cycles(wl.name, "native")
        cur = normalized_overhead(
            native, session.cycles(wl.name, "elzar"), threads, wl.profile
        )
        est = normalized_overhead(
            native, session.cycles(wl.name, "elzar_proposed"), threads, wl.profile
        )
        cur_all.append(cur)
        est_all.append(est)
        exp.rows.append((SHORT_NAMES[wl.name], cur, est))
    exp.rows.append(("mean", arithmetic_mean(cur_all), arithmetic_mean(est_all)))
    return exp


def fp_only_overhead(
    session: Optional[Session] = None,
    scale: str = "perf",
    threads: Sequence[int] = PAPER_THREADS,
) -> Experiment:
    """§V-B float-only protection: overhead of the stripped-down ELZAR
    that replicates floats/doubles but not integers/pointers, on the
    FP-heavy benchmarks (paper: blackscholes 9-35%, fluidanimate
    10-18%, swaptions 40-60%)."""
    session = session or Session(scale)
    exp = Experiment(
        id="fp-only",
        title="Float-only ELZAR overhead over native (%)",
        headers=("benchmark",) + tuple(f"t{t}" for t in threads),
        digits=1,
    )
    for wl in FP_ONLY_BENCHMARKS:
        native = session.cycles(wl.name, "native")
        hardened = session.cycles(wl.name, "elzar_float")
        row = [SHORT_NAMES[wl.name]]
        for t in threads:
            o = normalized_overhead(native, hardened, t, wl.profile)
            row.append((o - 1.0) * 100.0)
        exp.rows.append(tuple(row))
    return exp
