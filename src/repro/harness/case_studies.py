"""Figure 15: case-study throughput (Memcached, SQLite3, Apache)."""

from __future__ import annotations

from typing import Optional, Sequence

from ..apps import kvstore, sqldb, webserver
from .apps_runner import AppSession
from .base import Experiment

FIG15_THREADS = (1, 4, 8, 12, 16)

_THROUGHPUT_MODELS = {
    "memcached": kvstore.throughput,
    "sqlite3": sqldb.throughput,
    "apache": webserver.throughput,
}


def fig15_case_studies(
    apps: Optional[AppSession] = None,
    scale: str = "perf",
    threads: Sequence[int] = FIG15_THREADS,
) -> Experiment:
    """Figure 15: throughput vs thread count, native and ELZAR, for the
    three case studies (YCSB workloads A and D for Memcached/SQLite3,
    ab-style static-page requests for Apache). Throughput is reported
    in thousands of operations per second at the modelled 2 GHz clock.
    """
    apps = apps or AppSession(scale)
    exp = Experiment(
        id="fig15",
        title="Case-study throughput (kops/s)",
        headers=("app", "workload", "version") + tuple(f"t{t}" for t in threads),
        digits=1,
    )
    plans = [
        ("memcached", ("A", "D")),
        ("sqlite3", ("A", "D")),
        ("apache", ("-",)),
    ]
    for app, traces in plans:
        model = _THROUGHPUT_MODELS[app]
        for trace in traces:
            trace_arg = trace if trace != "-" else "A"
            for version in ("native", "elzar"):
                cpo = apps.cycles_per_op(app, version, trace_arg)
                row = [app, trace, version]
                for t in threads:
                    row.append(model(cpo, t) / 1e3)
                exp.rows.append(tuple(row))
    return exp


def relative_throughput(exp: Experiment, app: str, trace: str,
                        thread_index: int = -1) -> float:
    """ELZAR throughput as a fraction of native at one thread count —
    the paper's headline numbers (72-85% memcached, 20-30% sqlite,
    ~85% apache)."""
    native = elzar = None
    for row in exp.rows:
        if row[0] == app and row[1] == trace:
            if row[2] == "native":
                native = row[3:][thread_index]
            elif row[2] == "elzar":
                elzar = row[3:][thread_index]
    if native is None or elzar is None:
        raise KeyError(f"no rows for {app}/{trace}")
    return elzar / native
