"""Common experiment result container."""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..analysis.report import render_table


@dataclass
class Experiment:
    """One reproduced table or figure: an id (paper numbering), a
    title, and tabular data renderable as aligned text or exportable
    for plotting."""

    id: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence] = field(default_factory=list)
    digits: int = 2

    def render(self) -> str:
        return render_table(
            f"[{self.id}] {self.title}", self.headers, self.rows, self.digits
        )

    def row_by_label(self, label: str) -> Sequence:
        for row in self.rows:
            if row and row[0] == label:
                return row
        raise KeyError(f"no row labelled {label!r} in {self.id}")

    def column(self, index: int) -> List:
        return [row[index] for row in self.rows]

    def to_dict(self) -> Dict:
        """JSON-friendly form: metadata plus row dictionaries."""
        return {
            "id": self.id,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [
                {h: v for h, v in zip(self.headers, row)} for row in self.rows
            ],
        }

    def to_csv(self) -> str:
        """CSV text (header row first) for external plotting tools."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.headers)
        for row in self.rows:
            writer.writerow(["" if v is None else v for v in row])
        return buffer.getvalue()

    def save(self, path) -> None:
        """Write the experiment as CSV to ``path``."""
        with open(path, "w", newline="") as handle:
            handle.write(self.to_csv())
