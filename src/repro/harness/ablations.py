"""Ablation experiments beyond the paper's figures.

DESIGN.md calls out the design choices these probe:

- **Scheme ablation**: the full detection/recovery design space on one
  axis — the scalar O3 base (registry ``noavx``: every scheme hardens
  scalar code, so it is the overhead baseline), SWIFT (DMR
  duplication-style detection), SWIFT-R (TMR), ELZAR fail-stop (lane
  detection), ELZAR (lane TMR) — both performance and fault outcomes.
  This quantifies what each step of the paper's §II-A taxonomy buys.
- **Lane-count ablation**: ELZAR replicates each value 4x because a
  256-bit YMM register holds four 64-bit lanes; 2 lanes (half a
  register, detection-only — majority needs ≥3) and 8 lanes (a
  hypothetical AVX-512 ZMM register) bracket that choice.
"""

from __future__ import annotations

from typing import Sequence

from ..cpu.interpreter import Machine, MachineConfig
from ..faults.campaign import CampaignConfig
from ..faults.outcomes import Outcome
from ..lab import run_durable_campaign
from ..passes.elzar import ElzarOptions, elzar_transform
from ..toolchain import default_toolchain
from ..workloads.registry import SHORT_NAMES
from .base import Experiment

DEFAULT_BENCHMARKS = ("histogram", "blackscholes")


def _prepared(name: str, scale: str):
    """The workload's O3 base via the unified toolchain (= the
    ``noavx`` variant's module)."""
    return default_toolchain().base(name, scale)


#: Registry variant per scheme, taxonomy order. ``noavx`` (the scalar
#: O3 base every scheme transforms) is first: it is the overhead
#: baseline. ``elzar-failstop`` is a registry alias of ``elzar_detect``.
_SCHEMES = ("noavx", "swift", "swiftr", "elzar-failstop", "elzar")


def scheme_ablation(
    benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
    scale: str = "test",
    injections: int = 80,
    seed: int = 77,
) -> Experiment:
    """Performance overhead and fault outcomes for every hardening
    scheme in the repository. Campaigns run through :mod:`repro.lab`,
    so re-running the ablation replays stored shards instead of
    re-injecting."""
    exp = Experiment(
        id="ablation-scheme",
        title="Hardening schemes: overhead and fault outcomes",
        headers=(
            "benchmark", "scheme", "overhead", "sdc_pct", "crashed_pct",
            "corrected_pct", "detected_pct",
        ),
    )
    cfg = CampaignConfig(injections=injections, seed=seed)
    toolchain = default_toolchain()
    for name in benchmarks:
        base_cycles = None
        for label in _SCHEMES:
            built = toolchain.build(name, scale, label)
            cycles = Machine(built.module, MachineConfig()).run(
                built.entry, built.args
            ).cycles
            if base_cycles is None:
                base_cycles = cycles
            outcomes = run_durable_campaign(
                built.module, built.entry, built.args, name, label, cfg
            ).result
            exp.rows.append(
                (
                    SHORT_NAMES.get(name, name),
                    label,
                    cycles / base_cycles,
                    outcomes.sdc_rate,
                    outcomes.crash_rate,
                    outcomes.rate(Outcome.CORRECTED),
                    outcomes.rate(Outcome.DETECTED),
                )
            )
    return exp


def lane_ablation(
    benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
    scale: str = "test",
) -> Experiment:
    """ELZAR at 2 (detection-only), 4 (the paper's YMM), and 8
    (AVX-512 ZMM) lanes: fault-free overhead per configuration.

    Under this cost model the three run at the same speed — vector ops
    cost one issue slot regardless of width — which is exactly the
    paper's §III-D argument for filling the register: extra copies are
    free, so take the most redundancy the register offers.
    """
    exp = Experiment(
        id="ablation-lanes",
        title="ELZAR lane-count ablation (overhead over native)",
        headers=("benchmark", "lanes2_failstop", "lanes4", "lanes8"),
    )
    configs = (
        ElzarOptions(lanes=2, fail_stop=True),
        ElzarOptions(lanes=4),
        ElzarOptions(lanes=8),
    )
    for name in benchmarks:
        built = _prepared(name, scale)
        native = Machine(built.module, MachineConfig()).run(
            built.entry, built.args
        ).cycles
        row = [SHORT_NAMES.get(name, name)]
        for options in configs:
            module = elzar_transform(built.module, options)
            cycles = Machine(module, MachineConfig()).run(
                built.entry, built.args
            ).cycles
            row.append(cycles / native)
        exp.rows.append(tuple(row))
    return exp
