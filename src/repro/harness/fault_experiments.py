"""Fault-injection experiment (Figure 13) and its building blocks."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..analysis.report import arithmetic_mean
from ..faults.campaign import CampaignConfig
from ..faults.outcomes import Outcome
from ..lab import run_durable_campaign
from ..passes.elzar import elzar_transform
from ..passes.mem2reg import mem2reg
from ..workloads.registry import FI_BENCHMARKS, SHORT_NAMES, get
from .base import Experiment


def fig13_fault_injection(
    injections: int = 150,
    scale: str = "fi",
    seed: int = 2016,
    benchmarks: Optional[Sequence[str]] = None,
    workers: int = 1,
    store=None,
    ci_target: Optional[float] = None,
) -> Experiment:
    """Figure 13: fault-injection outcomes for native vs ELZAR (the
    paper injects 2500 faults per program on 12 benchmarks with the
    smallest inputs; the default here is 150 per program so the bench
    completes in minutes — raise ``injections`` to match the paper).

    Campaigns run through :mod:`repro.lab`: shard outcomes persist in
    the durable result store, so regenerating the figure — today or
    after raising ``injections`` — only executes injections the store
    has not seen (``workers`` forked processes at a time; 0 = all
    CPUs). ``ci_target`` enables Wilson-CI adaptive stopping with
    ``injections`` as the cap."""
    names = list(benchmarks) if benchmarks else [w.name for w in FI_BENCHMARKS]
    exp = Experiment(
        id="fig13",
        title=f"Fault injection outcomes, {injections} SEUs per program (%)",
        headers=(
            "benchmark", "version", "crashed", "correct", "corrupted(SDC)",
            "corrected",
        ),
        digits=1,
    )
    cfg = CampaignConfig(injections=injections, seed=seed, workers=workers)
    agg: Dict[str, Dict[str, list]] = {
        "native": {"crashed": [], "correct": [], "sdc": []},
        "elzar": {"crashed": [], "correct": [], "sdc": []},
    }
    for name in names:
        wl = get(name)
        built = wl.build_at(scale)
        base = mem2reg(built.module)
        hardened = elzar_transform(base)
        for version, module in (("native", base), ("elzar", hardened)):
            result = run_durable_campaign(
                module, built.entry, built.args, wl.name, version, cfg,
                store=store, ci_target=ci_target,
            ).result
            exp.rows.append(
                (
                    SHORT_NAMES.get(wl.name, wl.name),
                    version,
                    result.crash_rate,
                    result.correct_rate,
                    result.sdc_rate,
                    result.rate(Outcome.CORRECTED),
                )
            )
            agg[version]["crashed"].append(result.crash_rate)
            agg[version]["correct"].append(result.correct_rate)
            agg[version]["sdc"].append(result.sdc_rate)
    for version in ("native", "elzar"):
        exp.rows.append(
            (
                "mean",
                version,
                arithmetic_mean(agg[version]["crashed"]),
                arithmetic_mean(agg[version]["correct"]),
                arithmetic_mean(agg[version]["sdc"]),
                None,
            )
        )
    return exp
