"""Fault-injection experiments (Figure 13 and the fault-model matrix)."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..analysis.report import arithmetic_mean
from ..faults.campaign import CampaignConfig
from ..faults.models import model_names
from ..faults.outcomes import Outcome
from ..lab import run_durable_campaign
from ..toolchain import default_toolchain
from ..workloads.registry import FI_BENCHMARKS, SHORT_NAMES
from .base import Experiment


def fig13_fault_injection(
    injections: int = 150,
    scale: str = "fi",
    seed: int = 2016,
    benchmarks: Optional[Sequence[str]] = None,
    workers: int = 1,
    store=None,
    ci_target: Optional[float] = None,
) -> Experiment:
    """Figure 13: fault-injection outcomes for native vs ELZAR (the
    paper injects 2500 faults per program on 12 benchmarks with the
    smallest inputs; the default here is 150 per program so the bench
    completes in minutes — raise ``injections`` to match the paper).

    Campaigns run through :mod:`repro.lab`: shard outcomes persist in
    the durable result store, so regenerating the figure — today or
    after raising ``injections`` — only executes injections the store
    has not seen (``workers`` forked processes at a time; 0 = all
    CPUs). ``ci_target`` enables Wilson-CI adaptive stopping with
    ``injections`` as the cap."""
    names = list(benchmarks) if benchmarks else [w.name for w in FI_BENCHMARKS]
    exp = Experiment(
        id="fig13",
        title=f"Fault injection outcomes, {injections} SEUs per program (%)",
        headers=(
            "benchmark", "version", "crashed", "correct", "corrupted(SDC)",
            "corrected",
        ),
        digits=1,
    )
    cfg = CampaignConfig(injections=injections, seed=seed, workers=workers)
    agg: Dict[str, Dict[str, list]] = {
        "native": {"crashed": [], "correct": [], "sdc": []},
        "elzar": {"crashed": [], "correct": [], "sdc": []},
    }
    toolchain = default_toolchain()
    for name in names:
        for version in ("native", "elzar"):
            built = toolchain.build(name, scale, version)
            result = run_durable_campaign(
                built.module, built.entry, built.args, name, version, cfg,
                store=store, ci_target=ci_target,
            ).result
            exp.rows.append(
                (
                    SHORT_NAMES.get(name, name),
                    version,
                    result.crash_rate,
                    result.correct_rate,
                    result.sdc_rate,
                    result.rate(Outcome.CORRECTED),
                )
            )
            agg[version]["crashed"].append(result.crash_rate)
            agg[version]["correct"].append(result.correct_rate)
            agg[version]["sdc"].append(result.sdc_rate)
    for version in ("native", "elzar"):
        exp.rows.append(
            (
                "mean",
                version,
                arithmetic_mean(agg[version]["crashed"]),
                arithmetic_mean(agg[version]["correct"]),
                arithmetic_mean(agg[version]["sdc"]),
                None,
            )
        )
    return exp


#: The matrix's hardening schemes, as registry variant names (the
#: ``elzar-detect`` spelling is a registry alias of ``elzar_detect``,
#: kept for row-label continuity): the scalar base, SWIFT-R's scalar
#: triplication, ELZAR detection-only (fail-stop checks), and full
#: ELZAR recovery. The unhardened row is ``noavx`` rather than
#: ``native``: the registry reserves ``native`` for the vectorized
#: performance baseline, whose to-scalar wrappers would count as
#: checker sites and fill the checker-fault hole the matrix pins.
_MATRIX_VERSIONS = ("noavx", "swiftr", "elzar-detect", "elzar")


def fault_model_matrix(
    injections: int = 60,
    scale: str = "test",
    seed: int = 2016,
    benchmarks: Optional[Sequence[str]] = None,
    workers: int = 1,
    store=None,
    models: Optional[Sequence[str]] = None,
) -> Experiment:
    """Outcome rates per fault model × hardening scheme (§V-C probe).

    Figure 13 asks one question ("does ELZAR correct register upsets?");
    this matrix asks the paper's harder one: *which fault shapes evade
    which scheme*. Expected signatures, each pinned by a test:

    - ``register-bitflip``: ELZAR corrects, SWIFT-R corrects, the
      unhardened base (``noavx``) takes SDCs — the headline result.
    - ``address-bitflip``: every scheme looks like the base — the fault
      lands after the check on the extracted scalar address (§V-C's
      window of vulnerability), so replication cannot see it.
    - ``branch-flip``: faults after the ptest sync point; wrong-path
      execution with consistent lanes.
    - ``checker-fault``: upsets inside the inserted checks themselves;
      rows exist only for hardened versions (the stream is empty
      elsewhere — those cells are skipped, not zero).
    - ``instruction-skip``: zeroes all lanes consistently, so lane
      comparison is blind to it.
    - ``memory-bitflip``: violates the paper's ECC-memory assumption;
      hardened and unhardened rates match.
    """
    names = list(benchmarks) if benchmarks else ["histogram"]
    wanted = list(models) if models else model_names()
    exp = Experiment(
        id="fault-model-matrix",
        title=(f"Outcome rates per fault model, {injections} injections "
               "per cell (%)"),
        headers=("benchmark", "fault model", "version", "crashed",
                 "corrected", "masked", "corrupted(SDC)"),
        digits=1,
    )
    toolchain = default_toolchain()
    for name in names:
        for model in wanted:
            for version in _MATRIX_VERSIONS:
                built = toolchain.build(name, scale, version)
                cfg = CampaignConfig(injections=injections, seed=seed,
                                     workers=workers, fault_model=model)
                try:
                    result = run_durable_campaign(
                        built.module, built.entry, built.args, name,
                        version, cfg, store=store,
                    ).result
                except ValueError:
                    # Empty target stream for this model × version
                    # (checker-fault against unhardened code): a hole
                    # in the matrix by design, not a zero row.
                    continue
                exp.rows.append((
                    SHORT_NAMES.get(name, name),
                    model,
                    version,
                    result.crash_rate,
                    result.rate(Outcome.CORRECTED),
                    result.rate(Outcome.MASKED),
                    result.sdc_rate,
                ))
    return exp
