"""Fault-injection experiments (Figure 13 and the fault-model matrix)."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..analysis.report import arithmetic_mean
from ..faults.campaign import CampaignConfig
from ..faults.models import model_names
from ..faults.outcomes import Outcome
from ..lab import run_durable_campaign
from ..passes.elzar import ElzarOptions, elzar_transform
from ..passes.mem2reg import mem2reg
from ..passes.swiftr import swiftr_transform
from ..workloads.registry import FI_BENCHMARKS, SHORT_NAMES, get
from .base import Experiment


def fig13_fault_injection(
    injections: int = 150,
    scale: str = "fi",
    seed: int = 2016,
    benchmarks: Optional[Sequence[str]] = None,
    workers: int = 1,
    store=None,
    ci_target: Optional[float] = None,
) -> Experiment:
    """Figure 13: fault-injection outcomes for native vs ELZAR (the
    paper injects 2500 faults per program on 12 benchmarks with the
    smallest inputs; the default here is 150 per program so the bench
    completes in minutes — raise ``injections`` to match the paper).

    Campaigns run through :mod:`repro.lab`: shard outcomes persist in
    the durable result store, so regenerating the figure — today or
    after raising ``injections`` — only executes injections the store
    has not seen (``workers`` forked processes at a time; 0 = all
    CPUs). ``ci_target`` enables Wilson-CI adaptive stopping with
    ``injections`` as the cap."""
    names = list(benchmarks) if benchmarks else [w.name for w in FI_BENCHMARKS]
    exp = Experiment(
        id="fig13",
        title=f"Fault injection outcomes, {injections} SEUs per program (%)",
        headers=(
            "benchmark", "version", "crashed", "correct", "corrupted(SDC)",
            "corrected",
        ),
        digits=1,
    )
    cfg = CampaignConfig(injections=injections, seed=seed, workers=workers)
    agg: Dict[str, Dict[str, list]] = {
        "native": {"crashed": [], "correct": [], "sdc": []},
        "elzar": {"crashed": [], "correct": [], "sdc": []},
    }
    for name in names:
        wl = get(name)
        built = wl.build_at(scale)
        base = mem2reg(built.module)
        hardened = elzar_transform(base)
        for version, module in (("native", base), ("elzar", hardened)):
            result = run_durable_campaign(
                module, built.entry, built.args, wl.name, version, cfg,
                store=store, ci_target=ci_target,
            ).result
            exp.rows.append(
                (
                    SHORT_NAMES.get(wl.name, wl.name),
                    version,
                    result.crash_rate,
                    result.correct_rate,
                    result.sdc_rate,
                    result.rate(Outcome.CORRECTED),
                )
            )
            agg[version]["crashed"].append(result.crash_rate)
            agg[version]["correct"].append(result.correct_rate)
            agg[version]["sdc"].append(result.sdc_rate)
    for version in ("native", "elzar"):
        exp.rows.append(
            (
                "mean",
                version,
                arithmetic_mean(agg[version]["crashed"]),
                arithmetic_mean(agg[version]["correct"]),
                arithmetic_mean(agg[version]["sdc"]),
                None,
            )
        )
    return exp


#: The matrix's hardening schemes: SWIFT-R's scalar triplication, ELZAR
#: detection-only (fail-stop checks), and full ELZAR recovery.
_MATRIX_VERSIONS = (
    ("native", lambda base: base),
    ("swiftr", swiftr_transform),
    ("elzar-detect", lambda base: elzar_transform(
        base, ElzarOptions(fail_stop=True))),
    ("elzar", elzar_transform),
)


def fault_model_matrix(
    injections: int = 60,
    scale: str = "test",
    seed: int = 2016,
    benchmarks: Optional[Sequence[str]] = None,
    workers: int = 1,
    store=None,
    models: Optional[Sequence[str]] = None,
) -> Experiment:
    """Outcome rates per fault model × hardening scheme (§V-C probe).

    Figure 13 asks one question ("does ELZAR correct register upsets?");
    this matrix asks the paper's harder one: *which fault shapes evade
    which scheme*. Expected signatures, each pinned by a test:

    - ``register-bitflip``: ELZAR corrects, SWIFT-R corrects, native
      takes SDCs — the headline result.
    - ``address-bitflip``: every scheme looks like native — the fault
      lands after the check on the extracted scalar address (§V-C's
      window of vulnerability), so replication cannot see it.
    - ``branch-flip``: faults after the ptest sync point; wrong-path
      execution with consistent lanes.
    - ``checker-fault``: upsets inside the inserted checks themselves;
      rows exist only for hardened versions (the stream is empty
      elsewhere — those cells are skipped, not zero).
    - ``instruction-skip``: zeroes all lanes consistently, so lane
      comparison is blind to it.
    - ``memory-bitflip``: violates the paper's ECC-memory assumption;
      hardened and native rates match.
    """
    names = list(benchmarks) if benchmarks else ["histogram"]
    wanted = list(models) if models else model_names()
    exp = Experiment(
        id="fault-model-matrix",
        title=(f"Outcome rates per fault model, {injections} injections "
               "per cell (%)"),
        headers=("benchmark", "fault model", "version", "crashed",
                 "corrected", "masked", "corrupted(SDC)"),
        digits=1,
    )
    for name in names:
        wl = get(name)
        built = wl.build_at(scale)
        base = mem2reg(built.module)
        for model in wanted:
            for version, transform in _MATRIX_VERSIONS:
                cfg = CampaignConfig(injections=injections, seed=seed,
                                     workers=workers, fault_model=model)
                try:
                    result = run_durable_campaign(
                        base if version == "native" else transform(base),
                        built.entry, built.args, wl.name, version, cfg,
                        store=store,
                    ).result
                except ValueError:
                    # Empty target stream for this model × version
                    # (checker-fault against unhardened code): a hole
                    # in the matrix by design, not a zero row.
                    continue
                exp.rows.append((
                    SHORT_NAMES.get(wl.name, wl.name),
                    model,
                    version,
                    result.crash_rate,
                    result.rate(Outcome.CORRECTED),
                    result.rate(Outcome.MASKED),
                    result.sdc_rate,
                ))
    return exp
