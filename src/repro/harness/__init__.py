"""repro.harness — one entry point per paper table/figure.

See DESIGN.md's experiment index. Each function returns an
:class:`Experiment` whose ``render()`` prints the same rows the paper
reports.
"""

from .ablations import lane_ablation, scheme_ablation
from .apps_runner import AppSession, build_app
from .base import Experiment
from .case_studies import FIG15_THREADS, fig15_case_studies, relative_throughput
from .fault_experiments import fault_model_matrix, fig13_fault_injection
from .figures import (
    PAPER_THREADS,
    fig01_simd_speedup,
    fig11_overhead,
    fig12_checks_breakdown,
    fig14_swiftr_comparison,
    fig17_proposed_avx,
    fp_only_overhead,
)
from .scorecard import Claim, Scorecard, compute_scorecard
from .session import Session, VARIANTS
from .tables import table2_native_stats, table3_ilp, table4_micro

__all__ = [
    "AppSession",
    "Experiment",
    "FIG15_THREADS",
    "PAPER_THREADS",
    "Claim",
    "Scorecard",
    "Session",
    "VARIANTS",
    "build_app",
    "compute_scorecard",
    "fault_model_matrix",
    "fig01_simd_speedup",
    "fig11_overhead",
    "fig12_checks_breakdown",
    "fig13_fault_injection",
    "fig14_swiftr_comparison",
    "fig15_case_studies",
    "fig17_proposed_avx",
    "lane_ablation",
    "scheme_ablation",
    "fp_only_overhead",
    "relative_throughput",
    "table2_native_stats",
    "table3_ilp",
    "table4_micro",
]
