"""perf-stat-style hardware counters collected during simulation.

These feed Tables II and III of the paper directly: instruction counts
by class, AVX instruction counts, cache and branch-predictor miss
ratios, and the hardening schemes' correction/detection events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class PerfCounters:
    instructions: int = 0
    #: x86-equivalent instruction count: IR instructions weighted by the
    #: machine-instruction sequences they lower to (extract/broadcast
    #: wrappers, check sequences, ...). This is what the paper's
    #: perf-stat "number of executed instructions" corresponds to
    #: (Table III), and what ILP is computed against.
    uops: int = 0
    avx_instructions: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    cond_branches: int = 0
    branch_misses: int = 0
    calls: int = 0
    l1_accesses: int = 0
    l1_misses: int = 0
    l2_misses: int = 0
    l3_misses: int = 0
    fp_instructions: int = 0
    int_div_instructions: int = 0
    corrections: int = 0        # ELZAR/SWIFT-R majority-vote fixes
    detections: int = 0         # DMR fail-stop detections
    recoveries_failed: int = 0  # no-majority program stops
    by_opcode: Dict[str, int] = field(default_factory=dict)

    collect_by_opcode: bool = False

    def count(self, opcode: str) -> None:
        if self.collect_by_opcode:
            self.by_opcode[opcode] = self.by_opcode.get(opcode, 0) + 1

    _INT_FIELDS = (
        "instructions", "uops", "avx_instructions", "loads", "stores",
        "branches", "cond_branches", "branch_misses", "calls",
        "l1_accesses", "l1_misses", "l2_misses", "l3_misses",
        "fp_instructions", "int_div_instructions", "corrections",
        "detections", "recoveries_failed",
    )

    def as_dict(self) -> Dict:
        """Plain-data snapshot of every counter (benchmark baselines,
        differential tests, cross-process campaign aggregation)."""
        out = {name: getattr(self, name) for name in self._INT_FIELDS}
        out["by_opcode"] = dict(self.by_opcode)
        return out

    # Derived ratios (all in percent, matching Table II) ----------------------

    @property
    def l1_miss_ratio(self) -> float:
        if self.l1_accesses == 0:
            return 0.0
        return 100.0 * self.l1_misses / self.l1_accesses

    @property
    def branch_miss_ratio(self) -> float:
        if self.cond_branches == 0:
            return 0.0
        return 100.0 * self.branch_misses / self.cond_branches

    # Instruction-class fractions are reported over the x86-equivalent
    # instruction count (uops), matching what perf-stat divides by in
    # Table II — address arithmetic folded into addressing modes does
    # not inflate the denominator.

    @property
    def _denominator(self) -> int:
        return self.uops if self.uops else self.instructions

    @property
    def load_fraction(self) -> float:
        if self._denominator == 0:
            return 0.0
        return 100.0 * self.loads / self._denominator

    @property
    def store_fraction(self) -> float:
        if self._denominator == 0:
            return 0.0
        return 100.0 * self.stores / self._denominator

    @property
    def branch_fraction(self) -> float:
        if self._denominator == 0:
            return 0.0
        return 100.0 * self.branches / self._denominator

    @property
    def fp_fraction(self) -> float:
        if self._denominator == 0:
            return 0.0
        return 100.0 * self.fp_instructions / self._denominator

    def merge(self, other: "PerfCounters") -> None:
        self.instructions += other.instructions
        self.uops += other.uops
        self.avx_instructions += other.avx_instructions
        self.loads += other.loads
        self.stores += other.stores
        self.branches += other.branches
        self.cond_branches += other.cond_branches
        self.branch_misses += other.branch_misses
        self.calls += other.calls
        self.l1_accesses += other.l1_accesses
        self.l1_misses += other.l1_misses
        self.l2_misses += other.l2_misses
        self.l3_misses += other.l3_misses
        self.fp_instructions += other.fp_instructions
        self.int_div_instructions += other.int_div_instructions
        self.corrections += other.corrections
        self.detections += other.detections
        self.recoveries_failed += other.recoveries_failed
        for op, n in other.by_opcode.items():
            self.by_opcode[op] = self.by_opcode.get(op, 0) + n
