"""The simulated machine: an IR interpreter with performance modelling
and fault-injection hooks.

One :class:`Machine` owns a module plus the architectural state: flat
memory, cache hierarchy, branch predictor, perf counters, and the
dataflow timing model. ``run()`` executes a function and returns a
:class:`RunResult` with the return value, program output, cycle count,
and counters.

Fault injection (paper §IV-B): arm the machine with a
:class:`FaultPlan`; when the N-th *eligible* dynamic instruction
executes (value-producing, inside an eligible function), one bit of its
result register — or of one SIMD lane, matching the paper's YMM
injection rule — is flipped.
"""

from __future__ import annotations

import copy
import math
import struct
import sys
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..avx import costs as C
from ..avx import ops as avxops
from ..ir import opcodes as OP
from ..ir import types as T
from ..ir.function import BasicBlock, Function
from ..ir.instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    BroadcastInst,
    CallInst,
    CastInst,
    ExtractElementInst,
    FCmpInst,
    GepInst,
    ICmpInst,
    InsertElementInst,
    Instruction,
    LoadInst,
    PhiInst,
    SelectInst,
    ShuffleVectorInst,
    StoreInst,
)
from ..ir.module import Module
from ..ir.values import Argument, Constant, GlobalVariable, UndefValue, Value
from .branch_predictor import GSharePredictor
from .cache import CacheHierarchy
from .counters import PerfCounters
from .errors import (
    AbortError,
    ArithmeticFault,
    DetectedError,
    HangError,
    MemoryFault,
    Trap,
)
from .memory import HEAP_BASE, STACK_BASE, Memory
from .timing import TimingModel

_MASK64 = (1 << 64) - 1

# Each simulated call nests several Python frames; Machine.run raises
# the recursion limit to this (and restores it afterwards) so the
# default MachineConfig.max_call_depth is reachable before Python's own
# limit cuts in. Importing this module does not mutate process state.
_RUN_RECURSION_LIMIT = 8000

#: Vector-typed instructions that do NOT contend for the vector ALU
#: port group (memory ops use the load/store ports; control flow and
#: calls are scalar machinery; phis are renaming only).
_NON_ALU_OPS = frozenset({"load", "store", "br", "ret", "call", "phi", "alloca"})


# --- Engine registry ---------------------------------------------------------
#
# Maps MachineConfig.engine names to runners. "reference" is special
# (the tree-walking interpreter below, dispatched inline by
# Machine.run); every other engine resolves lazily to
# ``module_path.attr``, a callable ``runner(machine, fn, arg_values) ->
# value`` (lazy so importing this module never pulls the decode or
# compile layers).
_ENGINE_SPECS: Dict[str, Optional[Tuple[str, str]]] = {
    "reference": None,
    "decoded": ("repro.cpu.compiled", "run_decoded"),
    "compiled": ("repro.cpu.compiled", "run_compiled"),
}


def register_engine(name: str, spec: Optional[Tuple[str, str]]) -> None:
    """Register (or override) an execution engine. ``spec`` is a
    ``(module_path, attr)`` pair naming a runner, or None for engines
    dispatched specially by Machine.run."""
    _ENGINE_SPECS[name] = spec


def registered_engines() -> Tuple[str, ...]:
    return tuple(sorted(_ENGINE_SPECS))


def _engine_runner(name: str):
    import importlib

    spec = _ENGINE_SPECS[name]
    module_path, attr = spec
    return getattr(importlib.import_module(module_path), attr)


@dataclass
class MachineConfig:
    cost_model: C.CostModel = C.HASWELL
    collect_timing: bool = True
    cache_enabled: bool = True
    #: Cache sizes. The default hierarchy is the testbed's (Haswell)
    #: geometry scaled down (2 KB / 8 KB / 256 KB) because simulated
    #: datasets are necessarily ~100-1000x smaller than the paper's —
    #: scaling the caches with the data preserves each workload's miss
    #: *ratios* (Table II) and the memory-boundedness that amortizes
    #: hardening overhead (mmul, §V-B), which is what drives the
    #: performance shapes.
    l1_size: int = 2 << 10
    l2_size: int = 8 << 10
    l3_size: int = 256 << 10
    max_instructions: int = 200_000_000
    heap_capacity: int = 64 << 20
    stack_capacity: int = 8 << 20
    collect_by_opcode: bool = False
    max_call_depth: int = 400
    #: Which functions fault injection may target (None = every defined
    #: non-intrinsic function in the module).
    fault_eligible: Optional[Callable[[Function], bool]] = None
    #: Execution engine: "decoded" runs decoded records on the frame
    #: trampoline, "compiled" (the default) additionally runs
    #: closure-compiled block segments (both in repro.cpu.compiled,
    #: bit-identical results); "reference" runs the original
    #: tree-walking interpreter.
    engine: str = "compiled"

    def __post_init__(self) -> None:
        if self.engine not in _ENGINE_SPECS:
            raise ValueError(
                f"unknown engine {self.engine!r}; registered engines: "
                + ", ".join(registered_engines())
            )


@dataclass
class FaultPlan:
    """One planned fault, fired at the ``target_index``-th dynamic event
    of its targeting stream.

    The default ``kind`` (``"reg"``) is the paper's §IV-B model: flip
    ``bit`` of the result register of the ``target_index``-th *eligible*
    dynamic instruction — within SIMD ``lane`` when the result is a
    vector. Other kinds (see :mod:`repro.faults.models`) reinterpret the
    fields:

    - ``"multi"``  — flip ``bit`` plus every bit in ``bits`` (all in the
      same ``lane`` of one result; multi-bit upset).
    - ``"skip"``   — replace the result with a type-appropriate zero
      (instruction-skip approximation).
    - ``"mem"``    — the eligible instruction only *times* the upset;
      flip bit ``bit % 8`` of the live heap byte at
      ``offset % live_heap_bytes``. The targeted value is untouched.
    - ``"addr"``   — counted on the *memory-access* stream: flip ``bit``
      of the effective address of the ``target_index``-th dynamic
      load/store in eligible functions, for that one access.
    - ``"branch"`` — counted on the *conditional-branch* stream: invert
      the ``target_index``-th dynamic branch decision (after the
      condition — and any ``elzar.branch_cond`` sync — has evaluated).
    - ``"checker"`` — counted on the *checker-site* stream (results of
      hardening-inserted wrapper/check instructions only): flip
      ``bit``/``lane`` of that site's result, i.e. an upset inside the
      paper's window of vulnerability.

    Bit-width semantics (deliberate, paper-matching, and baked into
    stored campaign keys — do **not** "fix" by narrowing the draw):
    ``bit`` is always drawn from ``[0, 64)`` and ``lane`` from
    ``[0, 4)``, the full GPR width and YMM lane count. A scalar result
    narrower than 64 bits (i32, f32, i8, i1) occupies the register's low
    bits, so a flip at ``bit % 64 >= width`` hits architecturally dead
    upper bits and is immediately masked — ``_flip`` returns the value
    unchanged. Vector lanes are packed, so ``lane`` wraps (``lane %
    count``) and ``bit`` wraps into the element width: vector flips
    always land in live bits. This inflates the masked rate for
    integer-heavy scalar code exactly as real GPR injections do.
    """

    target_index: int
    bit: int
    lane: int = 0
    #: Fault-model kind; see class docstring. Default preserves the
    #: original single-bit register-flip behaviour.
    kind: str = "reg"
    #: Extra bits to flip for ``kind="multi"`` (distinct from ``bit``).
    bits: tuple = ()
    #: Heap byte offset seed for ``kind="mem"``.
    offset: int = 0


@dataclass
class RunResult:
    value: object
    output: List
    counters: PerfCounters
    cycles: float
    ilp: float
    fault_injected: bool = False

    @property
    def instructions(self) -> int:
        return self.counters.instructions


def _to_signed(value: int, width: int) -> int:
    value &= (1 << width) - 1
    if value >= 1 << (width - 1):
        value -= 1 << width
    return value


def _round_f32(value: float) -> float:
    try:
        return struct.unpack("<f", struct.pack("<f", value))[0]
    except OverflowError:
        return math.inf if value > 0 else -math.inf


def _int_binop(opcode: str, a: int, b: int, width: int) -> int:
    mask = (1 << width) - 1
    if opcode == "add":
        return (a + b) & mask
    if opcode == "sub":
        return (a - b) & mask
    if opcode == "mul":
        return (a * b) & mask
    if opcode == "and":
        return a & b
    if opcode == "or":
        return a | b
    if opcode == "xor":
        return a ^ b
    if opcode == "shl":
        return (a << (b % width)) & mask
    if opcode == "lshr":
        return (a >> (b % width)) & mask
    if opcode == "ashr":
        return (_to_signed(a, width) >> (b % width)) & mask
    if opcode in ("sdiv", "srem"):
        sa, sb = _to_signed(a, width), _to_signed(b, width)
        if sb == 0:
            raise ArithmeticFault("integer division by zero")
        quotient = int(sa / sb)  # C-style truncation toward zero
        if opcode == "sdiv":
            return quotient & mask
        return (sa - quotient * sb) & mask
    if opcode in ("udiv", "urem"):
        if b == 0:
            raise ArithmeticFault("integer division by zero")
        return (a // b if opcode == "udiv" else a % b) & mask
    raise ValueError(f"unknown integer binop {opcode}")


def _float_binop(opcode: str, a: float, b: float, bits: int) -> float:
    if opcode == "fadd":
        r = a + b
    elif opcode == "fsub":
        r = a - b
    elif opcode == "fmul":
        r = a * b
    elif opcode == "fdiv":
        if b == 0.0:
            r = math.nan if a == 0.0 else math.copysign(math.inf, a) * math.copysign(1.0, b)
        else:
            r = a / b
    elif opcode == "frem":
        r = math.fmod(a, b) if b != 0.0 else math.nan
    else:
        raise ValueError(f"unknown float binop {opcode}")
    return _round_f32(r) if bits == 32 else r


_ICMP = {
    "eq": lambda a, b, w: a == b,
    "ne": lambda a, b, w: a != b,
    "ult": lambda a, b, w: a < b,
    "ule": lambda a, b, w: a <= b,
    "ugt": lambda a, b, w: a > b,
    "uge": lambda a, b, w: a >= b,
    "slt": lambda a, b, w: _to_signed(a, w) < _to_signed(b, w),
    "sle": lambda a, b, w: _to_signed(a, w) <= _to_signed(b, w),
    "sgt": lambda a, b, w: _to_signed(a, w) > _to_signed(b, w),
    "sge": lambda a, b, w: _to_signed(a, w) >= _to_signed(b, w),
}

_FCMP = {
    "oeq": lambda a, b: a == b,
    "one": lambda a, b: a != b and not (math.isnan(a) or math.isnan(b)),
    "olt": lambda a, b: a < b,
    "ole": lambda a, b: a <= b,
    "ogt": lambda a, b: a > b,
    "oge": lambda a, b: a >= b,
    "ord": lambda a, b: not (math.isnan(a) or math.isnan(b)),
    "uno": lambda a, b: math.isnan(a) or math.isnan(b),
}

_HOST_UNARY = {
    "sqrt": lambda x: math.sqrt(x) if x >= 0 else math.nan,
    "exp": lambda x: math.exp(x) if x < 709 else math.inf,
    "log": lambda x: math.log(x) if x > 0 else (-math.inf if x == 0 else math.nan),
    "sin": math.sin,
    "cos": math.cos,
    "erf": math.erf,
    "fabs": math.fabs,
    "floor": math.floor,
    "ceil": math.ceil,
}


def _compute_static(inst: Instruction, costs: C.CostModel) -> tuple:
    """(counts_as_avx, uses_vector_alu, uops) — immutable per instruction."""
    opcode = inst.opcode
    is_vec = inst.type.is_vector or any(op.type.is_vector for op in inst.operands)
    is_avx = is_vec or opcode in OP.VECTOR_OPS
    is_vec_alu = is_vec and opcode not in _NON_ALU_OPS
    if opcode == "call" and inst.callee.is_intrinsic:
        uops = costs.intrinsic_cost(inst.callee.name)[1]
        if inst.callee.name.startswith(("elzar.", "avx.")):
            is_vec_alu = True  # checks run on the SIMD units
    elif opcode == "br":
        uops = 1
    elif is_vec_alu:
        uops = costs.vector_uops(opcode)
    else:
        uops = costs.scalar_uops(opcode)
    return (is_avx, is_vec_alu, uops)


@dataclass
class MachineSnapshot:
    """Between-runs machine state captured by :meth:`Machine.snapshot`.

    Opaque to callers; its only contract is the
    ``snapshot → run → restore → run`` bit-identity round trip. Memory
    is stored as the *used* heap/stack prefixes, so a snapshot of a
    freshly constructed machine costs the laid-out globals, not the
    configured capacities — cheap enough to take one per injection
    session and restore per injection."""

    heap: bytes
    stack: bytes
    heap_top: int
    stack_top: int
    output: List
    counters: PerfCounters
    cache: Optional[CacheHierarchy]
    predictor: GSharePredictor
    timing: Optional[TimingModel]
    branch_pcs: Dict[int, int]
    next_pc: int
    executed: int
    fault_state: tuple
    count_only: bool
    trace_eligible: object
    watches: tuple


class Machine:
    def __init__(self, module: Module, config: Optional[MachineConfig] = None):
        self.module = module
        self.config = config or MachineConfig()
        self.memory = Memory(self.config.heap_capacity, self.config.stack_capacity)
        self.counters = PerfCounters()
        self.counters.collect_by_opcode = self.config.collect_by_opcode
        self.cache = (
            CacheHierarchy(
                l1_size=self.config.l1_size,
                l2_size=self.config.l2_size,
                l3_size=self.config.l3_size,
            )
            if self.config.cache_enabled
            else None
        )
        self.predictor = GSharePredictor()
        self.timing = TimingModel(self.config.cost_model) if self.config.collect_timing else None
        self.output: List = []
        self.globals_addr: Dict[str, int] = {}
        self._executed = 0
        self._static_info: Dict[int, tuple] = {}
        self._branch_pcs: Dict[int, int] = {}
        self._next_pc = 1
        # Fault injection state. ``fault_plans`` is sorted by target
        # index; multi-plan arming exercises the paper's §III-A claim
        # that four lanes tolerate two independent SEUs.
        self.fault_plans: List[FaultPlan] = []
        self._next_plan = 0
        self.fault_injected = False
        self.fault_target: Optional[Instruction] = None
        self.eligible_executed = 0
        # Additional targeting streams (repro.faults.models). Each is a
        # sorted plan list + cursor + dynamic-event counter, mirroring
        # the eligible-instruction stream above. One campaign arms plans
        # of a single kind, so the streams never interact.
        self._checker_plans: List[FaultPlan] = []
        self._next_checker_plan = 0
        self.checker_sites_executed = 0
        self._mem_plans: List[FaultPlan] = []
        self._next_mem_plan = 0
        self.mem_accesses_eligible = 0
        self._branch_plans: List[FaultPlan] = []
        self._next_branch_plan = 0
        self.cond_branches_eligible = 0
        self._eligible_fn_cache: Dict[int, bool] = {}
        self._trace_eligible = None
        # Skip gate for the eligible-stream hook: the engines invoke
        # ``_trace_eligible`` only once ``eligible_executed`` exceeds
        # this, so a hook that knows its next interesting index (a site
        # watch or checkpoint comparator) costs one int compare per
        # event instead of a Python call. -1 (the value the setter
        # resets to) fires at every event — dense hooks like
        # ``faults.trace`` need no changes.
        self._trace_skip_until = -1
        self._count_only = False
        # Stream watch hooks (repro.cpu.batch). Each is an optional
        # ``(inst, index) -> None`` callable fired at every dynamic event
        # of its stream *before* that event's plan-cursor reads, so a
        # hook may arm plans that fire at the very event it observed
        # (the batch engine forks a lane inside the hook and arms the
        # lane's plan in the child). Set via :meth:`set_stream_watches`.
        self._watch_checker = None
        self._watch_mem = None
        self._watch_branch = None
        # Execution-position registries for the batch engine's state
        # digests (decoded engine only; cleared at every ``run()``):
        # ``_frames`` holds ``(dfn, regs)`` per live decoded frame,
        # outermost first; ``_call_sites`` holds ``id(call_inst)`` per
        # suspended caller, identifying where each frame resumes.
        self._frames: List[tuple] = []
        self._call_sites: List[int] = []
        #: True when any per-eligible-instruction bookkeeping is needed
        #: (armed plans, count-only profiling, or a trace hook); the
        #: decoded engine skips that bookkeeping entirely otherwise.
        self._fault_active = False
        # Stream gates. ``*_needed`` = this run must count the stream at
        # all (count-only profiling or plans of that kind armed);
        # ``*_live`` = needed *and* currently inside an eligible frame —
        # maintained by the frame setup of both engines so the hot
        # load/store/branch paths test one boolean.
        self._checker_needed = False
        self._mem_stream_needed = False
        self._branch_stream_needed = False
        self._mem_stream_live = False
        self._branch_stream_live = False
        self._current_fn: Optional[Function] = None
        self._depth = -1
        self._layout_globals()

    # Eligible-instruction bookkeeping modes ------------------------------------

    def _refresh_fault_mode(self) -> None:
        self._fault_active = (
            bool(self.fault_plans)
            or bool(self._checker_plans)
            or bool(self._mem_plans)
            or bool(self._branch_plans)
            or self._count_only
            or self._trace_eligible is not None
            or self._watch_checker is not None
            or self._watch_mem is not None
            or self._watch_branch is not None
        )
        self._checker_needed = (
            self._count_only
            or bool(self._checker_plans)
            or self._watch_checker is not None
        )
        self._mem_stream_needed = (
            self._count_only
            or bool(self._mem_plans)
            or self._watch_mem is not None
        )
        self._branch_stream_needed = (
            self._count_only
            or bool(self._branch_plans)
            or self._watch_branch is not None
        )

    def set_stream_watches(self, checker=None, mem=None, branch=None) -> None:
        """Install (or, with no arguments, clear) the per-stream watch
        hooks and recompute the bookkeeping gates. The eligible stream
        has no separate watch — use :attr:`trace_eligible`, which fires
        at every eligible event with the same fire-at-observed-event
        guarantee."""
        self._watch_checker = checker
        self._watch_mem = mem
        self._watch_branch = branch
        self._refresh_fault_mode()

    @property
    def trace_eligible(self):
        """Optional per-eligible-instruction hook ``(inst, fn) -> None``
        used by the trace/demarcation step (paper §IV-B)."""
        return self._trace_eligible

    @trace_eligible.setter
    def trace_eligible(self, hook) -> None:
        self._trace_eligible = hook
        self._trace_skip_until = -1
        self._refresh_fault_mode()

    @property
    def count_only(self) -> bool:
        """Profiling mode: count eligible dynamic instructions (into
        ``eligible_executed``) without arming any fault. Campaign golden
        runs use this instead of a never-firing sentinel plan."""
        return self._count_only

    @count_only.setter
    def count_only(self, value: bool) -> None:
        self._count_only = bool(value)
        self._refresh_fault_mode()

    # Setup ----------------------------------------------------------------------

    def _layout_globals(self) -> None:
        for gv in self.module.globals.values():
            self.globals_addr[gv.name] = self.memory.init_global(
                gv.content_type, gv.initializer
            )

    def write_global(self, name: str, values, elem_ty: Optional[T.Type] = None) -> None:
        """Populate a global array from Python values (test/workload setup)."""
        gv = self.module.get_global(name)
        addr = self.globals_addr[name]
        ty = gv.content_type
        if ty.is_array:
            elem = elem_ty or ty.elem
            esize = T.sizeof(elem)
            for i, v in enumerate(values):
                self.memory.store_scalar(elem, addr + i * esize, v)
        else:
            self.memory.store_scalar(ty, addr, values)

    def read_global(self, name: str, count: Optional[int] = None):
        gv = self.module.get_global(name)
        addr = self.globals_addr[name]
        ty = gv.content_type
        if ty.is_array:
            n = count if count is not None else ty.count
            esize = T.sizeof(ty.elem)
            return [
                self.memory.load_scalar(ty.elem, addr + i * esize) for i in range(n)
            ]
        return self.memory.load_scalar(ty, addr)

    # Fault plumbing ----------------------------------------------------------------

    def arm_fault(self, plan: FaultPlan) -> None:
        """Arm a single-event-upset injection (the paper's fault model,
        §III-A)."""
        self.arm_faults([plan])

    def arm_faults(self, plans: Sequence[FaultPlan]) -> None:
        """Arm multiple independent upsets in one run (used to test the
        §III-A observation that four replicas usually mask two faults).
        Plans with negative target indices never fire (golden runs use
        one to count eligible instructions).

        Plans are routed by ``kind`` onto their targeting stream:
        ``addr`` plans count dynamic loads/stores, ``branch`` plans
        count dynamic conditional branches, ``checker`` plans count
        hardening-inserted check/wrapper sites, and everything else
        (``reg``/``multi``/``skip``/``mem``) counts eligible
        value-producing instructions, exactly as before."""
        reg: List[FaultPlan] = []
        checker: List[FaultPlan] = []
        mem: List[FaultPlan] = []
        branch: List[FaultPlan] = []
        for plan in plans:
            kind = getattr(plan, "kind", "reg")
            if kind == "checker":
                checker.append(plan)
            elif kind == "addr":
                mem.append(plan)
            elif kind == "branch":
                branch.append(plan)
            else:
                reg.append(plan)
        by_index = lambda p: p.target_index  # noqa: E731
        self.fault_plans = sorted(reg, key=by_index)
        self._next_plan = 0
        while (self._next_plan < len(self.fault_plans)
               and self.fault_plans[self._next_plan].target_index < 0):
            self._next_plan += 1
        self._checker_plans = sorted(checker, key=by_index)
        self._next_checker_plan = 0
        self._mem_plans = sorted(mem, key=by_index)
        self._next_mem_plan = 0
        self._branch_plans = sorted(branch, key=by_index)
        self._next_branch_plan = 0
        self.fault_injected = False
        self.fault_target = None
        self.eligible_executed = 0
        self.checker_sites_executed = 0
        self.mem_accesses_eligible = 0
        self.cond_branches_eligible = 0
        self._refresh_fault_mode()

    def _fault_eligible_fn(self, fn: Function) -> bool:
        cached = self._eligible_fn_cache.get(id(fn))
        if cached is None:
            if self.config.fault_eligible is not None:
                cached = self.config.fault_eligible(fn)
            else:
                cached = not fn.is_intrinsic
            self._eligible_fn_cache[id(fn)] = cached
        return cached

    def _maybe_inject(self, inst: Instruction, value, in_eligible_fn: bool):
        if inst.type.is_void:
            return value
        if not in_eligible_fn:
            return value
        index = self.eligible_executed
        self.eligible_executed += 1
        if (self._trace_eligible is not None
                and self.eligible_executed > self._trace_skip_until):
            self._trace_eligible(inst, self._current_fn)
        if self._checker_needed:
            value = self._checker_step(value, inst)
        plans = self.fault_plans
        cursor = self._next_plan
        if cursor >= len(plans) or index != plans[cursor].target_index:
            return value
        return self._apply_reg_plans(value, inst, index)

    def _apply_reg_plans(self, value, inst: Instruction, index: int):
        """Apply every eligible-stream plan aimed at ``index`` (they may
        hit different lanes/bits of the same result). Shared verbatim by
        both engines — this is what keeps their injection behaviour
        bit-identical across fault kinds."""
        plans = self.fault_plans
        cursor = self._next_plan
        ty = inst.type
        while cursor < len(plans) and plans[cursor].target_index == index:
            plan = plans[cursor]
            kind = plan.kind
            if kind == "skip":
                value = _zero_value(ty)
            elif kind == "mem":
                self._flip_memory(plan)
            elif kind == "multi":
                value = _flip(value, ty, plan.bit, plan.lane)
                for extra_bit in plan.bits:
                    value = _flip(value, ty, extra_bit, plan.lane)
            else:  # "reg" — the paper's single-bit model
                value = _flip(value, ty, plan.bit, plan.lane)
            cursor += 1
        self._next_plan = cursor
        self.fault_injected = True
        self.fault_target = inst  # what the SEU hit (for analyses/tests)
        return value

    def _flip_memory(self, plan: FaultPlan) -> None:
        """MemoryBitFlip payload: flip one bit of a live heap byte. The
        eligible instruction only *times* the upset; its result is left
        intact. Restricted to the heap (globals + rt.alloc) — stack
        depth varies across schemes, so a heap-relative offset is the
        only placement that hits comparable state in native and hardened
        builds. An empty heap makes the flip a no-op."""
        mem = self.memory
        live = mem.heap_top - HEAP_BASE
        if live <= 0:
            return
        mem._heap[plan.offset % live] ^= 1 << (plan.bit % 8)
        self.fault_injected = True

    def _checker_step(self, value, inst: Instruction):
        """Count (and possibly corrupt) a checker-site result. Called
        from the per-eligible hook of both engines when the checker
        stream is needed; non-checker instructions pass through."""
        if not _is_checker_site(inst):
            return value
        index = self.checker_sites_executed
        self.checker_sites_executed = index + 1
        if self._watch_checker is not None:
            # The hook may arm plans aimed at this very site (batch lane
            # fork), so the plan list and cursor are read after it.
            self._watch_checker(inst, index)
        plans = self._checker_plans
        cursor = self._next_checker_plan
        if cursor >= len(plans) or index != plans[cursor].target_index:
            return value
        ty = inst.type
        while cursor < len(plans) and plans[cursor].target_index == index:
            plan = plans[cursor]
            value = _flip(value, ty, plan.bit, plan.lane)
            cursor += 1
        self._next_checker_plan = cursor
        self.fault_injected = True
        self.fault_target = inst
        return value

    def _mem_step(self, addr: int, inst: Instruction) -> int:
        """Count a dynamic load/store and, when an ``addr`` plan fires,
        corrupt its effective address for this one access. Runs *after*
        address computation (so after any hardening check on the address
        value) and *before* the memory access and cache bookkeeping —
        the paper's post-check window on extracted scalar addresses."""
        index = self.mem_accesses_eligible
        self.mem_accesses_eligible = index + 1
        if self._watch_mem is not None:
            self._watch_mem(inst, index)
        plans = self._mem_plans
        cursor = self._next_mem_plan
        if cursor >= len(plans) or index != plans[cursor].target_index:
            return addr
        while cursor < len(plans) and plans[cursor].target_index == index:
            addr = (addr ^ (1 << (plans[cursor].bit % 64))) & _MASK64
            cursor += 1
        self._next_mem_plan = cursor
        self.fault_injected = True
        self.fault_target = inst
        return addr

    def _branch_step(self, taken: bool, inst: Instruction) -> bool:
        """Count a dynamic conditional branch and, when a ``branch``
        plan fires, invert its decision — a wrong-path fault *after* the
        ptest/branch synchronisation point."""
        index = self.cond_branches_eligible
        self.cond_branches_eligible = index + 1
        if self._watch_branch is not None:
            self._watch_branch(inst, index)
        plans = self._branch_plans
        cursor = self._next_branch_plan
        if cursor >= len(plans) or index != plans[cursor].target_index:
            return taken
        while cursor < len(plans) and plans[cursor].target_index == index:
            taken = not taken
            cursor += 1
        self._next_branch_plan = cursor
        self.fault_injected = True
        self.fault_target = inst
        return taken

    # Execution ------------------------------------------------------------------------

    def run(self, fn_name: str, args: Sequence = (), reset_counters: bool = False) -> RunResult:
        fn = self.module.get_function(fn_name)
        if fn.is_declaration:
            raise ValueError(f"cannot run declaration @{fn_name}")
        if reset_counters:
            self.counters = PerfCounters()
            self.counters.collect_by_opcode = self.config.collect_by_opcode
            if self.timing is not None:
                self.timing.reset()
            self._executed = 0
        arg_values = list(args)
        if len(arg_values) != len(fn.args):
            raise TypeError(
                f"@{fn_name} expects {len(fn.args)} args, got {len(arg_values)}"
            )
        # A previous run abandoned after a Trap leaves stale entries in
        # the position registries (they are popped by normal unwinding,
        # but a machine is allowed to be rerun after a caught Trap).
        if self._frames:
            self._frames.clear()
        if self._call_sites:
            self._call_sites.clear()
        saved_limit = sys.getrecursionlimit()
        if saved_limit < _RUN_RECURSION_LIMIT:
            sys.setrecursionlimit(_RUN_RECURSION_LIMIT)
        try:
            engine = self.config.engine
            if _ENGINE_SPECS.get(engine, None) is None:
                if engine not in _ENGINE_SPECS:
                    raise ValueError(
                        f"unknown engine {engine!r}; registered engines: "
                        + ", ".join(registered_engines())
                    )
                value = self._exec_function(
                    fn, arg_values, [0.0] * len(arg_values), 0
                )
            else:
                value = _engine_runner(engine)(self, fn, arg_values)
        finally:
            if saved_limit < _RUN_RECURSION_LIMIT:
                sys.setrecursionlimit(saved_limit)
        cycles = self.timing.cycles if self.timing is not None else 0.0
        ilp = self.timing.ilp if self.timing is not None else 0.0
        return RunResult(
            value=value,
            output=self.output,
            counters=self.counters,
            cycles=cycles,
            ilp=ilp,
            fault_injected=self.fault_injected,
        )

    # Snapshot / restore -----------------------------------------------------------------

    def snapshot(self) -> "MachineSnapshot":
        """Capture the machine's *between-runs* architectural state.

        Valid only while no ``run()`` is in progress (the live Python
        call stack of a run cannot be captured). Everything a later
        :meth:`restore` needs to make the next run bit-identical to a
        run from this point is copied: the used prefixes of heap and
        stack, the output list, counters, cache, predictor and timing
        state, branch-PC numbering, the instruction budget cursor, and
        the complete fault-plumbing state (plans, cursors, stream
        counters, hooks). Pure caches that cannot affect results
        (``_static_info``, ``_eligible_fn_cache``, the module's decoded
        form) are deliberately *not* part of a snapshot.
        """
        mem = self.memory
        heap_used = mem.heap_top - HEAP_BASE
        stack_used = mem.stack_top - STACK_BASE
        return MachineSnapshot(
            heap=bytes(memoryview(mem._heap)[:heap_used]),
            stack=bytes(memoryview(mem._stack)[:stack_used]),
            heap_top=mem.heap_top,
            stack_top=mem.stack_top,
            output=list(self.output),
            counters=copy.deepcopy(self.counters),
            cache=copy.deepcopy(self.cache),
            predictor=copy.deepcopy(self.predictor),
            timing=copy.deepcopy(self.timing),
            branch_pcs=dict(self._branch_pcs),
            next_pc=self._next_pc,
            executed=self._executed,
            fault_state=(
                list(self.fault_plans), self._next_plan,
                list(self._checker_plans), self._next_checker_plan,
                list(self._mem_plans), self._next_mem_plan,
                list(self._branch_plans), self._next_branch_plan,
                self.fault_injected, self.fault_target,
                self.eligible_executed, self.checker_sites_executed,
                self.mem_accesses_eligible, self.cond_branches_eligible,
            ),
            count_only=self._count_only,
            trace_eligible=self._trace_eligible,
            watches=(self._watch_checker, self._watch_mem,
                     self._watch_branch),
        )

    def restore(self, snap: "MachineSnapshot") -> None:
        """Return the machine to a state captured by :meth:`snapshot`;
        the next ``run()`` is bit-identical to one started right after
        the snapshot was taken (the round-trip property test pins
        this). Memory the machine touched *after* the snapshot is
        re-zeroed, so a restored machine is indistinguishable from a
        fresh one with the snapshot replayed onto it."""
        mem = self.memory
        heap_used = snap.heap_top - HEAP_BASE
        cur_heap = mem.heap_top - HEAP_BASE
        mem._heap[:heap_used] = snap.heap
        if cur_heap > heap_used:
            mem._heap[heap_used:cur_heap] = bytes(cur_heap - heap_used)
        stack_used = snap.stack_top - STACK_BASE
        cur_stack = mem.stack_top - STACK_BASE
        mem._stack[:stack_used] = snap.stack
        if cur_stack > stack_used:
            mem._stack[stack_used:cur_stack] = bytes(cur_stack - stack_used)
        mem.heap_top = snap.heap_top
        mem.stack_top = snap.stack_top
        self.output = list(snap.output)
        self.counters = copy.deepcopy(snap.counters)
        self.cache = copy.deepcopy(snap.cache)
        self.predictor = copy.deepcopy(snap.predictor)
        self.timing = copy.deepcopy(snap.timing)
        self._branch_pcs = dict(snap.branch_pcs)
        self._next_pc = snap.next_pc
        self._executed = snap.executed
        (self.fault_plans, self._next_plan,
         self._checker_plans, self._next_checker_plan,
         self._mem_plans, self._next_mem_plan,
         self._branch_plans, self._next_branch_plan,
         self.fault_injected, self.fault_target,
         self.eligible_executed, self.checker_sites_executed,
         self.mem_accesses_eligible, self.cond_branches_eligible,
         ) = snap.fault_state
        self.fault_plans = list(self.fault_plans)
        self._checker_plans = list(self._checker_plans)
        self._mem_plans = list(self._mem_plans)
        self._branch_plans = list(self._branch_plans)
        self._count_only = snap.count_only
        self._trace_eligible = snap.trace_eligible
        self._trace_skip_until = -1
        self._watch_checker, self._watch_mem, self._watch_branch = (
            snap.watches
        )
        # Between-runs invariants (restore targets a quiescent machine;
        # an aborted run may have left these mid-frame).
        self._current_fn = None
        self._depth = -1
        self._mem_stream_live = False
        self._branch_stream_live = False
        self._frames.clear()
        self._call_sites.clear()
        self._refresh_fault_mode()

    # The core loop ---------------------------------------------------------------------

    def _exec_function(self, fn: Function, args: List, arg_times: List[float],
                       depth: int):
        if depth > self.config.max_call_depth:
            raise HangError(f"call depth exceeded in @{fn.name}")
        frame: Dict[Value, object] = {}
        times: Dict[Value, float] = {}
        for formal, actual, ready in zip(fn.args, args, arg_times):
            frame[formal] = actual
            times[formal] = ready
        mark = self.memory.stack_mark()
        caller = self._current_fn
        self._current_fn = fn
        prev_mem = self._mem_stream_live
        prev_branch = self._branch_stream_live
        if self._fault_active:
            in_eligible = self._fault_eligible_fn(fn)
            self._mem_stream_live = in_eligible and self._mem_stream_needed
            self._branch_stream_live = (
                in_eligible and self._branch_stream_needed
            )
        try:
            return self._exec_blocks(fn, frame, times, depth)
        finally:
            self._current_fn = caller
            self._mem_stream_live = prev_mem
            self._branch_stream_live = prev_branch
            self.memory.stack_release(mark)

    def _exec_blocks(self, fn: Function, frame: Dict, times: Dict, depth: int):
        counters = self.counters
        timing = self.timing
        costs = self.config.cost_model
        static_info = self._static_info
        eligible = self._fault_eligible_fn(fn)
        block = fn.entry
        prev: Optional[BasicBlock] = None

        while True:
            insts = block.instructions
            start_index = 0

            # Phis: evaluated in parallel against the incoming edge.
            if prev is not None and isinstance(insts[0], PhiInst):
                moves = []
                for inst in insts:
                    if not isinstance(inst, PhiInst):
                        break
                    start_index += 1
                    incoming = inst.incoming_for(prev)
                    moves.append(
                        (inst, self._eval(incoming, frame), times.get(incoming, 0.0))
                    )
                for phi, value, ready in moves:
                    value = self._maybe_inject(phi, value, eligible)
                    frame[phi] = value
                    times[phi] = ready
            else:
                while start_index < len(insts) and isinstance(
                    insts[start_index], PhiInst
                ):
                    start_index += 1

            for idx in range(start_index, len(insts)):
                inst = insts[idx]
                self._executed += 1
                if self._executed > self.config.max_instructions:
                    raise HangError(
                        f"instruction budget exceeded ({self.config.max_instructions})"
                    )
                opcode = inst.opcode
                counters.instructions += 1
                counters.count(opcode)
                # Static per-instruction facts (vector-ness, uop count)
                # never change across executions; cache them.
                static = static_info.get(id(inst))
                if static is None:
                    static = _compute_static(inst, costs)
                    static_info[id(inst)] = static
                is_avx, is_vec_alu, uops = static
                if is_avx:
                    counters.avx_instructions += 1

                # --- Terminators -------------------------------------------------
                if opcode == "br":
                    counters.branches += 1
                    counters.uops += uops
                    block, prev = self._exec_branch(inst, frame, times, counters,
                                                    timing, costs), block
                    break
                if opcode == "ret":
                    counters.uops += uops
                    if timing is not None:
                        operand_times = [times.get(op, 0.0) for op in inst.operands]
                        timing.issue("ret", costs.scalar["ret"], operand_times,
                                     uops=uops)
                    if inst.operands:
                        return self._eval(inst.operands[0], frame)
                    return None
                if opcode == "unreachable":
                    raise MemoryFault(0, 0)

                # --- Everything else ----------------------------------------------
                value, latency, extra = self._exec_inst(inst, frame, times, depth)
                value = self._maybe_inject(inst, value, eligible)
                if not inst.type.is_void:
                    frame[inst] = value
                counters.uops += uops
                if timing is not None:
                    operand_times = [times.get(op, 0.0) for op in inst.operands]
                    done = timing.issue(
                        opcode, latency, operand_times, extra,
                        uops=uops, is_vector=is_vec_alu,
                    )
                    if not inst.type.is_void:
                        times[inst] = done
            else:
                raise MemoryFault(0, 0)  # fell off a block with no terminator

    def _exec_branch(self, inst: BranchInst, frame, times, counters, timing, costs):
        if not inst.is_conditional:
            if timing is not None:
                timing.issue("br", costs.scalar["br"], ())
            return inst.then_block
        counters.cond_branches += 1
        cond = self._eval(inst.cond, frame)
        taken = bool(cond)
        if self._branch_stream_live:
            taken = self._branch_step(taken, inst)
        pc = self._branch_pcs.get(id(inst))
        if pc is None:
            pc = self._next_pc
            self._next_pc += 1
            self._branch_pcs[id(inst)] = pc
        correct = self.predictor.predict_and_update(pc, taken)
        if timing is not None:
            resolve = timing.issue(
                "br", costs.scalar["br"], [times.get(inst.cond, 0.0)]
            )
            if not correct:
                counters.branch_misses += 1
                timing.branch_mispredict(resolve)
        elif not correct:
            counters.branch_misses += 1
        return inst.then_block if taken else inst.else_block

    # Instruction semantics ------------------------------------------------------------

    def _exec_inst(self, inst: Instruction, frame: Dict, times: Dict, depth: int):
        """Returns (value, latency, extra_latency)."""
        opcode = inst.opcode
        costs = self.config.cost_model
        counters = self.counters
        ty = inst.type

        if isinstance(inst, BinaryInst):
            a = self._eval(inst.lhs, frame)
            b = self._eval(inst.rhs, frame)
            elem = ty.elem if ty.is_vector else ty
            if elem.is_float:
                counters.fp_instructions += 1
            if opcode in ("sdiv", "udiv", "srem", "urem"):
                counters.int_div_instructions += 1
            if ty.is_vector:
                if elem.is_float:
                    value = tuple(
                        _float_binop(opcode, x, y, elem.bits) for x, y in zip(a, b)
                    )
                else:
                    width = elem.width
                    value = tuple(
                        _int_binop(opcode, x, y, width) for x, y in zip(a, b)
                    )
                return value, costs.vector_latency(opcode, elem), 0.0
            if elem.is_float:
                return _float_binop(opcode, a, b, elem.bits), costs.scalar_latency(opcode), 0.0
            return _int_binop(opcode, a, b, elem.width), costs.scalar_latency(opcode), 0.0

        if isinstance(inst, ICmpInst):
            a = self._eval(inst.lhs, frame)
            b = self._eval(inst.rhs, frame)
            oty = inst.lhs.type
            fun = _ICMP[inst.pred]
            if oty.is_vector:
                width = T.bitwidth(oty.elem) if not oty.elem.is_float else 64
                value = tuple(1 if fun(x, y, width) else 0 for x, y in zip(a, b))
                return value, costs.vector_latency("icmp"), 0.0
            width = T.bitwidth(oty)
            return (1 if fun(a, b, width) else 0), costs.scalar_latency("icmp"), 0.0

        if isinstance(inst, FCmpInst):
            a = self._eval(inst.lhs, frame)
            b = self._eval(inst.rhs, frame)
            counters.fp_instructions += 1
            fun = _FCMP[inst.pred]
            if inst.lhs.type.is_vector:
                value = tuple(1 if fun(x, y) else 0 for x, y in zip(a, b))
                return value, costs.vector_latency("fcmp"), 0.0
            return (1 if fun(a, b) else 0), costs.scalar_latency("fcmp"), 0.0

        if isinstance(inst, CastInst):
            value = self._eval(inst.value, frame)
            src = inst.value.type
            if ty.is_vector:
                out = tuple(
                    _cast_scalar(opcode, v, src.elem, ty.elem) for v in value
                )
                return out, costs.vector_latency(opcode), 0.0
            return (
                _cast_scalar(opcode, value, src, ty),
                costs.scalar_latency(opcode),
                0.0,
            )

        if isinstance(inst, LoadInst):
            addr = self._eval(inst.ptr, frame)
            if self._mem_stream_live:
                addr = self._mem_step(addr, inst)
            counters.loads += 1
            value = self.memory.load_value(ty, addr)
            extra = self._mem_access(addr, T.sizeof(ty))
            latency = costs.vector_latency("load") if ty.is_vector else costs.scalar_latency("load")
            return value, latency, extra

        if isinstance(inst, StoreInst):
            addr = self._eval(inst.ptr, frame)
            if self._mem_stream_live:
                addr = self._mem_step(addr, inst)
            value = self._eval(inst.value, frame)
            counters.stores += 1
            vty = inst.value.type
            self.memory.store_value(vty, addr, value)
            self._mem_access(addr, T.sizeof(vty))  # miss accounting only
            latency = costs.vector_latency("store") if vty.is_vector else costs.scalar_latency("store")
            return None, latency, 0.0

        if isinstance(inst, AllocaInst):
            size = T.sizeof(inst.allocated_type) * inst.count
            addr = self.memory.stack_alloc(size)
            return addr, costs.scalar_latency("alloca"), 0.0

        if isinstance(inst, GepInst):
            base = self._eval(inst.ptr, frame)
            index = self._eval(inst.index, frame)
            esize = T.sizeof(inst.elem_type)
            ity = inst.index.type
            if ty.is_vector:
                iw = ity.elem.width if ity.is_vector else ity.width
                idxs = index if ity.is_vector else (index,) * ty.count
                bases = base if inst.ptr.type.is_vector else (base,) * ty.count
                value = tuple(
                    (p + _to_signed(i, iw) * esize) & _MASK64
                    for p, i in zip(bases, idxs)
                )
                return value, costs.vector_latency("gep"), 0.0
            value = (base + _to_signed(index, ity.width) * esize) & _MASK64
            return value, costs.scalar_latency("gep"), 0.0

        if isinstance(inst, CallInst):
            return self._exec_call(inst, frame, times, depth)

        if isinstance(inst, SelectInst):
            cond = self._eval(inst.cond, frame)
            tval = self._eval(inst.tval, frame)
            fval = self._eval(inst.fval, frame)
            latency = (
                costs.vector_latency("select") if ty.is_vector
                else costs.scalar_latency("select")
            )
            if inst.cond.type.is_vector:
                value = tuple(t if c else f for c, t, f in zip(cond, tval, fval))
                return value, latency, 0.0
            return (tval if cond else fval), latency, 0.0

        if isinstance(inst, ExtractElementInst):
            vec = self._eval(inst.vec, frame)
            index = self._eval(inst.index, frame)
            if not 0 <= index < len(vec):
                raise MemoryFault(index, 0)
            return vec[index], costs.vector_latency("extractelement"), 0.0

        if isinstance(inst, InsertElementInst):
            vec = list(self._eval(inst.vec, frame))
            elem = self._eval(inst.elem, frame)
            index = self._eval(inst.index, frame)
            if not 0 <= index < len(vec):
                raise MemoryFault(index, 0)
            vec[index] = elem
            return tuple(vec), costs.vector_latency("insertelement"), 0.0

        if isinstance(inst, ShuffleVectorInst):
            v1 = self._eval(inst.v1, frame)
            v2 = self._eval(inst.v2, frame)
            joined = tuple(v1) + tuple(v2)
            value = tuple(joined[i] for i in inst.mask)
            return value, costs.vector_latency("shufflevector"), 0.0

        if isinstance(inst, BroadcastInst):
            scalar = self._eval(inst.scalar, frame)
            return (scalar,) * ty.count, costs.vector_latency("broadcast"), 0.0

        raise TypeError(f"cannot execute {inst!r}")

    def _mem_access(self, addr: int, size: int) -> float:
        counters = self.counters
        counters.l1_accesses += 1
        if self.cache is None:
            return float(C.MEM_LATENCY[1])
        level, latency = self.cache.access(addr, size)
        if level >= 2:
            counters.l1_misses += 1
        if level >= 3:
            counters.l2_misses += 1
        if level >= 4:
            counters.l3_misses += 1
        return latency

    # Calls ---------------------------------------------------------------------------

    def _exec_call(self, inst: CallInst, frame: Dict, times: Dict, depth: int):
        costs = self.config.cost_model
        callee = inst.callee
        arg_values = [self._eval(a, frame) for a in inst.args]
        self.counters.calls += 1
        if callee.is_intrinsic:
            value = self._call_intrinsic(callee.name, arg_values, inst)
            return value, costs.intrinsic_latency(callee.name), 0.0
        if callee.is_declaration:
            raise Trap(f"call to undefined function @{callee.name}")
        arg_times = [times.get(a, 0.0) for a in inst.args]
        value = self._exec_function(callee, arg_values, arg_times, depth + 1)
        return value, costs.scalar_latency("call"), 0.0

    def _call_intrinsic(self, name: str, args: List, inst: CallInst):
        counters = self.counters
        if name.startswith("elzar.check_dmr."):
            lanes = args[0]
            keyed = _lane_keys(lanes, inst.type.elem)
            if avxops.lanes_all_equal(keyed):
                return lanes
            counters.detections += 1
            raise DetectedError("ELZAR-DMR check: lanes diverged")
        if name.startswith("elzar.branch_cond_dmr."):
            lanes = args[0]
            kind = avxops.ptest_classify(lanes)
            if kind == 2:
                counters.detections += 1
                raise DetectedError("ELZAR-DMR branch: true/false mix")
            return kind
        if name.startswith("elzar.check."):
            lanes = args[0]
            keyed = _lane_keys(lanes, inst.type.elem)
            if avxops.lanes_all_equal(keyed):
                return lanes
            counters.corrections += 1
            try:
                majority = avxops.majority_value(keyed)
            except avxops.NoMajorityError as exc:
                counters.recoveries_failed += 1
                raise DetectedError(str(exc)) from exc
            value = _key_to_value(majority, inst.type.elem)
            return (value,) * len(lanes)
        if name.startswith("elzar.branch_cond_nocheck."):
            # Unchecked AVX branch: ptest + je — "all lanes true" wins.
            lanes = args[0]
            return 1 if all(lanes) else 0
        if name.startswith("elzar.branch_cond."):
            lanes = args[0]
            kind = avxops.ptest_classify(lanes)
            if kind == 2:
                counters.corrections += 1
                try:
                    majority = avxops.majority_value(tuple(lanes))
                except avxops.NoMajorityError as exc:
                    counters.recoveries_failed += 1
                    raise DetectedError(str(exc)) from exc
                return 1 if majority else 0
            return kind
        if name.startswith("tmr.vote."):
            a, b, c = args
            ty = inst.type
            ka, kb, kc = (_scalar_key(v, ty) for v in (a, b, c))
            if ka == kb and kb == kc:
                return a
            counters.corrections += 1
            if ka == kb or ka == kc:
                return a
            if kb == kc:
                return b
            counters.recoveries_failed += 1
            raise DetectedError("TMR vote: all three copies differ")
        if name.startswith("swift.check."):
            a, b = args
            ty = inst.type
            if _scalar_key(a, ty) != _scalar_key(b, ty):
                counters.detections += 1
                raise DetectedError("DMR check: copies diverged")
            return a
        if name == "rt.alloc":
            return self.memory.alloc(args[0])
        if name == "rt.print_i64":
            self.output.append(_to_signed(args[0], 64))
            return None
        if name == "rt.print_f64":
            self.output.append(float(args[0]))
            return None
        if name == "rt.abort":
            raise AbortError("rt.abort called")
        if name.startswith("host."):
            op = name[5:]
            if op == "pow":
                try:
                    return float(args[0] ** args[1])
                except (OverflowError, ZeroDivisionError, ValueError):
                    return math.nan
            fun = _HOST_UNARY.get(op)
            if fun is None:
                raise Trap(f"unknown host intrinsic {name}")
            try:
                return float(fun(args[0]))
            except (OverflowError, ValueError):
                return math.nan
        raise Trap(f"unknown intrinsic {name}")

    # Operand evaluation -----------------------------------------------------------------

    def _eval(self, op: Value, frame: Dict):
        if isinstance(op, Constant):
            return op.value
        if isinstance(op, (Instruction, Argument)):
            try:
                return frame[op]
            except KeyError:
                raise Trap(f"use of undefined value {op.ref()}") from None
        if isinstance(op, GlobalVariable):
            return self.globals_addr[op.name]
        if isinstance(op, UndefValue):
            if op.type.is_vector:
                return (0,) * op.type.count
            return 0.0 if op.type.is_float else 0
        if isinstance(op, Function):
            return op
        raise Trap(f"cannot evaluate operand {op!r}")


# --- Helpers -----------------------------------------------------------------------


def _cast_scalar(opcode: str, value, src: T.Type, dst: T.Type):
    if opcode == "trunc":
        return int(value) & ((1 << dst.width) - 1)
    if opcode == "zext":
        return int(value)
    if opcode == "sext":
        return _to_signed(int(value), src.width) & ((1 << dst.width) - 1)
    if opcode == "fptrunc":
        return _round_f32(value)
    if opcode == "fpext":
        return float(value)
    if opcode in ("fptosi", "fptoui"):
        if math.isnan(value) or math.isinf(value):
            return 0
        return int(value) & ((1 << dst.width) - 1)
    if opcode == "sitofp":
        result = float(_to_signed(int(value), src.width))
        return _round_f32(result) if dst.is_float and dst.bits == 32 else result
    if opcode == "uitofp":
        result = float(int(value))
        return _round_f32(result) if dst.is_float and dst.bits == 32 else result
    if opcode == "bitcast":
        return _bitcast_scalar(value, src, dst)
    if opcode == "ptrtoint":
        return int(value) & ((1 << dst.width) - 1)
    if opcode == "inttoptr":
        return int(value) & _MASK64
    raise ValueError(f"unknown cast {opcode}")


def _bitcast_scalar(value, src: T.Type, dst: T.Type):
    if T.sizeof(src) != T.sizeof(dst):
        raise Trap(f"bitcast between different sizes: {src} -> {dst}")
    if src.is_float and dst.is_int:
        return avxops.float_to_bits(value, src.bits)
    if src.is_int and dst.is_float:
        return avxops.bits_to_float(value, dst.bits)
    return value


def _scalar_key(value, ty: T.Type):
    """Comparable bit-pattern key (floats compared bitwise so that NaN
    copies are equal and +0.0 != -0.0, matching register comparison)."""
    if ty.is_float:
        return avxops.float_to_bits(value, ty.bits)
    return value


def _lane_keys(lanes, elem: T.Type):
    if elem.is_float:
        return tuple(avxops.float_to_bits(v, elem.bits) for v in lanes)
    return tuple(lanes)


def _key_to_value(key, elem: T.Type):
    if elem.is_float:
        return avxops.bits_to_float(key, elem.bits)
    return key


#: Intrinsic-name prefixes of hardening-inserted check/vote/sync calls.
_CHECKER_PREFIXES = ("elzar.", "tmr.vote.", "swift.check.")


def _is_checker_site(inst: Instruction) -> bool:
    """Structural predicate for the CheckerFault target set: results of
    instructions the hardening passes insert around synchronisation
    points — check/vote/branch-sync intrinsic calls plus the
    extract/broadcast pair of every to-scalar/from-scalar wrapper. The
    test is purely structural (opcode + callee-name prefix), so it
    survives IR printing/parsing and keeps durable store keys stable."""
    opcode = inst.opcode
    if opcode in ("extractelement", "broadcast"):
        return True
    if opcode == "call":
        callee = inst.callee
        return callee.is_intrinsic and callee.name.startswith(
            _CHECKER_PREFIXES
        )
    return False


def _zero_value(ty: T.Type):
    """Type-appropriate zero for the InstructionSkip model (the skipped
    instruction's destination register reads as if never written)."""
    if ty.is_vector:
        zero = 0.0 if ty.elem.is_float else 0
        return (zero,) * ty.count
    return 0.0 if ty.is_float else 0


def _flip(value, ty: T.Type, bit: int, lane: int):
    """Apply a single-event upset to an instruction result.

    Scalars live in 64-bit registers: a flip above the value's width
    hits architecturally dead bits and is immediately masked (the bit
    is drawn from [0, 64), matching the paper's GPR injections). SIMD
    lanes are fully packed, so lane flips always land in live bits.
    """
    if ty.is_vector:
        lane = lane % ty.count
        lst = list(value)
        lst[lane] = _flip_lane(lst[lane], ty.elem, bit)
        return tuple(lst)
    width = T.bitwidth(ty)
    if bit % 64 >= width:
        return value  # dead upper register bits
    if ty.is_float:
        return avxops.flip_bit_float(value, bit % width, ty.bits)
    return avxops.flip_bit_int(int(value), bit % width, width)


def _flip_lane(value, elem: T.Type, bit: int):
    if elem.is_float:
        return avxops.flip_bit_float(value, bit % elem.bits, elem.bits)
    width = T.bitwidth(elem)
    return avxops.flip_bit_int(int(value), bit % width, width)
