"""Batched lane-parallel fault injection: SIMD-of-simulations.

ELZAR replicates data across AVX lanes and votes on divergence. This
module applies the same idea one level up, to the fault-injection
campaign itself: the K injections of a batch are *lanes* of one shared
golden execution. Sequentially, each injection replays the whole golden
prefix up to its fault site and then runs its own tail — O(run) per
injection. Batched, the golden prefix executes **once**; at each
pending fault site the run forks (``os.fork``, so the entire mid-run
machine state — Python stack included — is captured copy-on-write) into
a lane that arms exactly its own plan and continues as the faulted
execution, while the parent carries the golden run to the next site.

Two further cuts make the asymptotic win real on one core:

- **Reconvergence detection** truncates the tails that dominate batched
  cost. A one-per-cell *lockstep trace* records a digest of
  architectural state (memory, registers of live frames, call stack,
  output, resume position) at periodic eligible-instruction
  checkpoints of the golden run. A lane whose digest matches the
  golden checkpoint digest has provably the same future as the golden
  run — its output will equal the reference and its remaining
  corrections are the golden run's — so it classifies immediately
  (CORRECTED if it ever corrected, else MASKED) instead of simulating
  an already-determined tail. MASKED and CORRECTED lanes — the large
  majority in hardened builds — converge within one checkpoint
  interval of their fault site.
- **Dead-flip short-circuit**: a scalar register flip above the value's
  width is architecturally masked before it is ever applied
  (:func:`repro.cpu.interpreter._flip` returns the value unchanged), so
  the lane's run *is* the golden run and needs no fork at all.

Classification parity: a forked lane inherits exactly the machine state
a sequential ``inject_once`` run would have at the fault site (the
parent's golden run walks the same record-path bookkeeping an armed
frame uses), fires the same
plan at the same dynamic event, and classifies by the same rules —
trap class, output-vs-reference match, corrections count. The
differential test matrix pins per-plan outcome identity against
sequential injection for every registered fault model at several batch
widths. Digest-based convergence is exact up to blake2b-128 collisions.

Lanes report ``(key, outcome)`` records over a pipe (8-byte writes,
atomic well under ``PIPE_BUF``) and ``os._exit`` without running any
parent cleanup. A lane that dies unreported is simply missing from the
result dict; the caller re-runs that plan sequentially, so batching can
degrade but never corrupt a campaign.
"""

from __future__ import annotations

import os
import struct
from hashlib import blake2b
from typing import Dict, List, Optional, Tuple

from ..faults.models import StreamProfile
from ..faults.outcomes import Outcome
from ..ir import types as T
from ..workloads.common import outputs_match
from .errors import Trap
from .interpreter import FaultPlan, Machine, MachineSnapshot
from .memory import HEAP_BASE, STACK_BASE
from .resumable import rebuild_frames, restore_payload, run_stack

#: Outcome <-> wire code for the lane report pipe (enum member order).
_OUTCOMES: Tuple[Outcome, ...] = tuple(Outcome)
_CODE: Dict[Outcome, int] = {o: i for i, o in enumerate(_OUTCOMES)}
_RECORD = struct.Struct("<iI")

#: OR-ed into the wire code when the lane's outcome came from digest
#: reconvergence (truncated tail) rather than a full run. The caller
#: uses the count as a *scheduling* signal only — outcomes are
#: convergence-independent — to stop installing the comparator in later
#: batches of a cell whose lanes never reconverge (float drift).
_CONVERGED_FLAG = 0x80

#: FaultPlan.kind -> targeting stream (mirrors Machine.arm_faults).
_STREAM = {"checker": "checker", "addr": "mem", "branch": "branch"}

#: ``Machine._trace_skip_until`` value meaning "never fire again":
#: larger than any eligible index a budgeted run can reach.
_NEVER = 1 << 62

#: A lane whose state digest fails this many checkpoint comparisons on
#: the golden control path is assumed never to reconverge (its
#: corruption drifts instead of dying); the comparator uninstalls
#: itself so the tail runs without checkpoint-hash overhead. Lanes that
#: do converge almost always do so at their first or second checkpoint.
_MAX_DIGEST_MISSES = 4


class _LaneConverged(BaseException):
    """Raised by a lane's checkpoint comparator when its state digest
    matches the golden run's: the lane's future is the golden future,
    so it classifies without simulating the rest of its tail."""


class _GoldenDone(BaseException):
    """Raised in the batch parent once every pending plan has forked
    (or resolved): the rest of the golden run teaches us nothing."""


def default_interval(eligible: int) -> int:
    """Checkpoint spacing for the lockstep trace: ~32 checkpoints per
    run, floored so short runs don't hash state every few events. A
    converging lane pays on average half an interval of extra
    simulation before its convergence is noticed (~1.5% of a run at 32
    checkpoints), while the trace pass pays one state digest per
    checkpoint — sparser checkpoints measurably beat denser ones
    because digests cost far more than interpreted instructions."""
    return max(32, eligible // 32)


class LockstepTrace:
    """Golden-run checkpoint digests for one campaign cell.

    ``checkpoints`` maps an eligible-instruction index (every
    ``interval``-th) to ``(digest, corrections, executed)`` at the
    moment that eligible event completed. Collected once per cell on
    the session machine and shared by every batch (and, via the
    module's golden cache, every shard run in this process or its
    forked children — instruction identities survive ``fork``).
    """

    __slots__ = ("checkpoints", "interval", "final_corrections",
                 "final_executed", "profile")

    def __init__(self, checkpoints: Dict[int, tuple], interval: int,
                 final_corrections: int, final_executed: int,
                 profile: StreamProfile):
        self.checkpoints = checkpoints
        self.interval = interval
        self.final_corrections = final_corrections
        self.final_executed = final_executed
        self.profile = profile


def _state_digest(M: Machine, inst) -> bytes:
    """Digest of everything that determines the run's future from this
    eligible event: memory contents and tops, program output, resume
    position (current instruction + call-site chain), and the register
    files of every live decoded frame. Deliberately excluded — cache,
    predictor, timing, and perf counters other than ``corrections``:
    they never feed back into values or control flow, and outcome
    classification reads only ``corrections`` (tracked separately in
    the checkpoint record)."""
    mem = M.memory
    h = blake2b(digest_size=16)
    h.update(memoryview(mem._heap)[: mem.heap_top - HEAP_BASE])
    h.update(memoryview(mem._stack)[: mem.stack_top - STACK_BASE])
    meta = (id(inst), mem.heap_top, mem.stack_top, M._depth,
            tuple(M._call_sites), tuple(M.output))
    h.update(repr(meta).encode())
    for dfn, regs in M._frames:
        h.update(dfn.fn.name.encode())
        h.update(repr(regs).encode())
    return h.digest()


def collect_lockstep_trace(machine: Machine, snapshot: MachineSnapshot,
                           entry: str, args, profile: StreamProfile,
                           interval: Optional[int] = None) -> LockstepTrace:
    """Run the golden execution once more with a checkpoint recorder
    installed, returning the :class:`LockstepTrace` lanes compare
    against. ``machine``/``snapshot`` are an injection session's; the
    machine is left restored-to-snapshot-equivalent state (the batch
    driver restores before every batch anyway)."""
    if interval is None:
        interval = default_interval(profile.eligible)
    M = machine
    M.restore(snapshot)
    checkpoints: Dict[int, tuple] = {}

    def recorder(inst, fn):
        idx = M.eligible_executed - 1
        # Advance the skip gate so the engine next invokes us exactly
        # one interval from now; between checkpoints the run pays one
        # int compare per eligible event instead of this Python call.
        M._trace_skip_until = idx + interval
        if idx % interval:
            return
        checkpoints[idx] = (
            _state_digest(M, inst), M.counters.corrections, M._executed
        )

    M.trace_eligible = recorder
    try:
        M.run(entry, args)
    finally:
        M.trace_eligible = None
    return LockstepTrace(
        checkpoints=checkpoints,
        interval=interval,
        final_corrections=M.counters.corrections,
        final_executed=M._executed,
        profile=profile,
    )


def _dead_flip(plan: FaultPlan, ty) -> bool:
    """True when the plan's flip lands entirely in architecturally dead
    bits of a scalar result (``_flip`` would return the value
    unchanged), so the lane is the golden run by construction. Vector
    results pack lanes fully — bit indices wrap — and the other kinds
    (skip/mem/addr/branch) always perturb something."""
    kind = plan.kind
    if kind not in ("reg", "multi", "checker"):
        return False
    if ty.is_vector:
        return False
    width = T.bitwidth(ty)
    if plan.bit % 64 < width:
        return False
    if kind == "multi":
        return all(b % 64 >= width for b in plan.bits)
    return True


def _arm_lane(M: Machine, plan: FaultPlan, stream: str) -> None:
    """In a freshly forked lane: drop the parent's site watches and arm
    exactly this plan on its stream, cursors at zero. The stream steps
    re-read their plan list *after* the watch hook returns, so the plan
    fires at the very event the fork happened at — the same dynamic
    event a sequential run would hit."""
    M._watch_checker = M._watch_mem = M._watch_branch = None
    if stream == "reg":
        M.fault_plans = [plan]
        M._next_plan = 0
    elif stream == "checker":
        M._checker_plans = [plan]
        M._next_checker_plan = 0
    elif stream == "mem":
        M._mem_plans = [plan]
        M._next_mem_plan = 0
    else:
        M._branch_plans = [plan]
        M._next_branch_plan = 0


class _BatchState:
    __slots__ = ("remaining", "live", "child", "max_live", "forked")

    def __init__(self, remaining: int):
        self.remaining = remaining
        self.live: List[int] = []
        #: (key, plan) in a forked lane, None in the batch parent.
        self.child = None
        self.max_live = max(2, os.cpu_count() or 1)
        self.forked = 0


def _child_report(wfd: int, key: int, outcome: Outcome,
                  converged: bool = False) -> None:
    """Write this lane's result and exit without unwinding into any
    parent-owned machinery (stores, schedulers, multiprocessing pipes
    inherited across the fork)."""
    code = _CODE[outcome] | (_CONVERGED_FLAG if converged else 0)
    try:
        os.write(wfd, _RECORD.pack(key, code))
    finally:
        os._exit(0)


def run_batch(machine: Machine, snapshot: MachineSnapshot, entry: str,
              args, plans: List[Tuple[int, FaultPlan]], reference,
              budget: int, rtol: float, trace: LockstepTrace,
              converge: bool = True,
              stats: Optional[Dict[str, int]] = None,
              resume_from=None) -> Dict[int, Outcome]:
    """Execute one batch of fault plans as forked lanes off a single
    golden run.

    ``plans`` is ``[(key, plan), ...]``; the result maps each key to
    its Table-I outcome. A key may be *missing* when its lane died
    before reporting — the caller falls back to sequential injection
    for it, so batching never loses or corrupts an outcome. ``machine``
    must be an injection-session machine whose ``max_instructions`` is
    ``budget`` and whose ``snapshot`` is the golden start state.

    ``converge=False`` skips installing the lane comparator: every lane
    runs its full tail, exactly like sequential injection after the
    fault point. Outcomes are identical either way — convergence only
    truncates simulation — so callers toggle it freely per batch.
    ``stats``, when given, accumulates ``"forked"`` (lanes actually
    forked) and ``"converged"`` (lanes truncated by reconvergence) so
    callers can stop paying for the comparator in cells where state
    drift makes reconvergence impossible.

    ``resume_from`` (a :class:`repro.cpu.resumable.ResumeState` whose
    checkpoint covers *every* plan in the batch) starts the shared
    golden run at that checkpoint instead of from ``snapshot`` and
    executes only the tail on the resumable trampoline. Lanes fork,
    converge, and classify exactly as before — the restored state is
    bit-identical to the golden run at that point, so outcomes are
    unchanged (the differential tests pin this).
    """
    from ..faults.campaign import trap_outcome

    out: Dict[int, Outcome] = {}
    golden_outcome = (Outcome.CORRECTED if trace.final_corrections > 0
                      else Outcome.MASKED)
    profile = trace.profile
    populations = {
        "reg": profile.eligible,
        "checker": profile.checker_sites,
        "mem": profile.mem_accesses,
        "branch": profile.cond_branches,
    }
    pend: Dict[str, Dict[int, list]] = {
        "reg": {}, "checker": {}, "mem": {}, "branch": {},
    }
    npending = 0
    for key, plan in plans:
        stream = _STREAM.get(plan.kind, "reg")
        site = plan.target_index
        if site < 0 or site >= populations[stream]:
            # Never fires: the run is the golden run.
            out[key] = golden_outcome
            continue
        pend[stream].setdefault(site, []).append((key, plan))
        npending += 1
    if not npending:
        return out

    M = machine
    st = _BatchState(npending)
    rfd, wfd = os.pipe()
    os.set_blocking(rfd, False)
    buf = bytearray()

    def drain() -> None:
        while True:
            try:
                chunk = os.read(rfd, 4096)
            except BlockingIOError:
                return
            if not chunk:
                return
            buf.extend(chunk)

    checkpoints = trace.checkpoints
    interval = trace.interval

    def comparator(inst, fn, misses=[0]):
        # Lane-side checkpoint hook, invoked only at checkpoint indices
        # (the skip gate below jumps straight to the next one; between
        # checkpoints the tail pays one int compare per eligible
        # event). Cheap rejects first: a lane on a divergent control
        # path has a different dynamic-instruction count at the same
        # eligible index, which costs one int compare instead of a
        # state hash. Equal counts also make the budget projection
        # exact: the converged future executes precisely
        # golden_final_executed instructions, which is under the hang
        # budget by construction.
        idx = M.eligible_executed - 1
        M._trace_skip_until = idx + interval
        rec = checkpoints.get(idx)
        if rec is None or M._executed != rec[2]:
            return
        if _state_digest(M, inst) != rec[0]:
            # Same path but persistently different state: typical of
            # float workloads where a low-bit flip drifts through the
            # whole tail (often still "masked" under rtol — but never
            # bit-converged). Truncation cannot happen; stop paying
            # for checkpoint hashes and run the tail at full speed.
            misses[0] += 1
            if misses[0] >= _MAX_DIGEST_MISSES:
                M.trace_eligible = None
            return
        raise _LaneConverged(rec)

    def at_site(entries: list, inst, stream: str) -> None:
        for key, plan in entries:
            if inst is not None and _dead_flip(plan, inst.type):
                out[key] = golden_outcome
                continue
            while len(st.live) >= st.max_live:
                os.waitpid(st.live.pop(0), 0)
                drain()
            try:
                pid = os.fork()
            except OSError:
                continue  # key stays unresolved; sequential fallback
            if pid == 0:
                st.child = (key, plan)
                try:
                    os.close(rfd)
                except OSError:
                    pass
                _arm_lane(M, plan, stream)
                # Setter refreshes gates either way; None drops straight
                # back to the fast interpreter loop once the plan fires.
                M.trace_eligible = comparator if converge else None
                if converge:
                    # First comparison at the next checkpoint index
                    # after the fork point (the assignment above reset
                    # the gate to fire-always).
                    M._trace_skip_until = (
                        (M.eligible_executed - 1) // interval + 1
                    ) * interval
                return  # lane: resume the simulation as the faulted run
            st.live.append(pid)
            st.forked += 1
        st.remaining -= len(entries)
        if st.remaining == 0:
            raise _GoldenDone

    pend_reg = pend["reg"]
    pend_checker = pend["checker"]
    pend_mem = pend["mem"]
    pend_branch = pend["branch"]
    reg_sites = sorted(pend_reg)
    reg_cursor = [0]

    def reg_watch(inst, fn):
        # The skip gate means we are invoked only at pending sites: the
        # golden prefix between sites runs without per-event Python
        # calls. All parent-side gate state is advanced *before*
        # at_site — a forked lane returns through this frame, and its
        # comparator gate (set in the fork branch) must survive it.
        idx = M.eligible_executed - 1
        entries = pend_reg.pop(idx, None)
        c = reg_cursor[0]
        while c < len(reg_sites) and reg_sites[c] <= idx:
            c += 1
        reg_cursor[0] = c
        M._trace_skip_until = reg_sites[c] if c < len(reg_sites) else _NEVER
        if entries is not None:
            at_site(entries, inst, "reg")

    def checker_watch(inst, index):
        entries = pend_checker.pop(index, None)
        if entries is not None:
            at_site(entries, inst, "checker")

    def mem_watch(inst, index):
        entries = pend_mem.pop(index, None)
        if entries is not None:
            at_site(entries, inst, "mem")

    def branch_watch(inst, index):
        entries = pend_branch.pop(index, None)
        if entries is not None:
            at_site(entries, inst, "branch")

    if resume_from is None:
        M.restore(snapshot)
    else:
        restore_payload(M, resume_from)
    M.trace_eligible = reg_watch if pend_reg else None
    if pend_reg:
        M._trace_skip_until = reg_sites[0]
    M.set_stream_watches(
        checker=checker_watch if pend_checker else None,
        mem=mem_watch if pend_mem else None,
        branch=branch_watch if pend_branch else None,
    )
    # Frames rebuild *after* the watch installs: their inject flags
    # capture the machine's fault mode, which the watches just turned
    # on.
    resume_stack = (rebuild_frames(M, resume_from)
                    if resume_from is not None else None)
    try:
        try:
            if resume_stack is not None:
                run_stack(M, resume_stack, resume_from.executed)
            else:
                M.run(entry, args)
            if st.child is not None:
                # Lane ran its whole tail: classify exactly like
                # inject_once's no-trap path.
                if not outputs_match(M.output, list(reference), rtol):
                    _child_report(wfd, st.child[0], Outcome.SDC)
                elif M.counters.corrections > 0:
                    _child_report(wfd, st.child[0], Outcome.CORRECTED)
                else:
                    _child_report(wfd, st.child[0], Outcome.MASKED)
        except _GoldenDone:
            pass  # parent: every pending plan forked or resolved
        except _LaneConverged as exc:
            rec = exc.args[0]
            corrections = (M.counters.corrections
                           + trace.final_corrections - rec[1])
            _child_report(wfd, st.child[0],
                          Outcome.CORRECTED if corrections > 0
                          else Outcome.MASKED, converged=True)
        except Trap as exc:
            if st.child is None:
                raise  # a golden run must never trap
            _child_report(wfd, st.child[0], trap_outcome(exc))
        except BaseException:
            if st.child is not None:
                os._exit(1)  # unreported lane; parent reruns sequentially
            raise
        finally:
            if st.child is not None:
                # A lane must never return into the caller's world.
                os._exit(1)
            for pid in st.live:
                try:
                    os.waitpid(pid, 0)
                except ChildProcessError:
                    pass
            st.live.clear()
            M.trace_eligible = None
            M.set_stream_watches()
            drain()
    finally:
        os.close(rfd)
        os.close(wfd)

    converged = 0
    for offset in range(0, len(buf) - len(buf) % _RECORD.size, _RECORD.size):
        key, code = _RECORD.unpack_from(buf, offset)
        out[key] = _OUTCOMES[code & ~_CONVERGED_FLAG]
        if code & _CONVERGED_FLAG:
            converged += 1
    if stats is not None:
        stats["forked"] = stats.get("forked", 0) + st.forked
        stats["converged"] = stats.get("converged", 0) + converged
    return out
