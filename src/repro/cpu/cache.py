"""Set-associative cache hierarchy simulator.

Models the paper's testbed (§V-A): per-core 32 KB 8-way L1D and 256 KB
8-way L2, and a 35 MB 16-way shared L3, all with 64-byte lines and LRU
replacement. The access path returns the level that hit so the timing
model can charge the corresponding latency and Table II can report the
L1D miss ratio.
"""

from __future__ import annotations

from typing import List, Tuple

from ..avx.costs import MEM_LATENCY

LINE_SIZE = 64

# Latency per hit level, precomputed as floats so the hot access path
# does no dict lookup or conversion. Index 0 is unused padding.
_LATENCY = (
    0.0,
    float(MEM_LATENCY[1]),
    float(MEM_LATENCY[2]),
    float(MEM_LATENCY[3]),
    float(MEM_LATENCY[4]),
)


class Cache:
    """One level: set-associative with LRU replacement.

    Sets are lists ordered most-recently-used first; associativity is
    small so list operations beat fancier structures in CPython.
    """

    def __init__(self, size: int, assoc: int, line_size: int = LINE_SIZE):
        if size % (assoc * line_size) != 0:
            raise ValueError("cache size must be a multiple of assoc*line")
        self.size = size
        self.assoc = assoc
        self.line_size = line_size
        self.num_sets = size // (assoc * line_size)
        self._sets: List[List[int]] = [[] for _ in range(self.num_sets)]

    def access(self, line_addr: int) -> bool:
        """Touch a line; returns True on hit. Fills on miss."""
        cset = self._sets[line_addr % self.num_sets]
        # Membership test first: a raised ValueError from list.index is
        # far more expensive than a second C-level scan of a <=16-entry
        # list, and misses are not rare.
        if line_addr in cset:
            pos = cset.index(line_addr)
            if pos:
                cset.insert(0, cset.pop(pos))
            return True
        if len(cset) >= self.assoc:
            cset.pop()
        cset.insert(0, line_addr)
        return False

    def reset(self) -> None:
        for cset in self._sets:
            cset.clear()


class StreamPrefetcher:
    """Next-line stream prefetcher (Haswell's L1/L2 streamers, much
    simplified): tracks a few ascending line streams; on a detected
    stream it pulls the next ``depth`` lines into the hierarchy, so
    sequential scans (linear_regression, histogram, memset) run at
    near-L1 speed while irregular patterns (hash probes, column walks)
    still pay full memory latency."""

    def __init__(self, nstreams: int = 8, depth: int = 3):
        self.depth = depth
        self._streams: List[int] = [-(2 + i) for i in range(nstreams)]
        self._clock = 0
        self._last_used: List[int] = [0] * nstreams

    def advance(self, line: int) -> List[int]:
        """Record an access; returns lines to prefetch (empty if the
        access continues no known stream)."""
        self._clock += 1
        # A stream at index i continues when line == expected or
        # line == expected + 1, i.e. when streams[i] is line or line-1;
        # the first matching index wins. Two C-level list scans beat a
        # Python loop over the slots.
        streams = self._streams
        match = streams.index(line) if line in streams else -1
        prev = line - 1
        if prev in streams:
            j = streams.index(prev)
            if match < 0 or j < match:
                match = j
        if match >= 0:
            streams[match] = line + 1
            self._last_used[match] = self._clock
            return [line + k for k in range(1, self.depth + 1)]
        # Allocate the least-recently-used stream slot (first minimum,
        # matching min-with-key semantics).
        last_used = self._last_used
        victim = last_used.index(min(last_used))
        streams[victim] = line + 1
        last_used[victim] = self._clock
        return []


class CacheHierarchy:
    """L1D + L2 + L3 with a stream prefetcher. ``access`` returns
    (hit_level, latency_cycles) where hit_level is 1..3 or 4 for DRAM."""

    def __init__(
        self,
        l1_size: int = 32 << 10,
        l1_assoc: int = 8,
        l2_size: int = 256 << 10,
        l2_assoc: int = 8,
        l3_size: int = 35 << 20,
        l3_assoc: int = 16,
        prefetch: bool = True,
    ):
        # 35 MB is not a power of two; round the set count down to keep
        # the modulo indexing simple (35 MB / 64 B / 16 ways = 35840 sets).
        l3_size = (l3_size // (l3_assoc * LINE_SIZE)) * l3_assoc * LINE_SIZE
        self.l1 = Cache(l1_size, l1_assoc)
        self.l2 = Cache(l2_size, l2_assoc)
        self.l3 = Cache(l3_size, l3_assoc)
        self.prefetcher = StreamPrefetcher() if prefetch else None
        self.prefetches = 0

    def access(self, addr: int, size: int = 8) -> Tuple[int, float]:
        line = addr // LINE_SIZE
        # A straddling access touches the second line too (rare; charge
        # the first line's level).
        straddle = (addr + (size - 1 if size > 1 else 0)) // LINE_SIZE
        # Inline L1 probe: the overwhelmingly common case is an L1 hit
        # at the MRU position, which this path resolves with no method
        # calls. State evolution is identical to _access_line.
        l1 = self.l1
        l1_sets = l1._sets
        l1_nsets = l1.num_sets
        cset = l1_sets[line % l1_nsets]
        if cset and cset[0] == line:
            level = 1
        elif line in cset:
            cset.insert(0, cset.pop(cset.index(line)))
            level = 1
        else:
            if len(cset) >= l1.assoc:
                cset.pop()
            cset.insert(0, line)
            if self.l2.access(line):
                level = 2
            elif self.l3.access(line):
                level = 3
            else:
                level = 4
        if straddle != line:
            self._access_line(straddle)
        pf = self.prefetcher
        if pf is not None:
            # Inline StreamPrefetcher.advance (same state evolution;
            # see the comments there) plus the prefetch fills.
            pf._clock += 1
            streams = pf._streams
            match = streams.index(line) if line in streams else -1
            prev = line - 1
            if prev in streams:
                j = streams.index(prev)
                if match < 0 or j < match:
                    match = j
            if match >= 0:
                streams[match] = line + 1
                pf._last_used[match] = pf._clock
                depth = pf.depth
                self.prefetches += depth
                # Inline the fills' L1 probe: on a steady stream the
                # prefetched lines were filled by the previous access,
                # so they hit L1 at or near MRU — resolve that without
                # the _access_line/Cache.access call pair. State
                # evolution is identical to _access_line (fills ignore
                # the hit level).
                l1_assoc = l1.assoc
                for k in range(1, depth + 1):
                    fl = line + k
                    fset = l1_sets[fl % l1_nsets]
                    if fset and fset[0] == fl:
                        continue
                    if fl in fset:
                        fset.insert(0, fset.pop(fset.index(fl)))
                        continue
                    if len(fset) >= l1_assoc:
                        fset.pop()
                    fset.insert(0, fl)
                    if not self.l2.access(fl):
                        self.l3.access(fl)
            else:
                last_used = pf._last_used
                victim = last_used.index(min(last_used))
                streams[victim] = line + 1
                last_used[victim] = pf._clock
        return level, _LATENCY[level]

    def _access_line(self, line: int) -> int:
        if self.l1.access(line):
            return 1
        if self.l2.access(line):
            return 2
        if self.l3.access(line):
            return 3
        return 4

    def reset(self) -> None:
        self.l1.reset()
        self.l2.reset()
        self.l3.reset()
