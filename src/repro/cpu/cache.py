"""Set-associative cache hierarchy simulator.

Models the paper's testbed (§V-A): per-core 32 KB 8-way L1D and 256 KB
8-way L2, and a 35 MB 16-way shared L3, all with 64-byte lines and LRU
replacement. The access path returns the level that hit so the timing
model can charge the corresponding latency and Table II can report the
L1D miss ratio.
"""

from __future__ import annotations

from typing import List, Tuple

from ..avx.costs import MEM_LATENCY

LINE_SIZE = 64


class Cache:
    """One level: set-associative with LRU replacement.

    Sets are lists ordered most-recently-used first; associativity is
    small so list operations beat fancier structures in CPython.
    """

    def __init__(self, size: int, assoc: int, line_size: int = LINE_SIZE):
        if size % (assoc * line_size) != 0:
            raise ValueError("cache size must be a multiple of assoc*line")
        self.size = size
        self.assoc = assoc
        self.line_size = line_size
        self.num_sets = size // (assoc * line_size)
        self._sets: List[List[int]] = [[] for _ in range(self.num_sets)]

    def access(self, line_addr: int) -> bool:
        """Touch a line; returns True on hit. Fills on miss."""
        idx = line_addr % self.num_sets
        cset = self._sets[idx]
        try:
            pos = cset.index(line_addr)
        except ValueError:
            if len(cset) >= self.assoc:
                cset.pop()
            cset.insert(0, line_addr)
            return False
        if pos:
            cset.insert(0, cset.pop(pos))
        return True

    def reset(self) -> None:
        for cset in self._sets:
            cset.clear()


class StreamPrefetcher:
    """Next-line stream prefetcher (Haswell's L1/L2 streamers, much
    simplified): tracks a few ascending line streams; on a detected
    stream it pulls the next ``depth`` lines into the hierarchy, so
    sequential scans (linear_regression, histogram, memset) run at
    near-L1 speed while irregular patterns (hash probes, column walks)
    still pay full memory latency."""

    def __init__(self, nstreams: int = 8, depth: int = 3):
        self.depth = depth
        self._streams: List[int] = [-(2 + i) for i in range(nstreams)]
        self._clock = 0
        self._last_used: List[int] = [0] * nstreams

    def advance(self, line: int) -> List[int]:
        """Record an access; returns lines to prefetch (empty if the
        access continues no known stream)."""
        self._clock += 1
        for i, expected in enumerate(self._streams):
            if line == expected or line == expected + 1:
                self._streams[i] = line + 1
                self._last_used[i] = self._clock
                return [line + k for k in range(1, self.depth + 1)]
        # Allocate the least-recently-used stream slot (first minimum,
        # matching min-with-key semantics, without the lambda overhead).
        last_used = self._last_used
        victim = 0
        best = last_used[0]
        for i in range(1, len(last_used)):
            if last_used[i] < best:
                best = last_used[i]
                victim = i
        self._streams[victim] = line + 1
        self._last_used[victim] = self._clock
        return []


class CacheHierarchy:
    """L1D + L2 + L3 with a stream prefetcher. ``access`` returns
    (hit_level, latency_cycles) where hit_level is 1..3 or 4 for DRAM."""

    def __init__(
        self,
        l1_size: int = 32 << 10,
        l1_assoc: int = 8,
        l2_size: int = 256 << 10,
        l2_assoc: int = 8,
        l3_size: int = 35 << 20,
        l3_assoc: int = 16,
        prefetch: bool = True,
    ):
        # 35 MB is not a power of two; round the set count down to keep
        # the modulo indexing simple (35 MB / 64 B / 16 ways = 35840 sets).
        l3_size = (l3_size // (l3_assoc * LINE_SIZE)) * l3_assoc * LINE_SIZE
        self.l1 = Cache(l1_size, l1_assoc)
        self.l2 = Cache(l2_size, l2_assoc)
        self.l3 = Cache(l3_size, l3_assoc)
        self.prefetcher = StreamPrefetcher() if prefetch else None
        self.prefetches = 0

    def access(self, addr: int, size: int = 8) -> Tuple[int, float]:
        line = addr // LINE_SIZE
        # A straddling access touches the second line too (rare; charge
        # the first line's level).
        straddle = (addr + max(size, 1) - 1) // LINE_SIZE
        level = self._access_line(line)
        if straddle != line:
            self._access_line(straddle)
        if self.prefetcher is not None:
            for ahead in self.prefetcher.advance(line):
                self.prefetches += 1
                self._access_line(ahead)
        return level, float(MEM_LATENCY[level])

    def _access_line(self, line: int) -> int:
        if self.l1.access(line):
            return 1
        if self.l2.access(line):
            return 2
        if self.l3.access(line):
            return 3
        return 4

    def reset(self) -> None:
        self.l1.reset()
        self.l2.reset()
        self.l3.reset()
