"""repro.cpu — simulated machine: interpreter, memory, caches, branch
prediction, dataflow timing, and the thread-scalability model."""

from .branch_predictor import GSharePredictor
from .cache import Cache, CacheHierarchy, LINE_SIZE
from .counters import PerfCounters
from .errors import (
    AbortError,
    ArithmeticFault,
    DetectedError,
    HangError,
    MemoryFault,
    Trap,
)
from .interpreter import FaultPlan, Machine, MachineConfig, RunResult
from .memory import HEAP_BASE, STACK_BASE, Memory
from .threads import (
    PERFECT,
    ScalabilityProfile,
    normalized_overhead,
    runtime_at,
    speedup_over_threads,
)
from .timing import TimingModel

__all__ = [
    "AbortError",
    "ArithmeticFault",
    "Cache",
    "CacheHierarchy",
    "DetectedError",
    "FaultPlan",
    "GSharePredictor",
    "HEAP_BASE",
    "HangError",
    "LINE_SIZE",
    "Machine",
    "MachineConfig",
    "Memory",
    "MemoryFault",
    "PERFECT",
    "PerfCounters",
    "RunResult",
    "STACK_BASE",
    "ScalabilityProfile",
    "TimingModel",
    "Trap",
    "normalized_overhead",
    "runtime_at",
    "speedup_over_threads",
]
