"""gshare branch predictor.

A global-history predictor with 2-bit saturating counters, used to
produce the branch-miss ratios of Table II and to charge misprediction
penalties in the timing model. Branch "PCs" are stable per-instruction
identifiers assigned by the interpreter.
"""

from __future__ import annotations


class GSharePredictor:
    def __init__(self, history_bits: int = 12):
        self.history_bits = history_bits
        self.table_size = 1 << history_bits
        self.mask = self.table_size - 1
        # 2-bit counters initialised to weakly-taken (2).
        self.counters = bytearray([2] * self.table_size)
        self.history = 0
        self.predictions = 0
        self.misses = 0

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Record one executed conditional branch; returns True if the
        prediction was correct."""
        index = (pc ^ self.history) & self.mask
        counter = self.counters[index]
        predicted_taken = counter >= 2
        correct = predicted_taken == taken
        self.predictions += 1
        if not correct:
            self.misses += 1
        if taken:
            if counter < 3:
                self.counters[index] = counter + 1
        else:
            if counter > 0:
                self.counters[index] = counter - 1
        self.history = ((self.history << 1) | (1 if taken else 0)) & self.mask
        return correct

    @property
    def miss_ratio(self) -> float:
        if self.predictions == 0:
            return 0.0
        return 100.0 * self.misses / self.predictions

    def reset(self) -> None:
        self.counters = bytearray([2] * self.table_size)
        self.history = 0
        self.predictions = 0
        self.misses = 0
