"""Explicit-frame (trampoline) execution of decoded functions, with
mid-run capture and resume.

The decoded engine (:mod:`repro.cpu.engine`) executes call trees by
Python recursion — ``_make_call_defined`` handlers call
``exec_decoded_function`` — which makes the live interpreter state
uncapturable: it lives on the host Python stack. This module runs the
*same* decoded representation on an explicit frame stack instead, so at
any eligible-instruction boundary the complete run state — the frame
stack with per-frame resume cursors, register/time files and stack
marks, plus everything :meth:`Machine.snapshot` captures between runs —
is a plain data structure (:class:`ResumeState`) that can be copied,
serialized (:mod:`repro.snap.format`) and resumed in another process.

Bit-identity contract: a trampoline run is indistinguishable from a
recursive ``Machine.run`` — return value, output, every counter
(including the exact partial flushes of trap-abandoned blocks), cycles,
branch-predictor/cache state, fault behaviour, and exception type. The
loop below mirrors ``_run_fast``/``_run_inject`` statement for
statement; the only divergence is that defined calls push a frame where
the handler would recurse, using the ``call_meta`` record the decoder
attaches to every defined-call handler. The property tests in
``tests/snap/`` pin the contract across workloads, fault models and
machine configurations.

Resuming from a checkpoint arms plans *without* resetting the stream
counters (contrast ``Machine.arm_faults``): the counters are restored
to their checkpoint values and the plan fires when its stream counter
reaches ``target_index`` — the same dynamic event a from-scratch run
hits. A checkpoint captured during a ``count_only`` golden run is a
superset state, valid for every plan whose per-stream mark has not yet
passed (:func:`covers`).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .engine import (
    _T_BR,
    _T_CONDBR,
    _T_FALLOFF,
    _T_RET,
    _T_RET_VOID,
    _T_UNREACHABLE,
    DecodedFunction,
    decoded_module,
)
from .errors import HangError, MemoryFault
from .interpreter import RunResult
from .memory import HEAP_BASE, STACK_BASE


class Frame:
    """One live decoded-function activation on the explicit stack."""

    __slots__ = (
        "dfn",          # DecodedFunction
        "regs",         # register file (shared with M._frames entry)
        "times",        # ready-time file
        "mark",         # stack mark at entry (memory.stack_release target)
        "depth",        # call depth (root = 0)
        "inject",       # frame runs the inject (bookkeeping) path
        "prev_mem",     # _mem_stream_live to restore on pop
        "prev_branch",  # _branch_stream_live to restore on pop
        "caller_fn",    # _current_fn to restore on pop
        "block",        # current DecodedBlock
        "prev",         # predecessor block (phi edge), valid if phis_pending
        "i",            # resume cursor into block.body
        "phis_pending",  # phi stage of `block` not yet run
        "in_body",      # inside the counted region (exception flush applies)
        "budget_exc",   # the HangError this frame raised for budget, if any
    )


def push_frame(M, stack: List[Frame], dfn: DecodedFunction, args: List,
               arg_times: List[float]) -> Frame:
    """Mirror of ``exec_decoded_function``'s prologue: depth check,
    register-file setup, stack mark, ``_frames``/``_current_fn``/
    stream-flag maintenance — as an explicit frame push."""
    depth = M._depth + 1
    if depth > M.config.max_call_depth:
        raise HangError(f"call depth exceeded in @{dfn.fn.name}")
    M._depth = depth
    regs = [None] * dfn.nslots
    times = [0.0] * dfn.nslots
    nargs = dfn.nargs
    if nargs:
        regs[:nargs] = args
        times[:nargs] = arg_times
    f = Frame()
    f.dfn = dfn
    f.regs = regs
    f.times = times
    f.mark = M.memory.stack_mark()
    f.caller_fn = M._current_fn
    M._current_fn = dfn.fn
    M._frames.append((dfn, regs))
    f.prev_mem = M._mem_stream_live
    f.prev_branch = M._branch_stream_live
    f.depth = depth
    if M._fault_active and M._fault_eligible_fn(dfn.fn):
        M._mem_stream_live = M._mem_stream_needed
        M._branch_stream_live = M._branch_stream_needed
        f.inject = True
    else:
        M._mem_stream_live = False
        M._branch_stream_live = False
        f.inject = False
    f.block = dfn.entry
    f.prev = None
    f.i = 0
    f.phis_pending = False
    f.in_body = False
    f.budget_exc = None
    stack.append(f)
    return f


def run_stack(M, stack: List[Frame], executed: int, capture=None):
    """Run the frame stack to completion; returns the root frame's
    return value. ``executed`` continues the global dynamic-instruction
    count (``M._executed`` at entry, or a checkpoint's).

    ``capture``, when given, is a placement policy with an integer
    ``next_index`` attribute and a ``take(M, stack, executed)`` method;
    the loop invokes ``take`` at the first body-record boundary at or
    after each threshold. ``take`` must only *copy* state (see
    :func:`capture_state`) and advance ``next_index``.
    """
    counters = M.counters
    cd = counters.__dict__
    byop = counters.collect_by_opcode
    timing = M.timing
    maxi = M.config.max_instructions
    value = None
    returning = False
    try:
        while stack:
            f = stack[-1]
            regs = f.regs
            times = f.times

            if returning:
                # Complete the suspended defined call at f.i: the
                # epilogue of _make_call_defined's handler, followed by
                # the caller loop's inject bookkeeping on the result.
                returning = False
                block = f.block
                (arg_rs, dst, _cdfn, lat, uops, isv, port,
                 _site) = block.call_meta[f.i]
                M._call_sites.pop()
                if dst >= 0:
                    regs[dst] = value
                if timing is not None:
                    ats = [times[s] if s >= 0 else 0.0 for s, c in arg_rs]
                    done = timing.issue("call", lat, ats, 0.0, uops, isv,
                                        port)
                    if dst >= 0:
                        times[dst] = done
                executed = M._executed
                if f.inject:
                    meta = block.inject[f.i]
                    if meta is not None:
                        rdst, _ty, inst = meta
                        index = M.eligible_executed
                        M.eligible_executed = index + 1
                        if (M._trace_eligible is not None
                                and index >= M._trace_skip_until):
                            M._executed = executed
                            M._trace_eligible(inst, M._current_fn)
                        if M._checker_needed:
                            regs[rdst] = M._checker_step(regs[rdst], inst)
                        plans = M.fault_plans
                        cursor = M._next_plan
                        if (cursor < len(plans)
                                and index == plans[cursor].target_index):
                            regs[rdst] = M._apply_reg_plans(
                                regs[rdst], inst, index
                            )
                f.i += 1

            inject = f.inject
            pushed = False
            while True:  # block chain within this frame
                block = f.block
                if f.phis_pending:
                    # Phis: parallel moves against the incoming edge.
                    # Nothing is counted yet (in_body is False), so
                    # exceptions here escape without any flush — exactly
                    # like the recursive engine.
                    f.phis_pending = False
                    pm = block.phi_moves
                    if pm is not None:
                        moves = pm.get(f.prev)
                        if moves is None:
                            raise KeyError(
                                f"phi in %{block.name} has no incoming "
                                f"from %{f.prev.name}"
                            )
                        staged = [
                            (dst,
                             regs[s] if s >= 0 else c,
                             times[s] if s >= 0 else 0.0)
                            for dst, s, c in moves
                        ]
                        if inject:
                            for (dst, v, t), (ty, phi) in zip(
                                    staged, block.phi_meta):
                                index = M.eligible_executed
                                M.eligible_executed = index + 1
                                if (M._trace_eligible is not None
                                        and index >= M._trace_skip_until):
                                    M._executed = executed
                                    M._trace_eligible(phi, M._current_fn)
                                if M._checker_needed:
                                    v = M._checker_step(v, phi)
                                plans = M.fault_plans
                                cursor = M._next_plan
                                if (cursor < len(plans)
                                        and index ==
                                        plans[cursor].target_index):
                                    v = M._apply_reg_plans(v, phi, index)
                                regs[dst] = v
                                times[dst] = t
                        else:
                            for dst, v, t in staged:
                                regs[dst] = v
                                times[dst] = t

                f.in_body = True
                body = block.body
                inj = block.inject
                call_meta = block.call_meta
                n = block.n
                i = f.i
                try:
                    while i < n:
                        if (capture is not None
                                and M.eligible_executed >=
                                capture.next_index):
                            f.i = i
                            capture.take(M, stack, executed)
                        executed += 1
                        if executed > maxi:
                            f.budget_exc = HangError(
                                f"instruction budget exceeded ({maxi})"
                            )
                            raise f.budget_exc
                        cm = call_meta[i]
                        if cm is not None:
                            # Defined call: the handler's prologue, then
                            # a frame push where it would recurse.
                            arg_rs, dst, cdfn, lat, uops, isv, port, \
                                site = cm
                            cargs = [regs[s] if s >= 0 else c
                                     for s, c in arg_rs]
                            cats = [times[s] if s >= 0 else 0.0
                                    for s, c in arg_rs]
                            M._executed = executed
                            M._call_sites.append(site)
                            f.i = i
                            push_frame(M, stack, cdfn, cargs, cats)
                            pushed = True
                            break
                        executed = body[i](M, regs, times, executed, timing)
                        if inject:
                            meta = inj[i]
                            if meta is not None:
                                rdst, _ty, inst = meta
                                index = M.eligible_executed
                                M.eligible_executed = index + 1
                                if (M._trace_eligible is not None
                                        and index >= M._trace_skip_until):
                                    M._executed = executed
                                    M._trace_eligible(inst, M._current_fn)
                                if M._checker_needed:
                                    regs[rdst] = M._checker_step(
                                        regs[rdst], inst
                                    )
                                plans = M.fault_plans
                                cursor = M._next_plan
                                if (cursor < len(plans)
                                        and index ==
                                        plans[cursor].target_index):
                                    regs[rdst] = M._apply_reg_plans(
                                        regs[rdst], inst, index
                                    )
                        i += 1
                    if pushed:
                        break
                    f.i = i

                    # Terminator --------------------------------------
                    kind = block.term_kind
                    if kind == _T_FALLOFF:
                        raise MemoryFault(0, 0)
                    executed += 1
                    if executed > maxi:
                        f.budget_exc = HangError(
                            f"instruction budget exceeded ({maxi})"
                        )
                        raise f.budget_exc
                    if kind == _T_UNREACHABLE:
                        raise MemoryFault(0, 0)

                    for k, v in block.full_pairs:
                        cd[k] += v
                    if byop:
                        bo = counters.by_opcode
                        for op, cnt in block.opcode_items:
                            bo[op] = bo.get(op, 0) + cnt

                    term = block.term
                    if kind == _T_BR:
                        if timing is not None:
                            timing.issue("br", term[1], (), 0.0, 1,
                                         False, None)
                        f.prev = block
                        f.block = term[0]
                        f.phis_pending = True
                        f.in_body = False
                        f.i = 0
                        continue
                    if kind == _T_CONDBR:
                        s, c, tb, eb, inst, lat = term
                        taken = bool(regs[s] if s >= 0 else c)
                        if M._branch_stream_live:
                            taken = M._branch_step(taken, inst)
                        pcs = M._branch_pcs
                        key = id(inst)
                        pc = pcs.get(key)
                        if pc is None:
                            pc = M._next_pc
                            M._next_pc = pc + 1
                            pcs[key] = pc
                        correct = M.predictor.predict_and_update(pc, taken)
                        if timing is not None:
                            resolve = timing.issue(
                                "br", lat,
                                (times[s] if s >= 0 else 0.0,),
                                0.0, 1, False, None,
                            )
                            if not correct:
                                cd["branch_misses"] += 1
                                timing.branch_mispredict(resolve)
                        elif not correct:
                            cd["branch_misses"] += 1
                        f.prev = block
                        f.block = tb if taken else eb
                        f.phis_pending = True
                        f.in_body = False
                        f.i = 0
                        continue
                    if kind == _T_RET:
                        s, c, lat, uops = term
                        if timing is not None:
                            timing.issue(
                                "ret", lat,
                                (times[s] if s >= 0 else 0.0,),
                                0.0, uops, False, None,
                            )
                        value = regs[s] if s >= 0 else c
                    else:  # _T_RET_VOID
                        lat, uops = block.term
                        if timing is not None:
                            timing.issue("ret", lat, (), 0.0, uops,
                                         False, None)
                        value = None
                except BaseException:
                    f.i = i
                    raise

                # Frame return: the epilogues of _run_* (publish the
                # instruction count) and exec_decoded_function (pop,
                # restore caller context, release stack).
                if executed > M._executed:
                    M._executed = executed
                stack.pop()
                M._frames.pop()
                M._current_fn = f.caller_fn
                M._mem_stream_live = f.prev_mem
                M._branch_stream_live = f.prev_branch
                M.memory.stack_release(f.mark)
                M._depth = f.depth - 1
                returning = True
                break
        return value
    except BaseException as exc:
        # Unwind: per-frame exact partial counter flush (the recursive
        # engine's `except` clause) plus the frame epilogue, innermost
        # first. A frame suspended at a defined call flushes its call
        # record partially — exactly what its recursive `except` would
        # do when the callee's exception propagated through the handler.
        while stack:
            f = stack.pop()
            M._frames.pop()
            if f.in_body:
                block = f.block
                i = f.i
                for k, v in block.cum_pairs[i]:
                    cd[k] += v
                if exc is not f.budget_exc:
                    for k, v in block.partial_pairs[i]:
                        cd[k] += v
                if byop:
                    bo = counters.by_opcode
                    end = i if exc is f.budget_exc else i + 1
                    for op in block.opcodes[:end]:
                        bo[op] = bo.get(op, 0) + 1
            M._current_fn = f.caller_fn
            M._mem_stream_live = f.prev_mem
            M._branch_stream_live = f.prev_branch
            M.memory.stack_release(f.mark)
            M._depth = f.depth - 1
        raise
    finally:
        if executed > M._executed:
            M._executed = executed


def run_resumable(M, fn_name: str, args: Sequence = (),
                  capture=None) -> RunResult:
    """``Machine.run`` on the trampoline (decoded engine only) —
    bit-identical results, no recursion-limit dance, and optional
    mid-run capture via ``capture``."""
    fn = M.module.get_function(fn_name)
    if fn.is_declaration:
        raise ValueError(f"cannot run declaration @{fn_name}")
    arg_values = list(args)
    if len(arg_values) != len(fn.args):
        raise TypeError(
            f"@{fn_name} expects {len(fn.args)} args, got {len(arg_values)}"
        )
    if M._frames:
        M._frames.clear()
    if M._call_sites:
        M._call_sites.clear()
    dfn = decoded_module(
        M.module, M.config.cost_model, M.globals_addr
    ).function(fn)
    stack: List[Frame] = []
    push_frame(M, stack, dfn, arg_values, [0.0] * len(arg_values))
    value = run_stack(M, stack, M._executed, capture)
    cycles = M.timing.cycles if M.timing is not None else 0.0
    ilp = M.timing.ilp if M.timing is not None else 0.0
    return RunResult(
        value=value,
        output=M.output,
        counters=M.counters,
        cycles=cycles,
        ilp=ilp,
        fault_injected=M.fault_injected,
    )


# --- Mid-run state capture / restore -----------------------------------------


@dataclass(frozen=True)
class FrameState:
    """One suspended frame, in process-independent coordinates: the
    function name plus indices into its (deterministic) decoded form."""

    fn: str
    block: int    # index into dfn.blocks
    i: int        # resume cursor into block.body
    regs: tuple
    times: tuple
    mark: int     # memory stack mark at frame entry


@dataclass
class ResumeState:
    """Complete mid-run machine state at a body-record boundary.

    Everything :class:`MachineSnapshot` captures between runs, plus the
    frame stack, the live dynamic-instruction count, and the four
    stream counters — precisely what a golden-prefix checkpoint needs.
    Fault plumbing (plans, watches, hooks) is deliberately absent:
    checkpoints are captured during ``count_only`` golden runs where
    all of it is empty, and :func:`resume_run` arms the injected plan
    itself.
    """

    heap: bytes
    stack_mem: bytes
    heap_top: int
    stack_top: int
    output: tuple
    counters: object
    cache: object
    predictor: object
    timing: object
    branch_pcs: Dict[int, int]   # id(inst) -> pc (process-local keys)
    next_pc: int
    executed: int
    eligible: int
    checker_sites: int
    mem_accesses: int
    cond_branches: int
    frames: Tuple[FrameState, ...]


def capture_state(M, stack: List[Frame], executed: int) -> ResumeState:
    """Copy the complete mid-run state (non-destructively — the run
    continues unperturbed)."""
    mem = M.memory
    frames = []
    for f in stack:
        dfn = f.dfn
        frames.append(FrameState(
            fn=dfn.fn.name,
            block=dfn.blocks.index(f.block),
            i=f.i,
            regs=tuple(f.regs),
            times=tuple(f.times),
            mark=f.mark,
        ))
    return ResumeState(
        heap=bytes(memoryview(mem._heap)[:mem.heap_top - HEAP_BASE]),
        stack_mem=bytes(memoryview(mem._stack)[:mem.stack_top - STACK_BASE]),
        heap_top=mem.heap_top,
        stack_top=mem.stack_top,
        output=tuple(M.output),
        counters=copy.deepcopy(M.counters),
        cache=copy.deepcopy(M.cache),
        predictor=copy.deepcopy(M.predictor),
        timing=copy.deepcopy(M.timing),
        branch_pcs=dict(M._branch_pcs),
        next_pc=M._next_pc,
        executed=executed,
        eligible=M.eligible_executed,
        checker_sites=M.checker_sites_executed,
        mem_accesses=M.mem_accesses_eligible,
        cond_branches=M.cond_branches_eligible,
        frames=tuple(frames),
    )


def restore_payload(M, state: ResumeState) -> None:
    """Put the machine's architectural state back to the checkpoint.
    Non-destructive on ``state`` (deep copies), so one deserialized
    checkpoint serves any number of resumes. Leaves the machine with no
    plans armed, no hooks, ``count_only`` off — callers arm what they
    need (:func:`arm_resume`) before :func:`rebuild_frames`."""
    mem = M.memory
    heap_used = state.heap_top - HEAP_BASE
    cur_heap = mem.heap_top - HEAP_BASE
    mem._heap[:heap_used] = state.heap
    if cur_heap > heap_used:
        mem._heap[heap_used:cur_heap] = bytes(cur_heap - heap_used)
    stack_used = state.stack_top - STACK_BASE
    cur_stack = mem.stack_top - STACK_BASE
    mem._stack[:stack_used] = state.stack_mem
    if cur_stack > stack_used:
        mem._stack[stack_used:cur_stack] = bytes(cur_stack - stack_used)
    mem.heap_top = state.heap_top
    mem.stack_top = state.stack_top
    M.output = list(state.output)
    M.counters = copy.deepcopy(state.counters)
    M.cache = copy.deepcopy(state.cache)
    M.predictor = copy.deepcopy(state.predictor)
    M.timing = copy.deepcopy(state.timing)
    M._branch_pcs = dict(state.branch_pcs)
    M._next_pc = state.next_pc
    M._executed = state.executed
    M.eligible_executed = state.eligible
    M.checker_sites_executed = state.checker_sites
    M.mem_accesses_eligible = state.mem_accesses
    M.cond_branches_eligible = state.cond_branches
    M.fault_plans = []
    M._next_plan = 0
    M._checker_plans = []
    M._next_checker_plan = 0
    M._mem_plans = []
    M._next_mem_plan = 0
    M._branch_plans = []
    M._next_branch_plan = 0
    M.fault_injected = False
    M.fault_target = None
    M._count_only = False
    M._trace_eligible = None
    M._trace_skip_until = -1
    M._watch_checker = M._watch_mem = M._watch_branch = None
    M._frames.clear()
    M._call_sites.clear()
    M._current_fn = None
    M._depth = -1
    M._mem_stream_live = False
    M._branch_stream_live = False
    M._refresh_fault_mode()


def arm_resume(M, plans: Sequence) -> None:
    """Arm plans mid-run, *preserving* the restored stream counters
    (``Machine.arm_faults`` would zero them). Plans whose eligible-
    stream target already passed are skipped, mirroring the cursor
    position a from-scratch run would have at this point."""
    reg: list = []
    checker: list = []
    mem: list = []
    branch: list = []
    for plan in plans:
        kind = getattr(plan, "kind", "reg")
        if kind == "checker":
            checker.append(plan)
        elif kind == "addr":
            mem.append(plan)
        elif kind == "branch":
            branch.append(plan)
        else:
            reg.append(plan)
    by_index = lambda p: p.target_index  # noqa: E731
    M.fault_plans = sorted(reg, key=by_index)
    M._next_plan = 0
    while (M._next_plan < len(M.fault_plans)
           and M.fault_plans[M._next_plan].target_index
           < M.eligible_executed):
        M._next_plan += 1
    M._checker_plans = sorted(checker, key=by_index)
    M._next_checker_plan = 0
    M._mem_plans = sorted(mem, key=by_index)
    M._next_mem_plan = 0
    M._branch_plans = sorted(branch, key=by_index)
    M._next_branch_plan = 0
    M.fault_injected = False
    M.fault_target = None
    M._refresh_fault_mode()


def rebuild_frames(M, state: ResumeState) -> List[Frame]:
    """Reconstruct the live frame stack from a checkpoint. Must run
    *after* plans/watches are armed — per-frame inject mode and the
    stream-live flags depend on ``M._fault_active``, exactly as they
    would have at each frame's push in a from-scratch run."""
    dmod = decoded_module(M.module, M.config.cost_model, M.globals_addr)
    stack: List[Frame] = []
    caller_fn = None
    prev_mem = False
    prev_branch = False
    for depth, fs in enumerate(state.frames):
        fn = M.module.get_function(fs.fn)
        dfn = dmod.function(fn)
        f = Frame()
        f.dfn = dfn
        f.regs = list(fs.regs)
        f.times = list(fs.times)
        f.mark = fs.mark
        f.caller_fn = caller_fn
        f.prev_mem = prev_mem
        f.prev_branch = prev_branch
        f.depth = depth
        f.inject = bool(M._fault_active and M._fault_eligible_fn(fn))
        f.block = dfn.blocks[fs.block]
        f.prev = None
        f.phis_pending = False
        f.in_body = True
        f.i = fs.i
        f.budget_exc = None
        stack.append(f)
        M._frames.append((dfn, f.regs))
        caller_fn = fn
        if f.inject:
            prev_mem = M._mem_stream_needed
            prev_branch = M._branch_stream_needed
        else:
            prev_mem = False
            prev_branch = False
    M._mem_stream_live = prev_mem
    M._branch_stream_live = prev_branch
    M._depth = len(stack) - 1
    M._current_fn = stack[-1].dfn.fn if stack else None
    # Suspended parents each sit at a defined-call record; their site
    # ids rebuild the call-site chain the batch digests compare.
    for f in stack[:-1]:
        M._call_sites.append(f.block.call_meta[f.i][7])
    return stack


def resume_run(M, state: ResumeState, plans: Sequence) -> RunResult:
    """Restore a checkpoint, arm ``plans`` mid-run, and execute only
    the tail. Bit-identical to arming the same plans on a fresh machine
    and running from scratch, for every plan :func:`covers` admits."""
    restore_payload(M, state)
    arm_resume(M, plans)
    stack = rebuild_frames(M, state)
    value = run_stack(M, stack, state.executed)
    cycles = M.timing.cycles if M.timing is not None else 0.0
    ilp = M.timing.ilp if M.timing is not None else 0.0
    return RunResult(
        value=value,
        output=M.output,
        counters=M.counters,
        cycles=cycles,
        ilp=ilp,
        fault_injected=M.fault_injected,
    )


# --- Checkpoint validity -----------------------------------------------------


def stream_mark(state: ResumeState, plan) -> int:
    """The checkpoint's counter on ``plan``'s targeting stream."""
    kind = getattr(plan, "kind", "reg")
    if kind == "checker":
        return state.checker_sites
    if kind == "addr":
        return state.mem_accesses
    if kind == "branch":
        return state.cond_branches
    return state.eligible

def covers(state: ResumeState, plan) -> bool:
    """True when resuming from ``state`` still reaches ``plan``'s
    dynamic fault site (the stream counter has not passed it)."""
    return stream_mark(state, plan) <= plan.target_index
