"""Compatibility shim: the explicit-frame (trampoline) executor now
lives in :mod:`repro.cpu.compiled`.

Historically this module held a hand-maintained mirror of the decoded
engine's recursive executors, rewritten over an explicit frame stack so
mid-run state could be captured and resumed. The compiled execution
core made that mirror the *only* executor — the same trampoline runs
plain decoded records (``engine="decoded"``) and closure-compiled block
segments (``engine="compiled"``) — so the implementation moved to
:mod:`repro.cpu.compiled` and this module simply re-exports the public
surface. The frame/cursor format is unchanged: checkpoints written by
:mod:`repro.snap.format` before the move still load and resume
bit-identically, and existing imports keep working.
"""

from __future__ import annotations

from .compiled import (  # noqa: F401
    Frame,
    FrameState,
    ResumeState,
    arm_resume,
    capture_state,
    covers,
    push_frame,
    rebuild_frames,
    restore_payload,
    resume_run,
    run_resumable,
    run_stack,
    stream_mark,
)

__all__ = [
    "Frame",
    "FrameState",
    "ResumeState",
    "arm_resume",
    "capture_state",
    "covers",
    "push_frame",
    "rebuild_frames",
    "restore_payload",
    "resume_run",
    "run_resumable",
    "run_stack",
    "stream_mark",
]
