"""The compiled execution core: one explicit-frame trampoline running
decoded blocks either record-by-record or as compiled *segments* —
specialized Python closures generated from the decoded stream
(threaded code: each segment returns the next segment to run).

This module is the single substrate behind the ``decoded`` and
``compiled`` engines, the resumable checkpoint machinery
(:mod:`repro.cpu.resumable` is now a compatibility shim over it) and
the batched lane engine (:mod:`repro.cpu.batch`):

- **Trampoline** (:func:`run_stack`): the explicit frame stack. Defined
  calls push a :class:`Frame` where the recursive engine would recurse,
  so at any body-record boundary the complete run state is a plain data
  structure (:class:`ResumeState`) that can be copied, serialized
  (:mod:`repro.snap.format`) and resumed in another process.
- **Segment compiler** (:func:`ensure_compiled`): per basic block, the
  records between defined-call boundaries are compiled to one closure
  with operands resolved to register slots, semantics and the timing
  model's ``issue()`` inlined, cost-table entries baked in as literals,
  and branch targets resolved to the successor's segment (threaded
  dispatch). Frames that need per-record bookkeeping — fault
  injection, tracing, checkpoint capture — keep the record path;
  segments are the ``engine="compiled"`` fast path for everything else.
- **Code cache**: generated code objects are shared across machine
  instances keyed by the module's content digest (the same digest that
  keys the toolchain artifact cache), so campaigns compile once per
  cell and forked/batched/cluster workers reuse the compiled form.

Bit-identity contract: a trampoline run — with or without segments —
is indistinguishable from a recursive ``Machine.run``: return value,
output, every counter (including the exact partial flushes of
trap-abandoned blocks), cycles, branch-predictor/cache state, fault
behaviour, and exception type. Segments inline the *same* statement
order the record handlers and ``TimingModel.issue`` execute; the
differential tests in ``tests/cpu/`` and ``tests/snap/`` pin the
contract across workloads, fault models and machine configurations.

Resuming from a checkpoint arms plans *without* resetting the stream
counters (contrast ``Machine.arm_faults``): the counters are restored
to their checkpoint values and the plan fires when its stream counter
reaches ``target_index`` — the same dynamic event a from-scratch run
hits. A checkpoint captured during a ``count_only`` golden run is a
superset state, valid for every plan whose per-stream mark has not yet
passed (:func:`covers`).
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..ir import types as T
from ..ir.instructions import (
    AllocaInst,
    BinaryInst,
    BroadcastInst,
    CallInst,
    CastInst,
    ExtractElementInst,
    FCmpInst,
    GepInst,
    ICmpInst,
    InsertElementInst,
    LoadInst,
    PhiInst,
    SelectInst,
    ShuffleVectorInst,
    StoreInst,
)
from .engine import (
    _T_BR,
    _T_CONDBR,
    _T_FALLOFF,
    _T_RET,
    _T_RET_VOID,
    _T_UNREACHABLE,
    _MEM_L1,
    _TERMINATOR_OPCODES,
    _Undecodable,
    _float_op,
    _int_op,
    _intrinsic_impl,
    _vec_op,
    DecodedBlock,
    DecodedFunction,
    decoded_module,
    operand_resolver,
    slot_layout,
)
from .cache import _LATENCY as _CACHE_LATENCY
from .errors import HangError, MemoryFault
from .interpreter import (
    _FCMP,
    _ICMP,
    _MASK64,
    _cast_scalar,
    _compute_static,
    _float_binop,
    _int_binop,
    _to_signed,
    RunResult,
)
from .memory import HEAP_BASE, STACK_BASE, _FLOAT_FMT

from struct import Struct as _Struct


class Frame:
    """One live decoded-function activation on the explicit stack."""

    __slots__ = (
        "dfn",          # DecodedFunction
        "regs",         # register file (shared with M._frames entry)
        "times",        # ready-time file
        "mark",         # stack mark at entry (memory.stack_release target)
        "depth",        # call depth (root = 0)
        "inject",       # frame runs the inject (bookkeeping) path
        "prev_mem",     # _mem_stream_live to restore on pop
        "prev_branch",  # _branch_stream_live to restore on pop
        "caller_fn",    # _current_fn to restore on pop
        "block",        # current DecodedBlock
        "prev",         # predecessor block (phi edge), valid if phis_pending
        "i",            # resume cursor into block.body
        "phis_pending",  # phi stage of `block` not yet run
        "in_body",      # inside the counted region (exception flush applies)
        "budget_exc",   # the HangError this frame raised for budget, if any
        "rv",           # return value handed from a compiled ret segment
        "pending_call",  # (dfn, args, arg_times) handed from a call segment
    )


def push_frame(M, stack: List[Frame], dfn: DecodedFunction, args: List,
               arg_times: List[float]) -> Frame:
    """Mirror of ``exec_decoded_function``'s prologue: depth check,
    register-file setup, stack mark, ``_frames``/``_current_fn``/
    stream-flag maintenance — as an explicit frame push."""
    depth = M._depth + 1
    if depth > M.config.max_call_depth:
        raise HangError(f"call depth exceeded in @{dfn.fn.name}")
    M._depth = depth
    regs = [None] * dfn.nslots
    times = [0.0] * dfn.nslots
    nargs = dfn.nargs
    if nargs:
        regs[:nargs] = args
        times[:nargs] = arg_times
    f = Frame()
    f.dfn = dfn
    f.regs = regs
    f.times = times
    f.mark = M.memory.stack_mark()
    f.caller_fn = M._current_fn
    M._current_fn = dfn.fn
    M._frames.append((dfn, regs))
    f.prev_mem = M._mem_stream_live
    f.prev_branch = M._branch_stream_live
    f.depth = depth
    if M._fault_active and M._fault_eligible_fn(dfn.fn):
        M._mem_stream_live = M._mem_stream_needed
        M._branch_stream_live = M._branch_stream_needed
        f.inject = True
    else:
        M._mem_stream_live = False
        M._branch_stream_live = False
        f.inject = False
    f.block = dfn.entry
    f.prev = None
    f.i = 0
    f.phis_pending = False
    f.in_body = False
    f.budget_exc = None
    f.rv = None
    f.pending_call = None
    stack.append(f)
    return f


def run_stack(M, stack: List[Frame], executed: int, capture=None):
    """Run the frame stack to completion; returns the root frame's
    return value. ``executed`` continues the global dynamic-instruction
    count (``M._executed`` at entry, or a checkpoint's).

    ``capture``, when given, is a placement policy with an integer
    ``next_index`` attribute and a ``take(M, stack, executed)`` method;
    the loop invokes ``take`` at the first body-record boundary at or
    after each threshold. ``take`` must only *copy* state (see
    :func:`capture_state`) and advance ``next_index``.
    """
    counters = M.counters
    cd = counters.__dict__
    byop = counters.collect_by_opcode
    timing = M.timing
    maxi = M.config.max_instructions
    # Compiled segments are only sound for frames with no per-record
    # bookkeeping: capture placement polls every record, and inject
    # frames interleave fault/trace/checker steps — both keep the
    # record path (bit-identical either way; segments are pure speed).
    segments_on = capture is None and M.config.engine == "compiled"
    vidx = 0 if timing is not None else 1
    value = None
    returning = False
    try:
        while stack:
            f = stack[-1]
            regs = f.regs
            times = f.times

            if returning:
                # Complete the suspended defined call at f.i: the
                # epilogue of _make_call_defined's handler, followed by
                # the caller loop's inject bookkeeping on the result.
                returning = False
                block = f.block
                (arg_rs, dst, _cdfn, lat, uops, isv, port,
                 _site) = block.call_meta[f.i]
                M._call_sites.pop()
                if dst >= 0:
                    regs[dst] = value
                if timing is not None:
                    ats = [times[s] if s >= 0 else 0.0 for s, c in arg_rs]
                    done = timing.issue("call", lat, ats, 0.0, uops, isv,
                                        port)
                    if dst >= 0:
                        times[dst] = done
                executed = M._executed
                if f.inject:
                    meta = block.inject[f.i]
                    if meta is not None:
                        rdst, _ty, inst = meta
                        index = M.eligible_executed
                        M.eligible_executed = index + 1
                        if (M._trace_eligible is not None
                                and index >= M._trace_skip_until):
                            M._executed = executed
                            M._trace_eligible(inst, M._current_fn)
                        if M._checker_needed:
                            regs[rdst] = M._checker_step(regs[rdst], inst)
                        plans = M.fault_plans
                        cursor = M._next_plan
                        if (cursor < len(plans)
                                and index == plans[cursor].target_index):
                            regs[rdst] = M._apply_reg_plans(
                                regs[rdst], inst, index
                            )
                f.i += 1

            inject = f.inject
            fast = segments_on and not inject
            pushed = False
            while True:  # block chain within this frame
                block = f.block
                if f.phis_pending:
                    # Phis: parallel moves against the incoming edge.
                    # Nothing is counted yet (in_body is False), so
                    # exceptions here escape without any flush — exactly
                    # like the recursive engine.
                    f.phis_pending = False
                    pm = block.phi_moves
                    if pm is not None:
                        moves = pm.get(f.prev)
                        if moves is None:
                            raise KeyError(
                                f"phi in %{block.name} has no incoming "
                                f"from %{f.prev.name}"
                            )
                        staged = [
                            (dst,
                             regs[s] if s >= 0 else c,
                             times[s] if s >= 0 else 0.0)
                            for dst, s, c in moves
                        ]
                        if inject:
                            for (dst, v, t), (ty, phi) in zip(
                                    staged, block.phi_meta):
                                index = M.eligible_executed
                                M.eligible_executed = index + 1
                                if (M._trace_eligible is not None
                                        and index >= M._trace_skip_until):
                                    M._executed = executed
                                    M._trace_eligible(phi, M._current_fn)
                                if M._checker_needed:
                                    v = M._checker_step(v, phi)
                                plans = M.fault_plans
                                cursor = M._next_plan
                                if (cursor < len(plans)
                                        and index ==
                                        plans[cursor].target_index):
                                    v = M._apply_reg_plans(v, phi, index)
                                regs[dst] = v
                                times[dst] = t
                        else:
                            for dst, v, t in staged:
                                regs[dst] = v
                                times[dst] = t

                if fast:
                    maps = block.compiled
                    if maps is not None:
                        segmap = maps[vidx]
                        seg = (segmap.get(f.i)
                               if segmap is not None else None)
                        if seg is not None:
                            # Threaded dispatch: each segment returns
                            # the next segment (callable), None for a
                            # frame return, 1 for a defined-call push,
                            # 2 to re-enter this loop on a new block,
                            # or 3 to run the current block's records
                            # generically (budget within one block of
                            # exhaustion — the record path raises the
                            # HangError at the exact instruction).
                            # Defined-call pushes and frame returns
                            # between fast frames are handled without
                            # leaving this loop: the pop/epilogue below
                            # is the same code the outer loop runs, it
                            # just skips the frame re-derivation hop.
                            while True:
                                executed, ctrl = seg(
                                    M, f, regs, times, executed,
                                    timing, maxi, cd, byop)
                                if ctrl.__class__ is int:
                                    if ctrl == 1:
                                        cdfn, cargs, cats = f.pending_call
                                        f.pending_call = None
                                        f2 = push_frame(M, stack, cdfn,
                                                        cargs, cats)
                                        if f2.inject:
                                            pushed = True
                                            break
                                        f = f2
                                        regs = f.regs
                                        times = f.times
                                        maps = f.block.compiled
                                        if maps is not None:
                                            segmap = maps[vidx]
                                            if segmap is not None:
                                                seg = segmap.get(0)
                                                if seg is not None:
                                                    continue
                                        ctrl = 2
                                    break
                                if ctrl is not None:
                                    seg = ctrl
                                    continue
                                # Frame return: pop this frame, then —
                                # when the caller is a fast frame too —
                                # run the returning epilogue inline and
                                # resume its compiled suspension point.
                                value = f.rv
                                f.rv = None
                                if executed > M._executed:
                                    M._executed = executed
                                stack.pop()
                                M._frames.pop()
                                M._current_fn = f.caller_fn
                                M._mem_stream_live = f.prev_mem
                                M._branch_stream_live = f.prev_branch
                                M.memory.stack_release(f.mark)
                                M._depth = f.depth - 1
                                if not stack or stack[-1].inject:
                                    returning = True
                                    break
                                f = stack[-1]
                                regs = f.regs
                                times = f.times
                                block = f.block
                                (arg_rs, dst, _cdfn, lat, uops, isv,
                                 port, _site) = block.call_meta[f.i]
                                M._call_sites.pop()
                                if dst >= 0:
                                    regs[dst] = value
                                if timing is not None:
                                    ats = [times[s] if s >= 0 else 0.0
                                           for s, c in arg_rs]
                                    done = timing.issue(
                                        "call", lat, ats, 0.0, uops,
                                        isv, port)
                                    if dst >= 0:
                                        times[dst] = done
                                executed = M._executed
                                f.i += 1
                                maps = block.compiled
                                seg = None
                                if maps is not None:
                                    segmap = maps[vidx]
                                    if segmap is not None:
                                        seg = segmap.get(f.i)
                                if seg is None:
                                    ctrl = 2
                                    break
                            if ctrl is None or pushed:
                                break
                            if ctrl == 2:
                                continue
                            # ctrl == 3: fall through to the record path.
                            # The segment chain may have advanced through
                            # several blocks (and across a call push)
                            # before bailing, so the suspension point in
                            # f.block can differ from the block this
                            # dispatch entered — re-derive the local.
                            block = f.block

                f.in_body = True
                body = block.body
                inj = block.inject
                call_meta = block.call_meta
                n = block.n
                i = f.i
                try:
                    while i < n:
                        if (capture is not None
                                and M.eligible_executed >=
                                capture.next_index):
                            f.i = i
                            capture.take(M, stack, executed)
                        executed += 1
                        if executed > maxi:
                            f.budget_exc = HangError(
                                f"instruction budget exceeded ({maxi})"
                            )
                            raise f.budget_exc
                        cm = call_meta[i]
                        if cm is not None:
                            # Defined call: the handler's prologue, then
                            # a frame push where it would recurse.
                            arg_rs, dst, cdfn, lat, uops, isv, port, \
                                site = cm
                            cargs = [regs[s] if s >= 0 else c
                                     for s, c in arg_rs]
                            cats = [times[s] if s >= 0 else 0.0
                                    for s, c in arg_rs]
                            M._executed = executed
                            M._call_sites.append(site)
                            f.i = i
                            push_frame(M, stack, cdfn, cargs, cats)
                            pushed = True
                            break
                        executed = body[i](M, regs, times, executed, timing)
                        if inject:
                            meta = inj[i]
                            if meta is not None:
                                rdst, _ty, inst = meta
                                index = M.eligible_executed
                                M.eligible_executed = index + 1
                                if (M._trace_eligible is not None
                                        and index >= M._trace_skip_until):
                                    M._executed = executed
                                    M._trace_eligible(inst, M._current_fn)
                                if M._checker_needed:
                                    regs[rdst] = M._checker_step(
                                        regs[rdst], inst
                                    )
                                plans = M.fault_plans
                                cursor = M._next_plan
                                if (cursor < len(plans)
                                        and index ==
                                        plans[cursor].target_index):
                                    regs[rdst] = M._apply_reg_plans(
                                        regs[rdst], inst, index
                                    )
                        i += 1
                    if pushed:
                        break
                    f.i = i

                    # Terminator --------------------------------------
                    kind = block.term_kind
                    if kind == _T_FALLOFF:
                        raise MemoryFault(0, 0)
                    executed += 1
                    if executed > maxi:
                        f.budget_exc = HangError(
                            f"instruction budget exceeded ({maxi})"
                        )
                        raise f.budget_exc
                    if kind == _T_UNREACHABLE:
                        raise MemoryFault(0, 0)

                    for k, v in block.full_pairs:
                        cd[k] += v
                    if byop:
                        bo = counters.by_opcode
                        for op, cnt in block.opcode_items:
                            bo[op] = bo.get(op, 0) + cnt

                    term = block.term
                    if kind == _T_BR:
                        if timing is not None:
                            timing.issue("br", term[1], (), 0.0, 1,
                                         False, None)
                        f.prev = block
                        f.block = term[0]
                        f.phis_pending = True
                        f.in_body = False
                        f.i = 0
                        continue
                    if kind == _T_CONDBR:
                        s, c, tb, eb, inst, lat = term
                        taken = bool(regs[s] if s >= 0 else c)
                        if M._branch_stream_live:
                            taken = M._branch_step(taken, inst)
                        pcs = M._branch_pcs
                        key = id(inst)
                        pc = pcs.get(key)
                        if pc is None:
                            pc = M._next_pc
                            M._next_pc = pc + 1
                            pcs[key] = pc
                        correct = M.predictor.predict_and_update(pc, taken)
                        if timing is not None:
                            resolve = timing.issue(
                                "br", lat,
                                (times[s] if s >= 0 else 0.0,),
                                0.0, 1, False, None,
                            )
                            if not correct:
                                cd["branch_misses"] += 1
                                timing.branch_mispredict(resolve)
                        elif not correct:
                            cd["branch_misses"] += 1
                        f.prev = block
                        f.block = tb if taken else eb
                        f.phis_pending = True
                        f.in_body = False
                        f.i = 0
                        continue
                    if kind == _T_RET:
                        s, c, lat, uops = term
                        if timing is not None:
                            timing.issue(
                                "ret", lat,
                                (times[s] if s >= 0 else 0.0,),
                                0.0, uops, False, None,
                            )
                        value = regs[s] if s >= 0 else c
                    else:  # _T_RET_VOID
                        lat, uops = block.term
                        if timing is not None:
                            timing.issue("ret", lat, (), 0.0, uops,
                                         False, None)
                        value = None
                except BaseException:
                    f.i = i
                    raise

                # Frame return: the epilogues of _run_* (publish the
                # instruction count) and exec_decoded_function (pop,
                # restore caller context, release stack).
                if executed > M._executed:
                    M._executed = executed
                stack.pop()
                M._frames.pop()
                M._current_fn = f.caller_fn
                M._mem_stream_live = f.prev_mem
                M._branch_stream_live = f.prev_branch
                M.memory.stack_release(f.mark)
                M._depth = f.depth - 1
                returning = True
                break
        return value
    except BaseException as exc:
        # Unwind: per-frame exact partial counter flush (the recursive
        # engine's `except` clause) plus the frame epilogue, innermost
        # first. A frame suspended at a defined call flushes its call
        # record partially — exactly what its recursive `except` would
        # do when the callee's exception propagated through the handler.
        while stack:
            f = stack.pop()
            M._frames.pop()
            if f.in_body:
                block = f.block
                i = f.i
                for k, v in block.cum_pairs[i]:
                    cd[k] += v
                if exc is not f.budget_exc:
                    for k, v in block.partial_pairs[i]:
                        cd[k] += v
                if byop:
                    bo = counters.by_opcode
                    end = i if exc is f.budget_exc else i + 1
                    for op in block.opcodes[:end]:
                        bo[op] = bo.get(op, 0) + 1
            M._current_fn = f.caller_fn
            M._mem_stream_live = f.prev_mem
            M._branch_stream_live = f.prev_branch
            M.memory.stack_release(f.mark)
            M._depth = f.depth - 1
        raise
    finally:
        if executed > M._executed:
            M._executed = executed


def run_resumable(M, fn_name: str, args: Sequence = (),
                  capture=None) -> RunResult:
    """``Machine.run`` on the trampoline — bit-identical results, no
    recursion-limit dance, and optional mid-run capture via
    ``capture``. Runs compiled segments when the machine's engine is
    ``"compiled"`` (and no capture policy is polling); the record path
    otherwise."""
    fn = M.module.get_function(fn_name)
    if fn.is_declaration:
        raise ValueError(f"cannot run declaration @{fn_name}")
    arg_values = list(args)
    if len(arg_values) != len(fn.args):
        raise TypeError(
            f"@{fn_name} expects {len(fn.args)} args, got {len(arg_values)}"
        )
    if M._frames:
        M._frames.clear()
    if M._call_sites:
        M._call_sites.clear()
    dmod = decoded_module(M.module, M.config.cost_model, M.globals_addr)
    dfn = dmod.function(fn)
    if M.config.engine == "compiled" and capture is None:
        ensure_compiled(dmod, 0 if M.timing is not None else 1)
    stack: List[Frame] = []
    push_frame(M, stack, dfn, arg_values, [0.0] * len(arg_values))
    value = run_stack(M, stack, M._executed, capture)
    cycles = M.timing.cycles if M.timing is not None else 0.0
    ilp = M.timing.ilp if M.timing is not None else 0.0
    return RunResult(
        value=value,
        output=M.output,
        counters=M.counters,
        cycles=cycles,
        ilp=ilp,
        fault_injected=M.fault_injected,
    )


# --- Mid-run state capture / restore -----------------------------------------


@dataclass(frozen=True)
class FrameState:
    """One suspended frame, in process-independent coordinates: the
    function name plus indices into its (deterministic) decoded form."""

    fn: str
    block: int    # index into dfn.blocks
    i: int        # resume cursor into block.body
    regs: tuple
    times: tuple
    mark: int     # memory stack mark at frame entry


@dataclass
class ResumeState:
    """Complete mid-run machine state at a body-record boundary.

    Everything :class:`MachineSnapshot` captures between runs, plus the
    frame stack, the live dynamic-instruction count, and the four
    stream counters — precisely what a golden-prefix checkpoint needs.
    Fault plumbing (plans, watches, hooks) is deliberately absent:
    checkpoints are captured during ``count_only`` golden runs where
    all of it is empty, and :func:`resume_run` arms the injected plan
    itself.
    """

    heap: bytes
    stack_mem: bytes
    heap_top: int
    stack_top: int
    output: tuple
    counters: object
    cache: object
    predictor: object
    timing: object
    branch_pcs: Dict[int, int]   # id(inst) -> pc (process-local keys)
    next_pc: int
    executed: int
    eligible: int
    checker_sites: int
    mem_accesses: int
    cond_branches: int
    frames: Tuple[FrameState, ...]


def capture_state(M, stack: List[Frame], executed: int) -> ResumeState:
    """Copy the complete mid-run state (non-destructively — the run
    continues unperturbed)."""
    mem = M.memory
    frames = []
    for f in stack:
        dfn = f.dfn
        frames.append(FrameState(
            fn=dfn.fn.name,
            block=dfn.blocks.index(f.block),
            i=f.i,
            regs=tuple(f.regs),
            times=tuple(f.times),
            mark=f.mark,
        ))
    return ResumeState(
        heap=bytes(memoryview(mem._heap)[:mem.heap_top - HEAP_BASE]),
        stack_mem=bytes(memoryview(mem._stack)[:mem.stack_top - STACK_BASE]),
        heap_top=mem.heap_top,
        stack_top=mem.stack_top,
        output=tuple(M.output),
        counters=copy.deepcopy(M.counters),
        cache=copy.deepcopy(M.cache),
        predictor=copy.deepcopy(M.predictor),
        timing=copy.deepcopy(M.timing),
        branch_pcs=dict(M._branch_pcs),
        next_pc=M._next_pc,
        executed=executed,
        eligible=M.eligible_executed,
        checker_sites=M.checker_sites_executed,
        mem_accesses=M.mem_accesses_eligible,
        cond_branches=M.cond_branches_eligible,
        frames=tuple(frames),
    )


def restore_payload(M, state: ResumeState) -> None:
    """Put the machine's architectural state back to the checkpoint.
    Non-destructive on ``state`` (deep copies), so one deserialized
    checkpoint serves any number of resumes. Leaves the machine with no
    plans armed, no hooks, ``count_only`` off — callers arm what they
    need (:func:`arm_resume`) before :func:`rebuild_frames`."""
    mem = M.memory
    heap_used = state.heap_top - HEAP_BASE
    cur_heap = mem.heap_top - HEAP_BASE
    mem._heap[:heap_used] = state.heap
    if cur_heap > heap_used:
        mem._heap[heap_used:cur_heap] = bytes(cur_heap - heap_used)
    stack_used = state.stack_top - STACK_BASE
    cur_stack = mem.stack_top - STACK_BASE
    mem._stack[:stack_used] = state.stack_mem
    if cur_stack > stack_used:
        mem._stack[stack_used:cur_stack] = bytes(cur_stack - stack_used)
    mem.heap_top = state.heap_top
    mem.stack_top = state.stack_top
    M.output = list(state.output)
    M.counters = copy.deepcopy(state.counters)
    M.cache = copy.deepcopy(state.cache)
    M.predictor = copy.deepcopy(state.predictor)
    M.timing = copy.deepcopy(state.timing)
    M._branch_pcs = dict(state.branch_pcs)
    M._next_pc = state.next_pc
    M._executed = state.executed
    M.eligible_executed = state.eligible
    M.checker_sites_executed = state.checker_sites
    M.mem_accesses_eligible = state.mem_accesses
    M.cond_branches_eligible = state.cond_branches
    M.fault_plans = []
    M._next_plan = 0
    M._checker_plans = []
    M._next_checker_plan = 0
    M._mem_plans = []
    M._next_mem_plan = 0
    M._branch_plans = []
    M._next_branch_plan = 0
    M.fault_injected = False
    M.fault_target = None
    M._count_only = False
    M._trace_eligible = None
    M._trace_skip_until = -1
    M._watch_checker = M._watch_mem = M._watch_branch = None
    M._frames.clear()
    M._call_sites.clear()
    M._current_fn = None
    M._depth = -1
    M._mem_stream_live = False
    M._branch_stream_live = False
    M._refresh_fault_mode()


def arm_resume(M, plans: Sequence) -> None:
    """Arm plans mid-run, *preserving* the restored stream counters
    (``Machine.arm_faults`` would zero them). Plans whose eligible-
    stream target already passed are skipped, mirroring the cursor
    position a from-scratch run would have at this point."""
    reg: list = []
    checker: list = []
    mem: list = []
    branch: list = []
    for plan in plans:
        kind = getattr(plan, "kind", "reg")
        if kind == "checker":
            checker.append(plan)
        elif kind == "addr":
            mem.append(plan)
        elif kind == "branch":
            branch.append(plan)
        else:
            reg.append(plan)
    by_index = lambda p: p.target_index  # noqa: E731
    M.fault_plans = sorted(reg, key=by_index)
    M._next_plan = 0
    while (M._next_plan < len(M.fault_plans)
           and M.fault_plans[M._next_plan].target_index
           < M.eligible_executed):
        M._next_plan += 1
    M._checker_plans = sorted(checker, key=by_index)
    M._next_checker_plan = 0
    M._mem_plans = sorted(mem, key=by_index)
    M._next_mem_plan = 0
    M._branch_plans = sorted(branch, key=by_index)
    M._next_branch_plan = 0
    M.fault_injected = False
    M.fault_target = None
    M._refresh_fault_mode()


def rebuild_frames(M, state: ResumeState) -> List[Frame]:
    """Reconstruct the live frame stack from a checkpoint. Must run
    *after* plans/watches are armed — per-frame inject mode and the
    stream-live flags depend on ``M._fault_active``, exactly as they
    would have at each frame's push in a from-scratch run."""
    dmod = decoded_module(M.module, M.config.cost_model, M.globals_addr)
    stack: List[Frame] = []
    needs_segments = M.config.engine == "compiled"
    caller_fn = None
    prev_mem = False
    prev_branch = False
    for depth, fs in enumerate(state.frames):
        fn = M.module.get_function(fs.fn)
        dfn = dmod.function(fn)
        f = Frame()
        f.dfn = dfn
        f.regs = list(fs.regs)
        f.times = list(fs.times)
        f.mark = fs.mark
        f.caller_fn = caller_fn
        f.prev_mem = prev_mem
        f.prev_branch = prev_branch
        f.depth = depth
        f.inject = bool(M._fault_active and M._fault_eligible_fn(fn))
        f.block = dfn.blocks[fs.block]
        f.prev = None
        f.phis_pending = False
        f.in_body = True
        f.i = fs.i
        f.budget_exc = None
        f.rv = None
        f.pending_call = None
        stack.append(f)
        M._frames.append((dfn, f.regs))
        caller_fn = fn
        if f.inject:
            prev_mem = M._mem_stream_needed
            prev_branch = M._branch_stream_needed
        else:
            prev_mem = False
            prev_branch = False
    M._mem_stream_live = prev_mem
    M._branch_stream_live = prev_branch
    M._depth = len(stack) - 1
    M._current_fn = stack[-1].dfn.fn if stack else None
    # Suspended parents each sit at a defined-call record; their site
    # ids rebuild the call-site chain the batch digests compare.
    for f in stack[:-1]:
        M._call_sites.append(f.block.call_meta[f.i][7])
    if needs_segments:
        ensure_compiled(dmod, 0 if M.timing is not None else 1)
    return stack


def resume_run(M, state: ResumeState, plans: Sequence) -> RunResult:
    """Restore a checkpoint, arm ``plans`` mid-run, and execute only
    the tail. Bit-identical to arming the same plans on a fresh machine
    and running from scratch, for every plan :func:`covers` admits."""
    restore_payload(M, state)
    arm_resume(M, plans)
    stack = rebuild_frames(M, state)
    value = run_stack(M, stack, state.executed)
    cycles = M.timing.cycles if M.timing is not None else 0.0
    ilp = M.timing.ilp if M.timing is not None else 0.0
    return RunResult(
        value=value,
        output=M.output,
        counters=M.counters,
        cycles=cycles,
        ilp=ilp,
        fault_injected=M.fault_injected,
    )


# --- Checkpoint validity -----------------------------------------------------


def stream_mark(state: ResumeState, plan) -> int:
    """The checkpoint's counter on ``plan``'s targeting stream."""
    kind = getattr(plan, "kind", "reg")
    if kind == "checker":
        return state.checker_sites
    if kind == "addr":
        return state.mem_accesses
    if kind == "branch":
        return state.cond_branches
    return state.eligible

def covers(state: ResumeState, plan) -> bool:
    """True when resuming from ``state`` still reaches ``plan``'s
    dynamic fault site (the stream counter has not passed it)."""
    return stream_mark(state, plan) <= plan.target_index


# --- Segment compiler ---------------------------------------------------------
#
# A *segment* is one compiled closure covering the records of a basic
# block between defined-call boundaries (a call suspends the frame, so
# it always ends a segment), plus the block terminator for the last
# segment. Segment protocol:
#
#   seg(M, f, regs, times, executed, timing, maxi, cd, byop)
#       -> (executed, ctrl)
#
# ``ctrl`` is the next segment (threaded dispatch), ``None`` for a
# frame return (value in ``f.rv``), ``1`` for a defined-call push
# (payload in ``f.pending_call``), ``2`` to re-enter the trampoline's
# block loop (successor without a segment, or a phi edge the decoder
# could not pre-resolve — the generic stage reproduces the reference
# KeyError), or ``3`` to run the current block's records generically
# (the instruction budget would be exhausted inside this segment; the
# record path raises the HangError at the exact instruction).
#
# Bit-identity rules baked into the generated code:
#
# - Value semantics mirror the decoded handlers statement for
#   statement (same bounds checks, same masking, same helper calls for
#   div/rem, f32 and cast paths).
# - ``TimingModel.issue`` is inlined with its scalar state (issue
#   time, finish time, retire frontier) hoisted into locals; the
#   ``issued``/``uops_issued`` totals are deferred to the segment
#   exits (nothing reads them mid-segment), with exact prefix
#   restoration when an exception escapes mid-segment.
# - Static counter deltas flush once per block from literal
#   increments; an escaping exception leaves the flush to the
#   trampoline's unwind handler via ``f.i``, exactly like the record
#   path.
# - Segments are only entered for frames with no per-record
#   bookkeeping (no fault injection, tracing, checker stepping or
#   capture polling), so the eligible-stream counters and stream-live
#   checks are statically absent, not skipped.

import math  # noqa: E402
import os  # noqa: E402

#: Re-raise segment-compiler errors instead of silently falling back
#: to the record path (the fallback is bit-identical, so a compiler
#: bug would otherwise only show up as a missing speedup). Tests set
#: REPRO_COMPILED_STRICT=1.
STRICT_COMPILE = os.environ.get("REPRO_COMPILED_STRICT", "") not in ("", "0")

_SUPPORTED_TERMS = (_T_BR, _T_CONDBR, _T_RET, _T_RET_VOID)

_ICMP_UNSIGNED = {"eq": "==", "ne": "!=", "ult": "<", "ule": "<=",
                  "ugt": ">", "uge": ">="}
_ICMP_SIGNED = {"slt": "<", "sle": "<=", "sgt": ">", "sge": ">="}
_FCMP_ORDERED = {"oeq": "==", "olt": "<", "ole": "<=", "ogt": ">",
                 "oge": ">="}

# Stable object for identity-keyed const dedup (``int.from_bytes``
# attribute access creates a fresh bound object every time).
_FROM_BYTES = int.from_bytes


class _Unsupported(Exception):
    """Record/block outside the compilable subset (it stays on the
    record path — bit-identical, just not accelerated)."""


@dataclass
class CompileStats:
    """Process-wide segment-compiler totals (see :data:`COMPILE_STATS`)."""

    functions: int = 0
    blocks: int = 0
    segments: int = 0
    compile_ms: float = 0.0
    code_hits: int = 0
    code_misses: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "functions": self.functions,
            "blocks": self.blocks,
            "segments": self.segments,
            "compile_ms": self.compile_ms,
            "code_hits": self.code_hits,
            "code_misses": self.code_misses,
        }


COMPILE_STATS = CompileStats()

#: Subscribers called with one payload dict per :func:`ensure_compiled`
#: invocation that did work: module digest, function/block/segment
#: counts, compile wall time and code-cache hit/miss split. The lab
#: bridges these onto its EventBus as ``engine-compile`` events.
_COMPILE_HOOKS: List[Callable[[Dict[str, object]], None]] = []

#: Cross-instance code-object cache: (module digest, cost-model id,
#: variant, function name) -> (costs ref, source, code). Two machines
#: running the same IR under the same cost model re-exec the cached
#: code object with fresh instance constants instead of re-compiling.
_CODE_CACHE: Dict[tuple, tuple] = {}


def add_compile_hook(fn: Callable[[Dict[str, object]], None]) -> None:
    _COMPILE_HOOKS.append(fn)


def remove_compile_hook(fn: Callable[[Dict[str, object]], None]) -> None:
    try:
        _COMPILE_HOOKS.remove(fn)
    except ValueError:
        pass


def code_cache_clear() -> None:
    _CODE_CACHE.clear()


def _module_digest(dmod) -> str:
    """Content digest of the module (the toolchain's artifact key), or
    "" when the digest pipeline is unavailable."""
    try:
        from ..toolchain.build import module_digest
        return module_digest(dmod.module)
    except Exception:
        return ""


def _block_records(bb):
    """(records, terminator) exactly as ``_fill_block`` partitions the
    block: leading phis skipped, records up to the first terminator
    opcode."""
    insts = bb.instructions
    start = 0
    while start < len(insts) and isinstance(insts[start], PhiInst):
        start += 1
    records = []
    terminator = None
    for inst in insts[start:]:
        if inst.opcode in _TERMINATOR_OPCODES:
            terminator = inst
            break
        records.append(inst)
    return records, terminator


class _Emitter:
    """Source accumulator for one segment: indented lines, constants
    bound as keyword-parameter defaults, and the deferred-timing
    bookkeeping the exits and the exception path must restore."""

    def __init__(self, consts, seen, with_timing):
        self.lines: List[str] = []
        self.consts = consts          # function-level: name -> value
        self.seen = seen              # function-level: id(value) -> name
        self.with_timing = with_timing
        self.used: List[str] = []     # const names this segment binds
        self.uops_used = set()
        self.pend_issued = 0
        self.pend_uops = 0
        # Exception-flush tables, indexed by (raising record - segment
        # start): pending uops / pending issues before that record, and
        # the record count since the last inline `executed` bump. With
        # no inlined calls the latter two are identities (_i - s).
        self.cum_uops: List[int] = [0]
        self.cum_issued: List[int] = [0]
        self.rec_adj: List[int] = [0]
        self.exec_base = 0            # first record not yet in `executed`
        self.inlined = False          # any leaf call inlined so far
        self.need_mem = False
        self.need_cache = False
        self.uses_sg = False
        self.uses_bmp = False
        self.uses_pred = False
        # Region mode (one closure covering every call-free block of a
        # function): issued/uops totals are accumulated at runtime in
        # _nis/_nuo locals because the path through the region is
        # dynamic, unlike a straight-line segment's static count.
        self.region_bis: frozenset = frozenset()
        self.region_mode = False
        # Region-wide counter accumulators: block-completion counter
        # flushes become local integer adds; the dict writes happen
        # once per region exit. Keyed by counter name in first-use
        # order; exits emitted mid-block use the %CTRFLUSH% marker
        # (patched once the full key set is known).
        self.ctr_local: Dict[str, str] = {}

    def w(self, depth: int, text: str) -> None:
        self.lines.append("    " * depth + text)

    def mark(self, nxt: int) -> None:
        """Record the flush-table entries for record index ``nxt``."""
        self.cum_uops.append(self.pend_uops)
        self.cum_issued.append(self.pend_issued)
        self.rec_adj.append(nxt - self.exec_base)

    def reset_block(self, start: int) -> None:
        """Restart the per-block/per-segment static accounting."""
        self.pend_issued = 0
        self.pend_uops = 0
        self.cum_uops = [0]
        self.cum_issued = [0]
        self.rec_adj = [0]
        self.exec_base = start
        self.inlined = False

    def _use(self, name: str) -> str:
        if name not in self.used:
            self.used.append(name)
        return name

    def K(self, value) -> str:
        name = f"_k{len(self.consts)}"
        self.consts[name] = value
        return self._use(name)

    def KI(self, value) -> str:
        """Identity-deduplicated constant (shared helpers, types,
        decoded blocks)."""
        name = self.seen.get(id(value))
        if name is None:
            name = f"_k{len(self.consts)}"
            self.consts[name] = value
            self.seen[id(value)] = name
        return self._use(name)

    def ctr(self, key: str) -> str:
        """Region-local accumulator name for counter ``key``."""
        name = self.ctr_local.get(key)
        if name is None:
            name = f"_c{len(self.ctr_local)}"
            self.ctr_local[key] = name
        return name

    def oexpr(self, sc) -> str:
        s, c = sc
        return f"regs[{s}]" if s >= 0 else self.K(c)

    def texpr(self, sc) -> Optional[str]:
        """Operand ready-time expression; None for constants (0.0 —
        never the max, so the inlined issue() skips it)."""
        return f"times[{sc[0]}]" if sc[0] >= 0 else None

    def issue(self, d, lat_expr, tops, extra, uops, isv, port, rtp) -> None:
        """Inline ``TimingModel.issue`` (timing variant only): exact
        statement order — ROB, operand maxes, port, vector-ALU group,
        completion, retire frontier, frontend advance. Leaves the
        completion time in ``_d``."""
        w = self.w
        w(d, "_s = _ti")
        w(d, "if len(_rob) >= _robsz:")
        w(d + 1, "_o = _rpop()")
        w(d + 1, "if _o > _s:")
        w(d + 2, "_s = _o")
        for t in tops:
            if t is None:
                continue
            w(d, f"if {t} > _s:")
            w(d + 1, f"_s = {t}")
        if port is not None:
            w(d, f"_p = _pfg({port[0]!r}, 0.0)")
            w(d, "if _p > _s:")
            w(d + 1, "_s = _p")
            w(d, f"_pf[{port[0]!r}] = _p + {self.K(port[1])}")
        if isv:
            w(d, "_p = _pfg('vecalu', 0.0)")
            w(d, "if _p > _s:")
            w(d + 1, "_s = _p")
            w(d, f"_pf['vecalu'] = _p + {self.K(rtp * uops)}")
        if extra is None:
            w(d, f"_d = _s + {lat_expr}")
        else:
            w(d, f"_d = _s + {lat_expr} + {extra}")
        # finish_time and _retire_frontier are both the running max of
        # every completion time since reset (only issue()/reset() write
        # them), so they are always equal — track one local and store
        # it back to both fields.
        w(d, "if _d > _tr:")
        w(d + 1, "_tr = _d")
        w(d, "_rapp(_tr)")
        if uops:
            # uops == 0 would add 0/width == +0.0 to issue_time, a
            # no-op (issue_time is never -0.0: it starts at 0.0 and
            # only grows) — skip the float add entirely.
            w(d, f"_ti += _q{uops}")
            self.uops_used.add(uops)
        self.pend_issued += 1
        self.pend_uops += uops

    def writeback(self, d) -> None:
        """Flush the hoisted timing scalars, the deferred issued/uops
        totals, and (region mode) the counter accumulators back to
        their homes (exit paths)."""
        if self.region_mode:
            self.w(d, "%CTRFLUSH%")
        if not self.with_timing:
            return
        if self.region_mode:
            # Prior blocks' totals live in the _nis/_nuo runtime
            # accumulators; the current block's are static.
            self.w(d, "_tm.issue_time = _ti")
            self.w(d, "_tm.finish_time = _tr")
            self.w(d, "_tm._retire_frontier = _tr")
            self.w(d, f"_tm.issued += _nis + {self.pend_issued}")
            self.w(d, f"_tm.uops_issued += _nuo + {self.pend_uops}")
            return
        if self.pend_issued == 0:
            return
        self.w(d, "_tm.issue_time = _ti")
        self.w(d, "_tm.finish_time = _tr")
        self.w(d, "_tm._retire_frontier = _tr")
        self.w(d, f"_tm.issued += {self.pend_issued}")
        self.w(d, f"_tm.uops_issued += {self.pend_uops}")

def _scalar_int_expr(E, opcode, a, b, width):
    """Expression mirroring ``_int_op(opcode, width)`` applied to the
    operand expressions ``a``/``b`` (pure reads, safe to repeat)."""
    mask = (1 << width) - 1
    if opcode == "add":
        return f"(({a} + {b}) & {mask})"
    if opcode == "sub":
        return f"(({a} - {b}) & {mask})"
    if opcode == "mul":
        return f"(({a} * {b}) & {mask})"
    if opcode == "and":
        return f"({a} & {b})"
    if opcode == "or":
        return f"({a} | {b})"
    if opcode == "xor":
        return f"({a} ^ {b})"
    if opcode == "shl":
        return f"((({a} << ({b} % {width})) & {mask}))"
    if opcode == "lshr":
        return f"(({a} >> ({b} % {width})) & {mask})"
    if opcode == "ashr":
        # Inline _to_signed: register values are kept width-masked (the
        # same invariant the unsigned compare path relies on), so the
        # sign conversion is a single conditional subtract.
        sb = 1 << (width - 1)
        return (f"((({a} - {1 << width} if {a} >= {sb} else {a})"
                f" >> ({b} % {width})) & {mask})")
    # div/rem keep the reference helper (ArithmeticFault on zero).
    ib = E.KI(_int_binop)
    return f"{ib}({opcode!r}, {a}, {b}, {width})"


def _scalar_float_expr(E, opcode, a, b, bits):
    """Expression mirroring ``_float_op(opcode, bits)``."""
    fb = None
    if bits == 32:
        fb = E.KI(_float_binop)
        return f"{fb}({opcode!r}, {a}, {b}, 32)"
    if opcode == "fadd":
        return f"({a} + {b})"
    if opcode == "fsub":
        return f"({a} - {b})"
    if opcode == "fmul":
        return f"({a} * {b})"
    fb = E.KI(_float_binop)
    return f"{fb}({opcode!r}, {a}, {b}, 64)"


def _icmp_scalar_expr(E, pred, a, b, width):
    op = _ICMP_UNSIGNED.get(pred)
    if op is not None:
        return f"(1 if {a} {op} {b} else 0)"
    op = _ICMP_SIGNED.get(pred)
    if op is None:
        raise _Unsupported(f"icmp pred {pred}")
    # Signed compare via the sign-bit flip: x -> x ^ sb maps the signed
    # order onto the unsigned order for width-masked values, so no
    # _to_signed conversion (and no helper call) is needed.
    sb = 1 << (width - 1)
    return f"(1 if ({a} ^ {sb}) {op} ({b} ^ {sb}) else 0)"


def _fcmp_scalar_expr(E, pred, a, b):
    op = _FCMP_ORDERED.get(pred)
    if op is not None:
        return f"(1 if {a} {op} {b} else 0)"
    isnan = E.KI(math.isnan)
    if pred == "one":
        return (f"(1 if ({a} != {b} and not ({isnan}({a}) or "
                f"{isnan}({b}))) else 0)")
    if pred == "ord":
        return f"(1 if not ({isnan}({a}) or {isnan}({b})) else 0)"
    if pred == "uno":
        return f"(1 if ({isnan}({a}) or {isnan}({b})) else 0)"
    raise _Unsupported(f"fcmp pred {pred}")


def _emit_miss_ladder(E, d):
    E.w(d, "if _lv >= 2:")
    E.w(d + 1, "_cc = M.counters")
    E.w(d + 1, "_cc.l1_misses += 1")
    E.w(d + 1, "if _lv >= 3:")
    E.w(d + 2, "_cc.l2_misses += 1")
    E.w(d + 2, "if _lv >= 4:")
    E.w(d + 3, "_cc.l3_misses += 1")


def _emit_cache_probe(E, d, size, for_store):
    """Cache access + hierarchical miss accounting, mirroring the
    load/store handlers (loads also consume the extra latency ``_x``;
    stores drop it like the reference does).

    The non-straddling case inlines :meth:`CacheHierarchy.access`
    statement for statement (L1 probe, straddle-free, prefetcher
    advance, prefetch fills) against the hoisted ``_l1s``/``_l2a``/...
    locals — the access per se is a handful of list operations, so the
    method-call round trip and the (level, latency) tuple dominated the
    memory-bound kernels. A straddling access (rare) falls back to the
    real method."""
    E.need_cache = True
    w = E.w
    if for_store:
        w(d, "if _ch is not None:")
    else:
        w(d, "if _ch is None:")
        w(d + 1, f"_x = {E.K(_MEM_L1)}")
        w(d, "else:")
    b = d + 1
    w(b, "_cl = _a // 64")
    if size > 1:
        w(b, f"if (_a + {size - 1}) // 64 != _cl:")
        w(b + 1, f"_lv, _x = _ch.access(_a, {size})")
        _emit_miss_ladder(E, b + 1, )
        w(b, "else:")
        b += 1
    # Inline of CacheHierarchy.access for the single-line case; state
    # evolution is identical (same probes, same order).
    w(b, "_cs = _l1s[_cl % _l1n]")
    w(b, "if _cs and _cs[0] == _cl:")
    if not for_store:
        w(b + 1, f"_x = {E.K(_MEM_L1)}")
    else:
        w(b + 1, "pass")
    w(b, "elif _cl in _cs:")
    w(b + 1, "_cs.insert(0, _cs.pop(_cs.index(_cl)))")
    if not for_store:
        w(b + 1, f"_x = {E.K(_MEM_L1)}")
    w(b, "else:")
    w(b + 1, "if len(_cs) >= _l1a:")
    w(b + 2, "_cs.pop()")
    w(b + 1, "_cs.insert(0, _cl)")
    w(b + 1, "if _l2a(_cl):")
    w(b + 2, "_lv = 2")
    w(b + 1, "elif _l3a(_cl):")
    w(b + 2, "_lv = 3")
    w(b + 1, "else:")
    w(b + 2, "_lv = 4")
    if not for_store:
        w(b + 1, f"_x = {E.K(_CACHE_LATENCY)}[_lv]")
    _emit_miss_ladder(E, b + 1)
    # Inline of StreamPrefetcher.advance + the prefetch fills.
    w(b, "if _pfo is not None:")
    p = b + 1
    w(p, "_pfo._clock += 1")
    w(p, "_st = _pfo._streams")
    w(p, "_mt = _st.index(_cl) if _cl in _st else -1")
    w(p, "_pv = _cl - 1")
    w(p, "if _pv in _st:")
    w(p + 1, "_j = _st.index(_pv)")
    w(p + 1, "if _mt < 0 or _j < _mt:")
    w(p + 2, "_mt = _j")
    w(p, "if _mt >= 0:")
    w(p + 1, "_st[_mt] = _cl + 1")
    w(p + 1, "_pfo._last_used[_mt] = _pfo._clock")
    w(p + 1, "_dp = _pfo.depth")
    w(p + 1, "_ch.prefetches += _dp")
    w(p + 1, "for _fk in range(1, _dp + 1):")
    w(p + 2, "_fl = _cl + _fk")
    w(p + 2, "_fs = _l1s[_fl % _l1n]")
    w(p + 2, "if _fs and _fs[0] == _fl:")
    w(p + 3, "continue")
    w(p + 2, "if _fl in _fs:")
    w(p + 3, "_fs.insert(0, _fs.pop(_fs.index(_fl)))")
    w(p + 3, "continue")
    w(p + 2, "if len(_fs) >= _l1a:")
    w(p + 3, "_fs.pop()")
    w(p + 2, "_fs.insert(0, _fl)")
    w(p + 2, "if not _l2a(_fl):")
    w(p + 3, "_l3a(_fl)")
    w(p, "else:")
    w(p + 1, "_lu = _pfo._last_used")
    w(p + 1, "_vt = _lu.index(min(_lu))")
    w(p + 1, "_st[_vt] = _cl + 1")
    w(p + 1, "_lu[_vt] = _pfo._clock")


def _emit_record(E, d, inst, dst, rv, costs, rtp):
    """Emit one body record, mirroring the decoded handler for the
    instruction class statement for statement. Raises
    :class:`_Unsupported` for anything outside the compiled subset
    (raiser records, declaration calls, unknown classes)."""
    w = E.w
    t = E.with_timing
    opcode = inst.opcode
    ty = inst.type
    static = _compute_static(inst, costs)
    uops, isv = static[2], static[1]

    if isinstance(inst, BinaryInst):
        port = costs.ports.get(opcode)
        pa, pb = rv(inst.operands[0]), rv(inst.operands[1])
        a, b = E.oexpr(pa), E.oexpr(pb)
        elem = ty.elem if ty.is_vector else ty
        if elem.is_float:
            def sfn(x, y):
                return _scalar_float_expr(E, opcode, x, y, elem.bits)
        else:
            def sfn(x, y):
                return _scalar_int_expr(E, opcode, x, y, elem.width)
        if ty.is_vector:
            w(d, f"_a = {a}")
            w(d, f"_b = {b}")
            lanes = ", ".join(sfn(f"_a[{j}]", f"_b[{j}]")
                              for j in range(ty.count))
            w(d, f"regs[{dst}] = ({lanes},)")
            lat = costs.vector_latency(opcode, elem)
        else:
            w(d, f"regs[{dst}] = {sfn(a, b)}")
            lat = costs.scalar_latency(opcode)
        if t:
            E.issue(d, E.K(lat), (E.texpr(pa), E.texpr(pb)), None,
                    uops, isv, port, rtp)
            w(d, f"times[{dst}] = _d")
        return

    if isinstance(inst, ICmpInst):
        port = costs.ports.get(opcode)
        pa, pb = rv(inst.operands[0]), rv(inst.operands[1])
        a, b = E.oexpr(pa), E.oexpr(pb)
        oty = inst.lhs.type
        if oty.is_vector:
            width = T.bitwidth(oty.elem) if not oty.elem.is_float else 64
            w(d, f"_a = {a}")
            w(d, f"_b = {b}")
            lanes = ", ".join(
                _icmp_scalar_expr(E, inst.pred, f"_a[{j}]", f"_b[{j}]",
                                  width)
                for j in range(ty.count))
            w(d, f"regs[{dst}] = ({lanes},)")
            lat = costs.vector_latency("icmp")
        else:
            width = T.bitwidth(oty)
            w(d, f"regs[{dst}] = "
                 f"{_icmp_scalar_expr(E, inst.pred, a, b, width)}")
            lat = costs.scalar_latency("icmp")
        if t:
            E.issue(d, E.K(lat), (E.texpr(pa), E.texpr(pb)), None,
                    uops, isv, port, rtp)
            w(d, f"times[{dst}] = _d")
        return

    if isinstance(inst, FCmpInst):
        port = costs.ports.get(opcode)
        pa, pb = rv(inst.operands[0]), rv(inst.operands[1])
        a, b = E.oexpr(pa), E.oexpr(pb)
        if inst.lhs.type.is_vector:
            w(d, f"_a = {a}")
            w(d, f"_b = {b}")
            lanes = ", ".join(
                _fcmp_scalar_expr(E, inst.pred, f"_a[{j}]", f"_b[{j}]")
                for j in range(ty.count))
            w(d, f"regs[{dst}] = ({lanes},)")
            lat = costs.vector_latency("fcmp")
        else:
            w(d, f"regs[{dst}] = "
                 f"{_fcmp_scalar_expr(E, inst.pred, a, b)}")
            lat = costs.scalar_latency("fcmp")
        if t:
            E.issue(d, E.K(lat), (E.texpr(pa), E.texpr(pb)), None,
                    uops, isv, port, rtp)
            w(d, f"times[{dst}] = _d")
        return

    if isinstance(inst, CastInst):
        port = costs.ports.get(opcode)
        p = rv(inst.value)
        v = E.oexpr(p)
        src = inst.value.type

        def cast_expr(x, se, te):
            # Inline the common casts (exactly _cast_scalar's
            # arithmetic); the rare ones dispatch to the helper.
            if opcode == "zext":
                return f"int({x})"
            if opcode in ("trunc", "ptrtoint"):
                return f"int({x}) & {(1 << te.width) - 1}"
            if opcode == "inttoptr":
                return f"int({x}) & {_MASK64}"
            if opcode == "fpext":
                return f"float({x})"
            if opcode == "sext":
                ts = E.KI(_to_signed)
                return (f"{ts}(int({x}), {se.width}) & "
                        f"{(1 << te.width) - 1}")
            cs = E.KI(_cast_scalar)
            return f"{cs}({opcode!r}, {x}, {E.KI(se)}, {E.KI(te)})"

        if ty.is_vector:
            w(d, f"_v = {v}")
            lanes = ", ".join(cast_expr(f"_v[{j}]", src.elem, ty.elem)
                              for j in range(ty.count))
            w(d, f"regs[{dst}] = ({lanes},)")
            lat = costs.vector_latency(opcode)
        else:
            w(d, f"regs[{dst}] = {cast_expr(v, src, ty)}")
            lat = costs.scalar_latency(opcode)
        if t:
            E.issue(d, E.K(lat), (E.texpr(p),), None, uops, isv, port, rtp)
            w(d, f"times[{dst}] = _d")
        return

    if isinstance(inst, LoadInst):
        pp = rv(inst.ptr)
        size = T.sizeof(ty)
        lat = (costs.vector_latency("load") if ty.is_vector
               else costs.scalar_latency("load"))
        port = costs.ports.get("load")
        E.need_mem = True
        mf = E.KI(MemoryFault)
        w(d, f"_a = {E.oexpr(pp)}")
        if ty.is_vector:
            w(d, f"regs[{dst}] = _mem.load_value({E.KI(ty)}, _a)")
        elif ty.is_float:
            uf = E.K(_Struct(_FLOAT_FMT[ty.bits]).unpack_from)
            w(d, f"_e = _a + {size}")
            w(d, f"if {HEAP_BASE} <= _a and _e <= _mem.heap_top:")
            w(d + 1, f"regs[{dst}] = {uf}(_mem._heap, _a - {HEAP_BASE})[0]")
            w(d, f"elif {STACK_BASE} <= _a and _e <= _mem.stack_top:")
            w(d + 1,
              f"regs[{dst}] = {uf}(_mem._stack, _a - {STACK_BASE})[0]")
            w(d, "else:")
            w(d + 1, f"raise {mf}(_a, {size}, False)")
        else:
            mask = ((1 << ty.width) - 1) if ty.is_int and ty.width % 8 != 0 \
                else 0
            if size == 1:
                # Single-byte load: indexing a bytearray yields the int
                # directly — same value as int.from_bytes of the
                # one-byte slice, without the slice allocation.
                heap_v = f"_mem._heap[_a - {HEAP_BASE}]"
                stack_v = f"_mem._stack[_a - {STACK_BASE}]"
            else:
                fb = E.KI(_FROM_BYTES)
                heap_v = (f"{fb}(_mem._heap[_o:_o + {size}], 'little')")
                stack_v = (f"{fb}(_mem._stack[_o:_o + {size}], 'little')")
            w(d, f"_e = _a + {size}")
            w(d, f"if {HEAP_BASE} <= _a and _e <= _mem.heap_top:")
            if size != 1:
                w(d + 1, f"_o = _a - {HEAP_BASE}")
            w(d + 1, f"_v = {heap_v}")
            w(d, f"elif {STACK_BASE} <= _a and _e <= _mem.stack_top:")
            if size != 1:
                w(d + 1, f"_o = _a - {STACK_BASE}")
            w(d + 1, f"_v = {stack_v}")
            w(d, "else:")
            w(d + 1, f"raise {mf}(_a, {size}, False)")
            if mask:
                w(d, f"regs[{dst}] = _v & {mask}")
            else:
                w(d, f"regs[{dst}] = _v")
        _emit_cache_probe(E, d, size, for_store=False)
        if t:
            E.issue(d, E.K(lat), (E.texpr(pp),), "_x", uops, isv, port, rtp)
            w(d, f"times[{dst}] = _d")
        return

    if isinstance(inst, StoreInst):
        pv, pp = rv(inst.value), rv(inst.ptr)
        vty = inst.value.type
        size = T.sizeof(vty)
        lat = (costs.vector_latency("store") if vty.is_vector
               else costs.scalar_latency("store"))
        port = costs.ports.get("store")
        E.need_mem = True
        mf = E.KI(MemoryFault)
        w(d, f"_a = {E.oexpr(pp)}")
        w(d, f"_v = {E.oexpr(pv)}")
        if vty.is_vector:
            w(d, f"_mem.store_value({E.KI(vty)}, _a, _v)")
        elif vty.is_float:
            pf = E.K(_Struct(_FLOAT_FMT[vty.bits]).pack_into)
            w(d, f"_e = _a + {size}")
            w(d, f"if {HEAP_BASE} <= _a and _e <= _mem.heap_top:")
            w(d + 1, f"{pf}(_mem._heap, _a - {HEAP_BASE}, _v)")
            w(d, f"elif {STACK_BASE} <= _a and _e <= _mem.stack_top:")
            w(d + 1, f"{pf}(_mem._stack, _a - {STACK_BASE}, _v)")
            w(d, "else:")
            w(d + 1, f"raise {mf}(_a, {size}, True)")
        else:
            smask = (1 << (size * 8)) - 1
            w(d, f"_raw = (int(_v) & {smask}).to_bytes({size}, 'little')")
            w(d, f"_e = _a + {size}")
            w(d, f"if {HEAP_BASE} <= _a and _e <= _mem.heap_top:")
            w(d + 1, f"_o = _a - {HEAP_BASE}")
            w(d + 1, f"_mem._heap[_o:_o + {size}] = _raw")
            w(d, f"elif {STACK_BASE} <= _a and _e <= _mem.stack_top:")
            w(d + 1, f"_o = _a - {STACK_BASE}")
            w(d + 1, f"_mem._stack[_o:_o + {size}] = _raw")
            w(d, "else:")
            w(d + 1, f"raise {mf}(_a, {size}, True)")
        _emit_cache_probe(E, d, size, for_store=True)
        if t:
            E.issue(d, E.K(lat), (E.texpr(pv), E.texpr(pp)), None,
                    uops, isv, port, rtp)
        return

    if isinstance(inst, AllocaInst):
        size = T.sizeof(inst.allocated_type) * inst.count
        lat = costs.scalar_latency("alloca")
        port = costs.ports.get("alloca")
        E.need_mem = True
        w(d, f"regs[{dst}] = _mem.stack_alloc({size})")
        if t:
            E.issue(d, E.K(lat), (), None, uops, isv, port, rtp)
            w(d, f"times[{dst}] = _d")
        return

    if isinstance(inst, GepInst):
        pp, pi = rv(inst.ptr), rv(inst.index)
        esize = T.sizeof(inst.elem_type)
        ity = inst.index.type
        port = costs.ports.get("gep")
        if ty.is_vector:
            iw = ity.elem.width if ity.is_vector else ity.width
            vec_idx = ity.is_vector
            vec_ptr = inst.ptr.type.is_vector
            lat = costs.vector_latency("gep")
            ts = E.KI(_to_signed)
            w(d, f"_b = {E.oexpr(pp)}")
            w(d, f"_x = {E.oexpr(pi)}")
            lanes = []
            for j in range(ty.count):
                be = f"_b[{j}]" if vec_ptr else "_b"
                ie = f"_x[{j}]" if vec_idx else "_x"
                lanes.append(f"(({be} + {ts}({ie}, {iw}) * {esize}) "
                             f"& {_MASK64})")
            w(d, f"regs[{dst}] = ({', '.join(lanes)},)")
        else:
            iw = ity.width
            lat = costs.scalar_latency("gep")
            w(d, f"_b = {E.oexpr(pp)}")
            w(d, f"_x = {E.oexpr(pi)} & {(1 << iw) - 1}")
            w(d, f"if _x >= {1 << (iw - 1)}:")
            w(d + 1, f"_x -= {1 << iw}")
            w(d, f"regs[{dst}] = (_b + _x * {esize}) & {_MASK64}")
        if t:
            E.issue(d, E.K(lat), (E.texpr(pp), E.texpr(pi)), None,
                    uops, isv, port, rtp)
            w(d, f"times[{dst}] = _d")
        return

    if isinstance(inst, SelectInst):
        pc, pt, pf2 = rv(inst.cond), rv(inst.tval), rv(inst.fval)
        lat = (costs.vector_latency("select") if ty.is_vector
               else costs.scalar_latency("select"))
        port = costs.ports.get("select")
        w(d, f"_c = {E.oexpr(pc)}")
        w(d, f"_t = {E.oexpr(pt)}")
        w(d, f"_f = {E.oexpr(pf2)}")
        if inst.cond.type.is_vector:
            lanes = ", ".join(f"(_t[{j}] if _c[{j}] else _f[{j}])"
                              for j in range(ty.count))
            w(d, f"regs[{dst}] = ({lanes},)")
        else:
            w(d, f"regs[{dst}] = _t if _c else _f")
        if t:
            E.issue(d, E.K(lat), (E.texpr(pc), E.texpr(pt), E.texpr(pf2)),
                    None, uops, isv, port, rtp)
            w(d, f"times[{dst}] = _d")
        return

    if isinstance(inst, ExtractElementInst):
        pv, pi = rv(inst.vec), rv(inst.index)
        lat = costs.vector_latency("extractelement")
        port = costs.ports.get("extractelement")
        mf = E.KI(MemoryFault)
        w(d, f"_v = {E.oexpr(pv)}")
        w(d, f"_ix = {E.oexpr(pi)}")
        w(d, "if not 0 <= _ix < len(_v):")
        w(d + 1, f"raise {mf}(_ix, 0)")
        w(d, f"regs[{dst}] = _v[_ix]")
        if t:
            E.issue(d, E.K(lat), (E.texpr(pv), E.texpr(pi)), None,
                    uops, isv, port, rtp)
            w(d, f"times[{dst}] = _d")
        return

    if isinstance(inst, InsertElementInst):
        pv, pe, pi = rv(inst.vec), rv(inst.elem), rv(inst.index)
        lat = costs.vector_latency("insertelement")
        port = costs.ports.get("insertelement")
        mf = E.KI(MemoryFault)
        w(d, f"_v = list({E.oexpr(pv)})")
        w(d, f"_el = {E.oexpr(pe)}")
        w(d, f"_ix = {E.oexpr(pi)}")
        w(d, "if not 0 <= _ix < len(_v):")
        w(d + 1, f"raise {mf}(_ix, 0)")
        w(d, "_v[_ix] = _el")
        w(d, f"regs[{dst}] = tuple(_v)")
        if t:
            E.issue(d, E.K(lat), (E.texpr(pv), E.texpr(pe), E.texpr(pi)),
                    None, uops, isv, port, rtp)
            w(d, f"times[{dst}] = _d")
        return

    if isinstance(inst, ShuffleVectorInst):
        p1, p2 = rv(inst.v1), rv(inst.v2)
        lat = costs.vector_latency("shufflevector")
        port = costs.ports.get("shufflevector")
        w(d, f"_j = tuple({E.oexpr(p1)}) + tuple({E.oexpr(p2)})")
        lanes = ", ".join(f"_j[{m}]" for m in inst.mask)
        w(d, f"regs[{dst}] = ({lanes},)")
        if t:
            E.issue(d, E.K(lat), (E.texpr(p1), E.texpr(p2)), None,
                    uops, isv, port, rtp)
            w(d, f"times[{dst}] = _d")
        return

    if isinstance(inst, BroadcastInst):
        p = rv(inst.operands[0])
        lat = costs.vector_latency("broadcast")
        port = costs.ports.get(opcode)
        w(d, f"regs[{dst}] = ({E.oexpr(p)},) * {ty.count}")
        if t:
            E.issue(d, E.K(lat), (E.texpr(p),), None, uops, isv, port, rtp)
            w(d, f"times[{dst}] = _d")
        return

    if isinstance(inst, CallInst):
        callee = inst.callee
        if not callee.is_intrinsic:
            # Defined calls end segments (handled by the caller);
            # declaration calls are raiser records.
            raise _Unsupported(f"call to @{callee.name}")
        arg_ps = [rv(a) for a in inst.args]
        impl = E.K(_intrinsic_impl(callee.name, inst))
        lat = costs.intrinsic_latency(callee.name)
        port = costs.ports.get("call")
        if len(arg_ps) == 1:
            w(d, f"_v = {impl}(M, ({E.oexpr(arg_ps[0])},))")
        else:
            argl = ", ".join(E.oexpr(p) for p in arg_ps)
            w(d, f"_v = {impl}(M, [{argl}])")
        if dst >= 0:
            w(d, f"regs[{dst}] = _v")
        if t:
            E.issue(d, E.K(lat), [E.texpr(p) for p in arg_ps], None,
                    uops, isv, port, rtp)
            if dst >= 0:
                w(d, f"times[{dst}] = _d")
        return

    raise _Unsupported(f"record class {type(inst).__name__}")

def _emit_call_exit(E, d, db, k, s):
    """Suspend at the defined-call record ``k``: publish the count,
    register the call site, park the callee + evaluated args on the
    frame and return control 1 (the trampoline pushes the frame — its
    depth-limit HangError then unwinds through ``f.i``/``f.in_body``
    exactly like the record path's)."""
    arg_rs, _dst, cdfn, _lat, _uops, _isv, _port, site = db.call_meta[k]
    E.w(d, f"_i = {k}")
    E.w(d, f"executed += {k - E.exec_base + 1}")
    args = ", ".join(f"regs[{ss}]" if ss >= 0 else E.K(cc)
                     for ss, cc in arg_rs)
    ats = ", ".join(f"times[{ss}]" if ss >= 0 else "0.0"
                    for ss, cc in arg_rs)
    E.w(d, f"_ca = [{args}]")
    E.w(d, f"_ct = [{ats}]")
    E.w(d, "M._executed = executed")
    E.w(d, f"M._call_sites.append({E.K(site)})")
    E.w(d, f"f.i = {k}")
    E.w(d, f"f.pending_call = ({E.KI(cdfn)}, _ca, _ct)")
    E.writeback(d)
    E.w(d, "return executed, 1")


#: Opcodes that can never raise for any operand values the type system
#: admits: no division (ArithmeticFault), no memory traffic
#: (MemoryFault), no float->int casts (int(nan) raises). A call to a
#: single-block callee made only of these is inlined at the call site.
_PURE_OPCODES = frozenset({
    "add", "sub", "mul", "and", "or", "xor", "shl", "lshr", "ashr",
    "fadd", "fsub", "fmul", "icmp", "fcmp", "select",
    "zext", "sext", "trunc", "fpext", "bitcast", "sitofp", "uitofp",
    "ptrtoint", "inttoptr",
})


def _leaf_inline_info(cdfn, globals_addr, costs, rtp, with_timing):
    """Inline plan for a defined callee, or None when it must stay a
    real frame push: single supported block, RET/RET_VOID terminator,
    no nested calls, and every record both pure (cannot raise — see
    :data:`_PURE_OPCODES`) and emittable. Purity is what makes the
    expansion safe: with no exception possible between the depth check
    and the return, none of the frame-stack bookkeeping a real push
    maintains for the unwinder is observable."""
    try:
        if len(cdfn.blocks) != 1:
            return None
        cdb = cdfn.blocks[0]
        if cdb.term_kind not in (_T_RET, _T_RET_VOID):
            return None
        if any(cm is not None for cm in cdb.call_meta):
            return None
        crecords, cterm = _block_records(cdfn.fn.blocks[0])
        if cterm is None or len(crecords) != cdb.n:
            return None
        for r in crecords:
            if r.opcode not in _PURE_OPCODES:
                return None
        cslot_map, cnslots = slot_layout(cdfn.fn)
        if cnslots != cdfn.nslots:
            return None
        crv = operand_resolver(cslot_map, globals_addr)
        # Probe-emit into a scratch emitter: a pure-but-unsupported
        # record keeps the call on the real push path without dragging
        # the caller's block off the compiled path.
        scratch = _Emitter({}, {}, with_timing)
        for r in crecords:
            _emit_record(scratch, 1, r, cslot_map.get(id(r), -1), crv,
                         costs, rtp)
        return (crecords, cslot_map, crv, cnslots, cdb)
    except (_Unsupported, _Undecodable):
        return None


def _emit_leaf_call(E, d, db, k, s, leaf, costs, rtp):
    """Inline the defined call at record ``k``. The guard falls back to
    the generic suspend (real frame push) whenever any of the inline's
    preconditions fail at runtime: a fault campaign is active (the
    callee may be an injection target), the push would trip the depth
    limit (push_frame raises the HangError), or the budget could expire
    inside the callee (the callee's record path raises at the exact
    instruction). The fast arm replays the real path's observable
    effects in order: callee records, callee block counters, ret issue,
    then the caller's call-record issue — same TimingModel and counter
    evolution, no Frame, no driver round trip."""
    arg_rs, dst, cdfn, lat, uops, isv, port, _site = db.call_meta[k]
    crecords, cslot_map, crv, cnslots, cdb = leaf
    t = E.with_timing
    span = (k - E.exec_base + 1) + (cdb.n + 1)
    E.w(d, "if (M._fault_active or M._depth >= M.config.max_call_depth"
           f" or executed + {span} > maxi):")
    if E.region_mode:
        # Region blocks set f.block lazily (only exits need it); a real
        # suspend is such an exit — the driver's return epilogue reads
        # call_meta through f.block and resumes at segment (bi, k+1).
        E.w(d + 1, f"f.block = {E.KI(db)}")
        E.w(d + 1, "f.in_body = True")
    _emit_call_exit(E, d + 1, db, k, s)
    # Fast arm (the suspend above returned): count the caller records,
    # the call record, and the whole callee up front — the real path
    # publishes the same total by the time anything can observe it.
    E.w(d, f"executed += {span}")
    E.w(d, "M._executed = executed")
    for j, (ss, cc) in enumerate(arg_rs):
        E.w(d, f"_a{j} = " + (f"regs[{ss}]" if ss >= 0 else E.K(cc)))
        if t:
            E.w(d, f"_t{j} = " + (f"times[{ss}]" if ss >= 0 else "0.0"))
    E.w(d, "_or = regs")
    E.w(d, f"regs = [None] * {cnslots}")
    if t:
        E.w(d, "_ot = times")
        E.w(d, f"times = [0.0] * {cnslots}")
    for j in range(len(arg_rs)):
        E.w(d, f"regs[{j}] = _a{j}")
        if t:
            E.w(d, f"times[{j}] = _t{j}")
    for ck in range(cdb.n):
        _emit_record(E, d, crecords[ck],
                     cslot_map.get(id(crecords[ck]), -1), crv, costs, rtp)
    for key, val in cdb.full_pairs:
        if E.region_mode:
            E.w(d, f"{E.ctr(key)} += {val}")
        else:
            E.w(d, f"cd[{key!r}] += {val}")
    if cdb.opcode_items:
        E.w(d, "if byop:")
        E.w(d + 1, "_bo = M.counters.by_opcode")
        for op, cnt in cdb.opcode_items:
            E.w(d + 1, f"_bo[{op!r}] = _bo.get({op!r}, 0) + {cnt}")
    if cdb.term_kind == _T_RET:
        rs_, rc_, rlat, ruops = cdb.term
        if t:
            E.issue(d, E.K(rlat),
                    (f"times[{rs_}]" if rs_ >= 0 else None,), None,
                    ruops, False, None, rtp)
        E.w(d, "_crv = " + (f"regs[{rs_}]" if rs_ >= 0 else E.K(rc_)))
    else:  # _T_RET_VOID
        rlat, ruops = cdb.term
        if t:
            E.issue(d, E.K(rlat), (), None, ruops, False, None, rtp)
        E.w(d, "_crv = None")
    E.w(d, "regs = _or")
    if t:
        E.w(d, "times = _ot")
    if t:
        E.issue(d, E.K(lat),
                [f"_t{j}" if arg_rs[j][0] >= 0 else None
                 for j in range(len(arg_rs))],
                None, uops, isv, port, rtp)
    if dst >= 0:
        E.w(d, f"regs[{dst}] = _crv")
        if t:
            E.w(d, f"times[{dst}] = _d")
    E.exec_base = k + 1
    E.inlined = True


def _emit_span(E, d, db, records, start, seg_s, rv, slot_map, costs,
               seg_lookup, bi_of, rtp, leaf_of):
    """Emit the block body from record ``start`` through the
    terminator: plain records, then at each defined call either the
    generic suspend (boundary for the next segment) or — for inlinable
    leaf callees — the guarded inline expansion, after which emission
    continues in place to the next boundary."""
    calls = [k for k, cm in enumerate(db.call_meta) if cm is not None]
    nxt = next((kk for kk in calls if kk >= start), None)
    end = nxt if nxt is not None else db.n
    for k in range(start, end):
        E.w(d, f"_i = {k}")
        _emit_record(E, d, records[k], slot_map.get(id(records[k]), -1),
                     rv, costs, rtp)
        E.mark(k + 1)
    if nxt is None:
        _emit_terminator(E, d, db, seg_s, costs, seg_lookup, bi_of, rtp)
        return
    E.w(d, f"_i = {nxt}")
    leaf = leaf_of(db.call_meta[nxt][2])
    if leaf is None:
        if E.region_mode:
            E.w(d, f"f.block = {E.KI(db)}")
            E.w(d, "f.in_body = True")
        _emit_call_exit(E, d, db, nxt, seg_s)
        return
    _emit_leaf_call(E, d, db, nxt, seg_s, leaf, costs, rtp)
    E.mark(nxt + 1)
    _emit_span(E, d, db, records, nxt + 1, seg_s, rv, slot_map, costs,
               seg_lookup, bi_of, rtp, leaf_of)


def _precheck_span(db, s, leaf_of):
    """Worst-case ``executed`` growth of the span starting at record
    ``s``: records through the next real suspend (or the terminator),
    plus the full body+ret of every leaf call inlined along the way.
    Used in the entry budget precheck so an inlined span can never run
    past ``maxi`` — near exhaustion the precheck bails to the record
    path (control 3), which raises at the exact instruction."""
    extra = 0
    for k in range(s, db.n):
        cm = db.call_meta[k]
        if cm is None:
            continue
        leaf = leaf_of(cm[2])
        if leaf is None:
            return extra + (k - s + 1)
        extra += leaf[4].n + 1
    return extra + (db.n - s + 1)


def _timing_hoists(E) -> List[str]:
    hoists = [
        "_tm = timing",
        "_ti = _tm.issue_time",
        "_tr = _tm._retire_frontier",
        "_rob = _tm._rob",
        "_rpop = _rob.popleft",
        "_rapp = _rob.append",
        "_pf = _tm._port_free",
        "_pfg = _pf.get",
        "_robsz = _tm.rob_size",
        "_iw = _tm.issue_width",
    ]
    if E.uses_bmp:
        hoists.append("_bmp = _tm.branch_miss_penalty")
    for u in sorted(E.uops_used):
        hoists.append(f"_q{u} = {u} / _iw")
    return hoists


#: Hoisted by any segment/region with a conditional branch (the inlined
#: gshare update reads these every iteration).
_PRED_HOISTS = (
    "_pcs = M._branch_pcs",
    "_bp = M.predictor",
    "_bpc = _bp.counters",
    "_bpm = _bp.mask",
)

#: Hoisted by any segment/region with a load or store: the inlined
#: cache probe's working set (see :func:`_emit_cache_probe`). The
#: nested lines carry their own indentation on top of the splice depth.
_CACHE_HOISTS = (
    "_ch = M.cache",
    "if _ch is not None:",
    "    _l1 = _ch.l1",
    "    _l1s = _l1._sets",
    "    _l1n = _l1.num_sets",
    "    _l1a = _l1.assoc",
    "    _l2a = _ch.l2.access",
    "    _l3a = _ch.l3.access",
    "    _pfo = _ch.prefetcher",
)


def _emit_branch_arm(E, d, cur_db, succ_db, seg_lookup, bi_of):
    """One branch arm: inline the successor's phi moves for this edge,
    then jump within the region (region mode, successor in-region),
    thread straight to the successor's first segment, or hand back to
    the trampoline's generic stage (control 2) when the successor has
    no segment or the edge has no pre-resolved move list (the generic
    stage reproduces the reference KeyError)."""
    tbi = bi_of[id(succ_db)]
    tgt = seg_lookup(tbi, 0)
    moves = None
    edge_ok = True
    if succ_db.phi_moves is not None:
        moves = succ_db.phi_moves.get(cur_db)
        if moves is None:
            edge_ok = False
    if tgt is None or not edge_ok:
        E.w(d, f"f.prev = {E.KI(cur_db)}")
        E.w(d, f"f.block = {E.KI(succ_db)}")
        E.w(d, "f.phis_pending = True")
        E.w(d, "f.in_body = False")
        E.w(d, "f.i = 0")
        E.writeback(d)
        E.w(d, "return executed, 2")
        return
    if moves:
        dsts = {m[0] for m in moves}
        srcs = {m[1] for m in moves if m[1] >= 0}
        if dsts & srcs:
            # Parallel moves: stage every read before any write (phi
            # semantics — a swapped pair must not see its own update).
            for j, (_mdst, ms, mc) in enumerate(moves):
                E.w(d, f"_p{j} = " + (f"regs[{ms}]" if ms >= 0
                                      else E.K(mc)))
                E.w(d, f"_u{j} = " + (f"times[{ms}]" if ms >= 0
                                      else "0.0"))
            for j, (mdst, _ms, _mc) in enumerate(moves):
                E.w(d, f"regs[{mdst}] = _p{j}")
                E.w(d, f"times[{mdst}] = _u{j}")
        else:
            # No destination feeds another move's source: write
            # directly, skipping the staging temporaries.
            for mdst, ms, mc in moves:
                E.w(d, f"regs[{mdst}] = " + (f"regs[{ms}]" if ms >= 0
                                             else E.K(mc)))
                E.w(d, f"times[{mdst}] = " + (f"times[{ms}]" if ms >= 0
                                              else "0.0"))
    if E.region_mode and tbi in E.region_bis:
        # Intra-region edge: accumulate this block's issue totals and
        # jump through the dispatch loop — no trampoline round-trip.
        if E.with_timing:
            E.w(d, f"_nis += {E.pend_issued}")
            E.w(d, f"_nuo += {E.pend_uops}")
        E.w(d, f"_b = {tbi}")
        E.w(d, "continue")
        return
    E.writeback(d)
    E.uses_sg = True
    E.w(d, f"return executed, _sg[{tgt}]")


def _emit_terminator(E, d, db, s, costs, seg_lookup, bi_of, rtp):
    """Block completion: static-counter flush as literal increments,
    then the decoded terminator — mirroring the trampoline's record
    path (the budget precheck at segment entry already covered the
    terminator's increment)."""
    t = E.with_timing
    E.w(d, f"executed += {db.n - E.exec_base + 1}")
    for key, val in db.full_pairs:
        if E.region_mode:
            E.w(d, f"{E.ctr(key)} += {val}")
        else:
            E.w(d, f"cd[{key!r}] += {val}")
    if db.opcode_items:
        E.w(d, "if byop:")
        E.w(d + 1, "_bo = M.counters.by_opcode")
        for op, cnt in db.opcode_items:
            E.w(d + 1, f"_bo[{op!r}] = _bo.get({op!r}, 0) + {cnt}")
    kind = db.term_kind
    if kind == _T_BR:
        succ, lat = db.term
        if t:
            E.issue(d, E.K(lat), (), None, 1, False, None, rtp)
        _emit_branch_arm(E, d, db, succ, seg_lookup, bi_of)
        return
    if kind == _T_CONDBR:
        cs, cc, tb, eb, inst, lat = db.term
        cond = f"regs[{cs}]" if cs >= 0 else E.K(cc)
        E.w(d, f"_tk = True if {cond} else False")
        pckey = E.K(id(inst))
        E.uses_pred = True
        E.w(d, f"_pc = _pcs.get({pckey})")
        E.w(d, "if _pc is None:")
        E.w(d + 1, "_pc = M._next_pc")
        E.w(d + 1, "M._next_pc = _pc + 1")
        E.w(d + 1, f"_pcs[{pckey}] = _pc")
        # Inline GSharePredictor.predict_and_update: same index/counter/
        # history evolution, minus the method-call round trip.
        E.w(d, "_bh = _bp.history")
        E.w(d, "_bx = (_pc ^ _bh) & _bpm")
        E.w(d, "_bc = _bpc[_bx]")
        E.w(d, "_cor = (_bc >= 2) == _tk")
        E.w(d, "_bp.predictions += 1")
        E.w(d, "if not _cor:")
        E.w(d + 1, "_bp.misses += 1")
        E.w(d, "if _tk:")
        E.w(d + 1, "if _bc < 3:")
        E.w(d + 2, "_bpc[_bx] = _bc + 1")
        E.w(d + 1, "_bp.history = ((_bh << 1) | 1) & _bpm")
        E.w(d, "else:")
        E.w(d + 1, "if _bc > 0:")
        E.w(d + 2, "_bpc[_bx] = _bc - 1")
        E.w(d + 1, "_bp.history = (_bh << 1) & _bpm")
        if t:
            E.issue(d, E.K(lat),
                    (f"times[{cs}]" if cs >= 0 else None,), None,
                    1, False, None, rtp)
            E.uses_bmp = True
            E.w(d, "if not _cor:")
            E.w(d + 1, "cd['branch_misses'] += 1")
            # Inline TimingModel.branch_mispredict(resolve=_d).
            E.w(d + 1, "_r = _d + _bmp")
            E.w(d + 1, "if _r > _ti:")
            E.w(d + 2, "_ti = _r")
        else:
            E.w(d, "if not _cor:")
            E.w(d + 1, "cd['branch_misses'] += 1")
        E.w(d, "if _tk:")
        _emit_branch_arm(E, d + 1, db, tb, seg_lookup, bi_of)
        _emit_branch_arm(E, d, db, eb, seg_lookup, bi_of)
        return
    if kind == _T_RET:
        rs, rc, lat, uops = db.term
        if t:
            E.issue(d, E.K(lat),
                    (f"times[{rs}]" if rs >= 0 else None,), None,
                    uops, False, None, rtp)
        E.w(d, "f.rv = " + (f"regs[{rs}]" if rs >= 0 else E.K(rc)))
        E.writeback(d)
        E.w(d, "return executed, None")
        return
    # _T_RET_VOID
    lat, uops = db.term
    if t:
        E.issue(d, E.K(lat), (), None, uops, False, None, rtp)
    E.w(d, "f.rv = None")
    E.writeback(d)
    E.w(d, "return executed, None")


def _emit_block_segments(db, records, rv, slot_map, costs, consts, seen,
                         with_timing, seg_lookup, bi, bi_of, rtp, leaf_of,
                         skip_entry=False):
    """Emit every segment of one block. Returns (source lines,
    [(boundary, fname), ...]). Raises :class:`_Unsupported` /
    ``_Undecodable`` if any record falls outside the compiled subset.
    ``skip_entry`` omits the boundary-0 segment (used for region blocks
    whose entry is the region trampoline but whose inlined calls still
    need post-call resume segments)."""
    calls = [k for k, cm in enumerate(db.call_meta) if cm is not None]
    out: List[str] = []
    metas: List[Tuple[int, str]] = []
    starts = [k + 1 for k in calls]
    if not skip_entry:
        starts = [0] + starts
    for s in starts:
        E = _Emitter(consts, seen, with_timing)
        E.reset_block(s)
        fname = f"_s{seg_lookup(bi, s)}"
        blkc = E.KI(db)
        E.w(1, f"f.block = {blkc}")
        E.w(1, "f.in_body = True")
        E.w(1, f"f.i = {s}")
        E.w(1, f"if executed + {_precheck_span(db, s, leaf_of)} > maxi:")
        E.w(2, "return executed, 3")
        E.w(1, f"_i = {s}")
        hoist_at = len(E.lines)
        E.w(1, "try:")
        _emit_span(E, 2, db, records, s, s, rv, slot_map, costs,
                   seg_lookup, bi_of, rtp, leaf_of)
        E.w(1, "except BaseException:")
        E.w(2, "f.i = _i")
        if with_timing and E.pend_issued:
            # Restore the exact timing state at the raising record: all
            # prior records issued exactly once, the raiser did not.
            # (Inlined leaf calls break the one-issue-per-record
            # identity; the flush tables carry the true prefix sums.)
            E.w(2, "_tm.issue_time = _ti")
            E.w(2, "_tm.finish_time = _tr")
            E.w(2, "_tm._retire_frontier = _tr")
            if E.inlined:
                E.w(2, f"_tm.issued += {tuple(E.cum_issued)!r}[_i - {s}]")
            else:
                E.w(2, f"_tm.issued += _i - {s}")
            E.w(2, f"_tm.uops_issued += {tuple(E.cum_uops)!r}[_i - {s}]")
        # The trampoline's local count is stale once we raise; publish
        # the prior records + the raising one (counted-before-executed),
        # like the record loop's running `executed` would be.
        if E.inlined:
            E.w(2, f"_ex = executed + {tuple(E.rec_adj)!r}[_i - {s}] + 1")
        else:
            E.w(2, f"_ex = executed + (_i - {s}) + 1")
        E.w(2, "if _ex > M._executed:")
        E.w(3, "M._executed = _ex")
        E.w(2, "raise")
        hoists = []
        if with_timing and E.pend_issued:
            hoists += _timing_hoists(E)
        if E.need_mem:
            hoists.append("_mem = M.memory")
        if E.need_cache:
            hoists += _CACHE_HOISTS
        if E.uses_pred:
            hoists += _PRED_HOISTS
        E.lines[hoist_at:hoist_at] = ["    " + h for h in hoists]
        params = "".join(f", {n}={n}" for n in E.used)
        sg = ", _sg=_sg" if E.uses_sg else ""
        out.append(f"def {fname}(M, f, regs, times, executed, timing, "
                   f"maxi, cd, byop{sg}{params}):")
        out.extend(E.lines)
        out.append("")
        metas.append((s, fname))
    return out, metas


def _emit_region(dfn, region_bis, supported, rv, slot_map, costs, consts,
                 seen, with_timing, seg_lookup, bi_of, rtp, rname, leaf_of):
    """Emit the function's region closure: every supported block whose
    defined calls (if any) are all leaf-inlinable, compiled into one
    ``while True`` dispatch loop keyed on the block index ``_b``.
    Intra-region branches become phi moves plus ``_b = <target>;
    continue`` — no trampoline round-trip and no per-block
    flush/rehoist of the timing scalars, which is where the per-segment
    scheme spent most of its time on loopy code. Issued and uop totals
    of completed blocks accumulate in the runtime ``_nis`` / ``_nuo``
    locals (the path through the region is dynamic); the current
    block's totals stay static, exactly like a segment's.

    Returns the region's source lines. Exits use the same control
    protocol as segments; entry is via per-block trampolines the caller
    emits (so the driver's segment dispatch stays unchanged). A leaf
    call whose runtime guard fails suspends like a segment would; the
    caller emits boundary segments for such blocks so the driver can
    resume after the real call."""
    E = _Emitter(consts, seen, with_timing)
    E.region_bis = frozenset(region_bis)
    E.region_mode = True
    bmap: Dict[int, object] = {}
    cum_tables: Dict[int, tuple] = {}
    iss_tables: Dict[int, tuple] = {}
    adj_tables: Dict[int, tuple] = {}
    E.w(1, "_i = 0")
    if with_timing:
        E.w(1, "_nis = 0")
        E.w(1, "_nuo = 0")
    E.w(1, "%CTRINIT%")
    hoist_at = len(E.lines)
    E.w(1, "try:")
    E.w(2, "while True:")
    first = True
    for bi in sorted(region_bis):
        db = dfn.blocks[bi]
        records = supported[bi]
        bmap[bi] = db
        E.w(3, f"{'if' if first else 'elif'} _b == {bi}:")
        first = False
        d = 4
        # Per-block static accounting restarts here (the completed
        # blocks' totals were rolled into _nis/_nuo at the jump).
        E.reset_block(0)
        E.w(d, "_i = 0")
        E.w(d, f"if executed + {_precheck_span(db, 0, leaf_of)} > maxi:")
        E.w(d + 1, f"f.block = {E.KI(db)}")
        E.w(d + 1, "f.in_body = True")
        E.w(d + 1, "f.i = 0")
        E.writeback(d + 1)
        E.w(d + 1, "return executed, 3")
        _emit_span(E, d, db, records, 0, 0, rv, slot_map, costs,
                   seg_lookup, bi_of, rtp, leaf_of)
        cum_tables[bi] = tuple(E.cum_uops)
        iss_tables[bi] = tuple(E.cum_issued)
        adj_tables[bi] = tuple(E.rec_adj)
    E.w(3, "else:")
    E.w(4, "raise RuntimeError('bad region block %r' % _b)")
    # Only records raise (phi moves are pure reg/const reads, inlined
    # leaf bodies are exception-free by construction, and the
    # terminators cannot raise: budget is prechecked and the inlined
    # predictor/timing updates are exception-free), so _b/_i pinpoint
    # the raising record and the frame/timing flush mirrors the
    # segment except path with the completed blocks' totals added.
    E.w(1, "except BaseException:")
    E.w(2, f"f.block = {E.K(bmap)}[_b]")
    E.w(2, "f.in_body = True")
    E.w(2, "f.i = _i")
    E.w(2, "%CTRFLUSH%")
    if with_timing:
        E.w(2, "_tm.issue_time = _ti")
        E.w(2, "_tm.finish_time = _tr")
        E.w(2, "_tm._retire_frontier = _tr")
        E.w(2, f"_tm.issued += _nis + {E.K(iss_tables)}[_b][_i]")
        E.w(2, f"_tm.uops_issued += _nuo + {E.K(cum_tables)}[_b][_i]")
    E.w(2, f"_ex = executed + {E.K(adj_tables)}[_b][_i] + 1")
    E.w(2, "if _ex > M._executed:")
    E.w(3, "M._executed = _ex")
    E.w(2, "raise")
    hoists = []
    if with_timing:
        hoists += _timing_hoists(E)
    if E.need_mem:
        hoists.append("_mem = M.memory")
    if E.need_cache:
        hoists += _CACHE_HOISTS
    if E.uses_pred:
        hoists += _PRED_HOISTS
    E.lines[hoist_at:hoist_at] = ["    " + h for h in hoists]
    # Patch the counter-accumulator markers now that the full key set
    # is known: inits at entry, dict flushes at every exit. A marker
    # with no keys vanishes (every marked suite also holds a return
    # or raise, so no suite can become empty).
    init = [f"{n} = 0" for n in E.ctr_local.values()]
    flush = [f"cd[{k!r}] += {n}" for k, n in E.ctr_local.items()]
    lines = []
    for line in E.lines:
        text = line.lstrip()
        if text == "%CTRINIT%":
            ind = line[:len(line) - len(text)]
            lines.extend(ind + s for s in init)
        elif text == "%CTRFLUSH%":
            ind = line[:len(line) - len(text)]
            lines.extend(ind + s for s in flush)
        else:
            lines.append(line)
    params = "".join(f", {n}={n}" for n in E.used)
    sg = ", _sg=_sg" if E.uses_sg else ""
    return ([f"def {rname}(M, f, regs, times, executed, timing, "
             f"maxi, cd, byop, _b{sg}{params}):"]
            + lines + [""])


def _emit_function(dfn, costs, globals_addr, with_timing):
    """Compile-emit one decoded function. Returns (source, consts,
    [(block index, boundary, fname), ...]) or None if nothing in the
    function is compilable."""
    fn = dfn.fn
    slot_map, nslots = slot_layout(fn)
    if nslots != dfn.nslots:
        return None
    rv = operand_resolver(slot_map, globals_addr)
    bi_of = {id(db): i for i, db in enumerate(dfn.blocks)}
    rtp = costs.vector_alu_rtp

    leaf_cache: Dict[int, object] = {}

    def leaf_of(cdfn):
        """Memoized inline plan per callee (None = real push)."""
        key = id(cdfn)
        if key not in leaf_cache:
            leaf_cache[key] = _leaf_inline_info(
                cdfn, globals_addr, costs, rtp, with_timing)
        return leaf_cache[key]

    candidates = {}
    for bi, bb in enumerate(fn.blocks):
        db = dfn.blocks[bi]
        if db.term_kind not in _SUPPORTED_TERMS:
            continue
        records, terminator = _block_records(bb)
        if terminator is None or len(records) != db.n:
            continue
        candidates[bi] = records

    # Probe pass into throwaway accumulators: a block with any record
    # outside the compiled subset stays whole on the record path (the
    # real pass then starts from a known-supported set, so constant
    # numbering is deterministic).
    supported = {}
    for bi, records in sorted(candidates.items()):
        try:
            _emit_block_segments(dfn.blocks[bi], records, rv, slot_map,
                                 costs, {}, {}, with_timing,
                                 lambda _bi, _s: 0, bi, bi_of, rtp,
                                 leaf_of)
        except (_Unsupported, _Undecodable):
            continue
        supported[bi] = records
    if not supported:
        return None

    seg_index: Dict[Tuple[int, int], int] = {}
    for bi in sorted(supported):
        db = dfn.blocks[bi]
        calls = [k for k, cm in enumerate(db.call_meta) if cm is not None]
        for s in [0] + [k + 1 for k in calls]:
            seg_index[(bi, s)] = len(seg_index)

    def seg_lookup(bi, s):
        return seg_index.get((bi, s))

    # Supported blocks whose defined calls (if any) are all inlinable
    # leaves merge into one region closure; blocks with a call that
    # must really push keep per-boundary segments (the call suspends
    # control, which the region loop cannot express in its fast path).
    region = frozenset(
        bi for bi in supported
        if all(leaf_of(cm[2]) is not None
               for cm in dfn.blocks[bi].call_meta if cm is not None)
    )

    consts: Dict[str, object] = {}
    seen: Dict[int, str] = {}
    out: List[str] = [f"# compiled segments of @{fn.name} "
                      f"({'timing' if with_timing else 'plain'})"]
    metas: List[Tuple[int, int, str]] = []
    rname = "_rg0"
    if region:
        # The region def must precede the trampolines: each trampoline
        # binds it as a keyword default at def time.
        out.extend(_emit_region(dfn, region, supported, rv, slot_map,
                                costs, consts, seen, with_timing,
                                seg_lookup, bi_of, rtp, rname, leaf_of))
    for bi in sorted(supported):
        db = dfn.blocks[bi]
        if bi in region:
            fname = f"_s{seg_index[(bi, 0)]}"
            out.append(f"def {fname}(M, f, regs, times, executed, "
                       f"timing, maxi, cd, byop, _rg={rname}):")
            out.append(f"    return _rg(M, f, regs, times, executed, "
                       f"timing, maxi, cd, byop, {bi})")
            out.append("")
            metas.append((bi, 0, fname))
            if any(cm is not None for cm in db.call_meta):
                # A region block with (inlinable) calls still needs its
                # post-call boundary segments: a guard-failed inline
                # suspends for a real push, and the driver resumes at
                # segment (bi, k+1). Metas stay in seg_index order —
                # the trampoline is (bi, 0), boundaries follow.
                lines, ms = _emit_block_segments(
                    db, supported[bi], rv, slot_map, costs, consts,
                    seen, with_timing, seg_lookup, bi, bi_of, rtp,
                    leaf_of, skip_entry=True)
                out.extend(lines)
                metas.extend((bi, s, fn2) for s, fn2 in ms)
            continue
        lines, ms = _emit_block_segments(db, supported[bi],
                                         rv, slot_map, costs, consts,
                                         seen, with_timing, seg_lookup,
                                         bi, bi_of, rtp, leaf_of)
        out.extend(lines)
        metas.extend((bi, s, fname) for s, fname in ms)
    return "\n".join(out) + "\n", consts, metas


def _compile_dfn(dmod, dfn, vidx, digest):
    """Emit + exec the segments of one function, reusing a cached code
    object when this (module digest, cost model, variant, function) was
    compiled before. Returns (segments, blocks, code hit, code miss)."""
    for db in dfn.blocks:
        if db.compiled is None:
            db.compiled = [None, None]
    try:
        emitted = _emit_function(dfn, dmod.costs, dmod.globals_addr,
                                 vidx == 0)
    except Exception:
        if STRICT_COMPILE:
            raise
        emitted = None  # the record path stays available (and correct)
    if emitted is None:
        return (0, 0, 0, 0)
    source, consts, metas = emitted
    key = ((digest, id(dmod.costs), vidx, dfn.fn.name) if digest
           else None)
    code = None
    hit = miss = 0
    if key is not None:
        entry = _CODE_CACHE.get(key)
        # Emission re-runs per instance (the consts are per-decode
        # objects); only compile() is shared, and only when the
        # generated source is byte-identical.
        if entry is not None and entry[1] == source:
            code = entry[2]
            hit = 1
    if code is None:
        code = compile(source, f"<repro.compiled:@{dfn.fn.name}>", "exec")
        miss = 1
        if key is not None:
            # Keep the cost model alive so its id() cannot be recycled.
            _CODE_CACHE[key] = (dmod.costs, source, code)
    seglist: List[object] = [None] * len(metas)
    ns = dict(consts)
    ns["_sg"] = seglist
    exec(code, ns)  # noqa: S102 - our own generated segments
    per_block: Dict[int, Dict[int, object]] = {}
    for idx, (bi, boundary, fname) in enumerate(metas):
        seglist[idx] = ns[fname]
        per_block.setdefault(bi, {})[boundary] = ns[fname]
    for bi, segmap in per_block.items():
        dfn.blocks[bi].compiled[vidx] = segmap
    return (len(metas), len(per_block), hit, miss)


def ensure_compiled(dmod, vidx) -> Optional[Dict[str, object]]:
    """Compile segments for every decoded function of ``dmod`` in the
    given variant (0 = timing, 1 = plain) that is not compiled yet.
    Idempotent and cheap when there is nothing to do. Returns the
    compile-event payload when work happened, else None."""
    done = getattr(dmod, "_compiled_fns", None)
    if done is None:
        done = dmod._compiled_fns = [set(), set()]
    todo = [(fid, dfn) for fid, dfn in dmod._functions.items()
            if fid not in done[vidx]]
    if not todo:
        return None
    digest = _module_digest(dmod)
    t0 = time.perf_counter()
    segs = blocks = hits = misses = 0
    for fid, dfn in todo:
        n_segs, n_blocks, hit, miss = _compile_dfn(dmod, dfn, vidx, digest)
        done[vidx].add(fid)
        segs += n_segs
        blocks += n_blocks
        hits += hit
        misses += miss
    ms = (time.perf_counter() - t0) * 1000.0
    COMPILE_STATS.functions += len(todo)
    COMPILE_STATS.blocks += blocks
    COMPILE_STATS.segments += segs
    COMPILE_STATS.compile_ms += ms
    COMPILE_STATS.code_hits += hits
    COMPILE_STATS.code_misses += misses
    payload = {
        "digest": digest,
        "variant": "timing" if vidx == 0 else "plain",
        "functions": len(todo),
        "blocks": blocks,
        "segments": segs,
        "compile_ms": ms,
        "code_hits": hits,
        "code_misses": misses,
    }
    for hook in list(_COMPILE_HOOKS):
        hook(payload)
    return payload


# --- Engine runners -----------------------------------------------------------
#
# Machine.run dispatches through the engine registry
# (repro.cpu.interpreter) to one of these. Both decode once per
# (module, cost model) and run on the trampoline; "compiled" also
# ensures segments exist for the variant this machine needs.


def run_decoded(M, fn, arg_values):
    """``engine="decoded"``: trampoline over decoded records."""
    dmod = decoded_module(M.module, M.config.cost_model, M.globals_addr)
    dfn = dmod.function(fn)
    stack: List[Frame] = []
    push_frame(M, stack, dfn, arg_values, [0.0] * len(arg_values))
    return run_stack(M, stack, M._executed)


def run_compiled(M, fn, arg_values):
    """``engine="compiled"``: trampoline + compiled segments."""
    dmod = decoded_module(M.module, M.config.cost_model, M.globals_addr)
    dfn = dmod.function(fn)
    ensure_compiled(dmod, 0 if M.timing is not None else 1)
    stack: List[Frame] = []
    push_frame(M, stack, dfn, arg_values, [0.0] * len(arg_values))
    return run_stack(M, stack, M._executed)
