"""Flat simulated memory.

A single address space with two bump-allocated regions:

- the *heap* (globals + ``rt.alloc``), growing up from ``HEAP_BASE``;
- the *stack* (allocas), growing up from ``STACK_BASE`` with LIFO
  save/restore around function calls.

Addresses below ``HEAP_BASE`` are never mapped, so small corrupted
pointers fault like a null-page access would. The memory subsystem is
assumed ECC-protected (paper §III-A): the fault injector never flips
bits here.

Scalars are stored little-endian; integers in unsigned width-masked
form; floats as IEEE-754.
"""

from __future__ import annotations

import struct
from typing import Union

from ..ir import types as T
from .errors import MemoryFault

HEAP_BASE = 0x1000
STACK_BASE = 0x40000000  # 1 GiB mark; heap may grow until here

_FLOAT_FMT = {32: "<f", 64: "<d"}


class Memory:
    def __init__(self, heap_capacity: int = 64 << 20, stack_capacity: int = 8 << 20):
        self.heap_capacity = heap_capacity
        self.stack_capacity = stack_capacity
        self._heap = bytearray(heap_capacity)
        self._stack = bytearray(stack_capacity)
        self.heap_top = HEAP_BASE
        self.stack_top = STACK_BASE

    # Allocation ---------------------------------------------------------------

    def alloc(self, size: int, align: int = 8) -> int:
        """Heap allocation (globals, rt.alloc). Never freed."""
        if size < 0:
            raise ValueError("negative allocation")
        addr = _align_up(self.heap_top, align)
        if addr + size - HEAP_BASE > self.heap_capacity:
            raise MemoryError(
                f"simulated heap exhausted ({self.heap_capacity} bytes)"
            )
        self.heap_top = addr + size
        return addr

    def stack_alloc(self, size: int, align: int = 8) -> int:
        addr = _align_up(self.stack_top, align)
        if addr + size - STACK_BASE > self.stack_capacity:
            raise MemoryError(
                f"simulated stack exhausted ({self.stack_capacity} bytes)"
            )
        self.stack_top = addr + size
        return addr

    def stack_mark(self) -> int:
        return self.stack_top

    def stack_release(self, mark: int) -> None:
        self.stack_top = mark

    # Raw access ----------------------------------------------------------------

    def _locate(self, addr: int, size: int, write: bool) -> tuple:
        """Return (buffer, offset) for a mapped range, or fault."""
        if HEAP_BASE <= addr and addr + size <= self.heap_top:
            return self._heap, addr - HEAP_BASE
        if STACK_BASE <= addr and addr + size <= self.stack_top:
            return self._stack, addr - STACK_BASE
        raise MemoryFault(addr, size, write)

    def read_bytes(self, addr: int, size: int) -> bytes:
        buf, off = self._locate(addr, size, write=False)
        return bytes(buf[off:off + size])

    def write_bytes(self, addr: int, data: bytes) -> None:
        buf, off = self._locate(addr, len(data), write=True)
        buf[off:off + len(data)] = data

    # Typed access -----------------------------------------------------------------

    def load_scalar(self, ty: T.Type, addr: int) -> Union[int, float]:
        size = T.sizeof(ty)
        raw = self.read_bytes(addr, size)
        if ty.is_float:
            return struct.unpack(_FLOAT_FMT[ty.bits], raw)[0]
        value = int.from_bytes(raw, "little")
        if ty.is_int and ty.width % 8 != 0:
            value &= (1 << ty.width) - 1
        return value

    def store_scalar(self, ty: T.Type, addr: int, value: Union[int, float]) -> None:
        size = T.sizeof(ty)
        if ty.is_float:
            raw = struct.pack(_FLOAT_FMT[ty.bits], value)
        else:
            mask = (1 << (size * 8)) - 1
            raw = (int(value) & mask).to_bytes(size, "little")
        self.write_bytes(addr, raw)

    def load_value(self, ty: T.Type, addr: int):
        """Load a scalar or a contiguous vector."""
        if ty.is_vector:
            esize = T.sizeof(ty.elem)
            return tuple(
                self.load_scalar(ty.elem, addr + i * esize)
                for i in range(ty.count)
            )
        return self.load_scalar(ty, addr)

    def store_value(self, ty: T.Type, addr: int, value) -> None:
        if ty.is_vector:
            esize = T.sizeof(ty.elem)
            for i, v in enumerate(value):
                self.store_scalar(ty.elem, addr + i * esize, v)
            return
        self.store_scalar(ty, addr, value)

    # Bulk initialization ------------------------------------------------------------

    def init_global(self, content_type: T.Type, initializer) -> int:
        """Allocate and initialize storage for a global; returns address."""
        size = T.sizeof(content_type)
        addr = self.alloc(size, align=16)
        if initializer is None:
            return addr
        if isinstance(initializer, (bytes, bytearray)):
            if len(initializer) > size:
                raise ValueError("initializer larger than global")
            self.write_bytes(addr, bytes(initializer))
            return addr
        # Sequence of scalars for an array type.
        if content_type.is_array:
            elem = content_type.elem
            esize = T.sizeof(elem)
            values = list(initializer)
            if len(values) > content_type.count:
                raise ValueError("initializer larger than array global")
            for i, v in enumerate(values):
                self.store_scalar(elem, addr + i * esize, v)
            return addr
        self.store_scalar(content_type, addr, initializer)
        return addr


def _align_up(value: int, align: int) -> int:
    return (value + align - 1) & ~(align - 1)
