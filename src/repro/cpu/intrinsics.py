"""Intrinsic declarations shared by passes, workloads, and the machine.

Intrinsic families (dispatched by name prefix in the interpreter):

- ``rt.*``    — runtime services: heap allocation, output, abort.
- ``host.*``  — host-math helpers (used by *unhardened* reference code
  and tests; the hardened workloads use the IR libm instead).
- ``elzar.*`` — ELZAR check/branch/recovery operations (paper Fig. 8/9).
- ``tmr.*``   — SWIFT-R majority voting.
- ``swift.*`` — SWIFT DMR fail-stop checks.

Type-polymorphic intrinsics are monomorphised by mangling the type into
the name (e.g. ``elzar.check.v4i64``), keeping the IR strictly typed.
"""

from __future__ import annotations

from ..ir import types as T
from ..ir.function import Function
from ..ir.module import Module


def type_tag(ty: T.Type) -> str:
    if ty.is_vector:
        return f"v{ty.count}{type_tag(ty.elem)}"
    if ty.is_int:
        return f"i{ty.width}"
    if ty.is_float:
        return "f32" if ty.bits == 32 else "f64"
    if ty.is_pointer:
        return "p64"
    raise TypeError(f"no tag for type {ty}")


def declare(module: Module, name: str, ret: T.Type, params) -> Function:
    return module.declare_function(name, T.FunctionType(ret, tuple(params)))


# --- Runtime services --------------------------------------------------------


def rt_alloc(module: Module) -> Function:
    return declare(module, "rt.alloc", T.PTR, [T.I64])


def rt_print_i64(module: Module) -> Function:
    return declare(module, "rt.print_i64", T.VOID, [T.I64])


def rt_print_f64(module: Module) -> Function:
    return declare(module, "rt.print_f64", T.VOID, [T.F64])


def rt_abort(module: Module) -> Function:
    return declare(module, "rt.abort", T.VOID, [])


def host_unary(module: Module, op: str) -> Function:
    """f64 -> f64 host math (sqrt, exp, log, sin, cos, erf, fabs, floor)."""
    return declare(module, f"host.{op}", T.F64, [T.F64])


def host_pow(module: Module) -> Function:
    return declare(module, "host.pow", T.F64, [T.F64, T.F64])


# --- Hardening intrinsics ------------------------------------------------------


def elzar_check(module: Module, vec_ty: T.VectorType) -> Function:
    """Check-and-recover on a replicated value (shuffle-xor-ptest fast
    path, majority-vote slow path). Returns the corrected vector."""
    return declare(module, f"elzar.check.{type_tag(vec_ty)}", vec_ty, [vec_ty])


def elzar_check_dmr(module: Module, vec_ty: T.VectorType) -> Function:
    """Detection-only check: fail-stop on any lane divergence (the
    DMR-style ablation of ELZAR; recovery would be delegated to an
    external mechanism such as HAFT's transaction rollback)."""
    return declare(
        module, f"elzar.check_dmr.{type_tag(vec_ty)}", vec_ty, [vec_ty]
    )


def elzar_branch_cond_dmr(module: Module, lanes: int) -> Function:
    """ptest branch collapse that fail-stops on a true/false mix."""
    vec_ty = T.vector(T.I1, lanes)
    return declare(
        module, f"elzar.branch_cond_dmr.{type_tag(vec_ty)}", T.I1, [vec_ty]
    )


def elzar_branch_cond(module: Module, lanes: int, checked: bool = True) -> Function:
    """Collapse a replicated i1 comparison result into a scalar branch
    condition via ptest (Fig. 7/9); the checked variant also detects and
    recovers true/false mixes."""
    vec_ty = T.vector(T.I1, lanes)
    name = "elzar.branch_cond" if checked else "elzar.branch_cond_nocheck"
    return declare(module, f"{name}.{type_tag(vec_ty)}", T.I1, [vec_ty])


def tmr_vote(module: Module, ty: T.Type) -> Function:
    """SWIFT-R 2-of-3 majority vote over scalar copies."""
    return declare(module, f"tmr.vote.{type_tag(ty)}", ty, [ty, ty, ty])


def swift_check(module: Module, ty: T.Type) -> Function:
    """SWIFT DMR comparison: fail-stop if the two copies diverge."""
    return declare(module, f"swift.check.{type_tag(ty)}", ty, [ty, ty])
