"""Analytic multithreaded-scalability model.

The simulator executes one thread; the paper evaluates 1-16 threads on
a 28-core machine. We model a workload's parallel behaviour with three
parameters and derive the multi-threaded runtime of both the native and
hardened versions from their measured single-thread cycle counts.

The key structural fact the paper leans on (§V-B "Impact of ELZAR and
scalability") is that hardening multiplies the *compute* portion of a
program but leaves the *synchronization* portion untouched (pthread
primitives and I/O are not hardened, §IV-A). Hence:

    runtime(T) = h * C * (1 - p)            # serial compute
               + h * C * p / T              # parallel compute
               + C * s * (1 + g * (T - 1))  # synchronization (unhardened)

where C is the native single-thread cycle count, h the hardening
slowdown factor (hardened_cycles / native_cycles), p the parallel
fraction, s the synchronization fraction, and g its growth per added
thread. Perfectly scalable workloads (word_count, ferret: p≈1, s≈0)
show constant overhead across thread counts; poorly scaling ones
(dedup, streamcluster: large s·g) amortize the hardening overhead as
threads increase — exactly the paper's observation.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ScalabilityProfile:
    """Per-workload parallel behaviour (see module docstring)."""

    parallel_fraction: float = 0.98
    sync_fraction: float = 0.0
    sync_growth: float = 0.0

    def __post_init__(self):
        if not 0.0 <= self.parallel_fraction <= 1.0:
            raise ValueError("parallel_fraction must be in [0, 1]")
        if self.sync_fraction < 0 or self.sync_growth < 0:
            raise ValueError("sync parameters must be non-negative")


#: Perfect scaling, no synchronization (default for CPU-bound kernels).
PERFECT = ScalabilityProfile()


def runtime_at(
    native_cycles: float,
    threads: int,
    profile: ScalabilityProfile,
    hardening_factor: float = 1.0,
) -> float:
    """Modelled runtime (in cycles) at ``threads`` threads."""
    if threads < 1:
        raise ValueError("threads must be >= 1")
    p = profile.parallel_fraction
    serial = native_cycles * (1.0 - p) * hardening_factor
    parallel = native_cycles * p * hardening_factor / threads
    sync = native_cycles * profile.sync_fraction * (
        1.0 + profile.sync_growth * (threads - 1)
    )
    return serial + parallel + sync


def normalized_overhead(
    native_cycles: float,
    hardened_cycles: float,
    threads: int,
    profile: ScalabilityProfile,
) -> float:
    """Hardened runtime / native runtime at ``threads`` threads (the
    y-axis of Figures 11, 12, 14 and 17)."""
    if native_cycles <= 0:
        raise ValueError("native_cycles must be positive")
    h = hardened_cycles / native_cycles
    hardened = runtime_at(native_cycles, threads, profile, hardening_factor=h)
    native = runtime_at(native_cycles, threads, profile, hardening_factor=1.0)
    return hardened / native


def speedup_over_threads(native_cycles: float, threads: int,
                         profile: ScalabilityProfile) -> float:
    """Self-relative scaling curve (used in tests for sanity checks)."""
    t1 = runtime_at(native_cycles, 1, profile)
    tn = runtime_at(native_cycles, threads, profile)
    return t1 / tn
