"""Dataflow timing model.

Approximates an out-of-order superscalar core as a dataflow machine
constrained by:

- the frontend **issue width** (4 uops/cycle on Haswell): the issue
  pointer advances uops/width per instruction — multi-uop wrapper
  sequences (extract, broadcast, checks) consume proportionally more
  frontend bandwidth, which is the paper's main overhead mechanism
  (§VII-A, Table III's instruction-increase column);
- the **reorder buffer** (192 entries): an instruction cannot issue
  until the instruction ROB_SIZE places earlier has retired, bounding
  how much latency (cache misses, divides) can be overlapped;
- **operand readiness**: an instruction starts no earlier than its
  latest operand's completion;
- **structural hazards**: two load ports, one store-data port, the
  unpipelined divider, and the 3-wide vector ALU port group (scalar
  ALU ops get all 4 slots; vector ops only 3 — one reason Table III
  shows lower ILP for ELZAR than for native or SWIFT-R);
- **branch mispredictions**: the issue pointer stalls until the branch
  resolves plus a refill penalty.

Total cycles = the latest completion time observed; ILP = executed
instructions / cycles.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Sequence

from ..avx.costs import BRANCH_MISS_PENALTY, ISSUE_WIDTH, ROB_SIZE, CostModel

#: Default for ``TimingModel.issue``'s ``port`` parameter: look the port
#: up in the cost model by opcode. Callers that pre-resolve the lookup
#: (the pre-decoded engine) pass the ``(name, busy)`` tuple — or None —
#: directly.
_PORT_LOOKUP = object()


class TimingModel:
    def __init__(
        self,
        cost_model: CostModel,
        issue_width: int = ISSUE_WIDTH,
        rob_size: int = ROB_SIZE,
        branch_miss_penalty: float = BRANCH_MISS_PENALTY,
    ):
        self.costs = cost_model
        self.issue_width = issue_width
        self.rob_size = rob_size
        self.branch_miss_penalty = branch_miss_penalty
        self.issue_time = 0.0
        self.finish_time = 0.0
        self.issued = 0
        self.uops_issued = 0
        self._port_free: Dict[str, float] = {}
        self._rob: deque = deque()
        self._retire_frontier = 0.0

    def reset(self) -> None:
        self.issue_time = 0.0
        self.finish_time = 0.0
        self.issued = 0
        self.uops_issued = 0
        self._port_free.clear()
        self._rob.clear()
        self._retire_frontier = 0.0

    # Core accounting ----------------------------------------------------------

    def issue(
        self,
        opcode: str,
        latency: float,
        operand_times: Sequence[float],
        extra_latency: float = 0.0,
        uops: int = 1,
        is_vector: bool = False,
        port=_PORT_LOOKUP,
    ) -> float:
        """Issue one instruction; returns its completion time.

        Hot path: called once per dynamic instruction, so the port
        reservation (:meth:`_reserve_port`) is inlined and attribute
        traffic minimised. The arithmetic is unchanged — the decoded
        and reference engines must produce bit-identical cycle counts.
        """
        self.issued += 1
        self.uops_issued += uops
        start = self.issue_time
        # ROB: wait for the oldest in-flight instruction to retire.
        rob = self._rob
        if len(rob) >= self.rob_size:
            oldest = rob.popleft()
            if oldest > start:
                start = oldest
        for t in operand_times:
            if t > start:
                start = t
        if port is _PORT_LOOKUP:
            port = self.costs.ports.get(opcode)
        if port is not None:
            port_free = self._port_free
            name = port[0]
            clock = port_free.get(name, 0.0)
            if clock > start:
                start = clock
            port_free[name] = clock + port[1]
        if is_vector:
            port_free = self._port_free
            clock = port_free.get("vecalu", 0.0)
            if clock > start:
                start = clock
            port_free["vecalu"] = clock + self.costs.vector_alu_rtp * uops
        done = start + latency + extra_latency
        if done > self.finish_time:
            self.finish_time = done
        # In-order retirement frontier (monotone completion).
        frontier = self._retire_frontier
        if done > frontier:
            self._retire_frontier = frontier = done
        rob.append(frontier)
        self.issue_time += uops / self.issue_width
        return done

    def _reserve_port(self, name: str, busy: float, start: float) -> float:
        """Bandwidth-clock structural hazard: the unit serves work at a
        bounded sustained rate but out-of-order. The clock advances only
        by the work enqueued (never to a late op's start time), so one
        late-arriving operand cannot serialize independent iterations
        behind it — the unit's total busy time is the binding constraint,
        exactly like a throughput model."""
        clock = self._port_free.get(name, 0.0)
        if clock > start:
            start = clock
        self._port_free[name] = clock + busy
        return start

    def branch_mispredict(self, resolve_time: float) -> None:
        """Frontend refill stall after a mispredicted branch."""
        restart = resolve_time + self.branch_miss_penalty
        if restart > self.issue_time:
            self.issue_time = restart

    # Results --------------------------------------------------------------------

    @property
    def cycles(self) -> float:
        return max(self.finish_time, self.issue_time)

    @property
    def ilp(self) -> float:
        """x86-equivalent instructions per cycle (what perf-stat's
        instructions/cycles ratio measures in Table III)."""
        cycles = self.cycles
        if cycles <= 0:
            return 0.0
        return self.uops_issued / cycles
