"""Trap hierarchy for simulated program failures.

The fault-injection outcome classifier (Table I of the paper) maps
these onto the "Crashed" system states: a :class:`MemoryFault` or
:class:`ArithmeticFault` corresponds to an OS-terminated program, a
:class:`HangError` to an unresponsive one, and a :class:`DetectedError`
to a hardening scheme stopping the program itself (SWIFT's fail-stop,
or ELZAR's no-majority case)."""

from __future__ import annotations


class Trap(Exception):
    """Base class for simulated program termination."""


class MemoryFault(Trap):
    """Access outside any mapped region (simulated SIGSEGV)."""

    def __init__(self, address: int, size: int = 0, write: bool = False):
        self.address = address
        self.size = size
        self.write = write
        kind = "write" if write else "read"
        super().__init__(f"invalid {kind} of {size} bytes at {address:#x}")


class ArithmeticFault(Trap):
    """Integer division by zero (simulated SIGFPE)."""


class HangError(Trap):
    """Instruction budget exhausted (program classified as hung)."""


class DetectedError(Trap):
    """A hardening check detected an uncorrectable fault and stopped
    the program (SWIFT fail-stop, or ELZAR's §III-C no-majority case)."""


class AbortError(Trap):
    """Explicit ``rt.abort`` call from the program under test."""
