"""Decode layer of the execution core: IR -> decoded records.

The reference interpreter (:mod:`repro.cpu.interpreter`) dispatches each
dynamic instruction through a chain of ~22 ``isinstance`` checks and
resolves every operand with per-step dict lookups keyed by ``Value``.
This module removes that per-step work with a one-time *decode* of each
function (execution itself lives in :mod:`repro.cpu.compiled`: the
explicit-frame trampoline runs these records directly for the
``decoded`` engine, and compiles them further into threaded-code
segments for the ``compiled`` engine):

- every basic block is lowered to a flat tuple of per-instruction
  **handler closures** (a dispatch table built once, indexed never);
- operands are pre-resolved to **register-file slot indices** (one flat
  list per frame) or to baked-in constants — globals resolve to their
  deterministic heap addresses at decode time;
- cost-table entries (latency, uop count, port reservation) are
  pre-bound into each closure, so the timing model is fed without any
  per-step table lookups;
- per-block *static* counter deltas (instructions, uops, loads, ...)
  are pre-summed and flushed once per block instead of once per
  instruction, with exact prefix reconstruction when an exception
  escapes mid-block.

The decoded form is cached on the :class:`~repro.ir.module.Module`
keyed by its ``version`` stamp (see ``Module.bump_version``) and the
cost model, so fault campaigns and thread sweeps decode once and
execute thousands of times.

Bit-identity contract: for any program the reference engine runs, this
engine produces the same return value, program output, perf counters,
simulated cycles, fault-injection behaviour, and exception type — the
differential tests in ``tests/cpu/test_engine_differential.py`` enforce
this over every kernel and app. That is why the handlers below mirror
the reference interpreter's exact order of counter updates, timing
``issue()`` calls, predictor updates, and injection points.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..avx import costs as C
from ..avx import ops as avxops
from ..ir import types as T
from ..ir.function import Function
from ..ir.instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    BroadcastInst,
    CallInst,
    CastInst,
    ExtractElementInst,
    FCmpInst,
    GepInst,
    ICmpInst,
    InsertElementInst,
    LoadInst,
    PhiInst,
    SelectInst,
    ShuffleVectorInst,
    StoreInst,
)
from ..ir.module import Module
from ..ir.values import Argument, Constant, GlobalVariable, UndefValue
from .errors import AbortError, DetectedError, HangError, MemoryFault, Trap
from .memory import HEAP_BASE as _HEAP_BASE
from .memory import STACK_BASE as _STACK_BASE
from .memory import _FLOAT_FMT
from .interpreter import (
    _FCMP,
    _HOST_UNARY,
    _ICMP,
    _MASK64,
    _cast_scalar,
    _compute_static,
    _float_binop,
    _int_binop,
    _key_to_value,
    _lane_keys,
    _scalar_key,
    _to_signed,
)

_MEM_L1 = float(C.MEM_LATENCY[1])

# Terminator kinds.
_T_BR = 0          # unconditional branch
_T_CONDBR = 1      # conditional branch
_T_RET = 2         # ret <value>
_T_RET_VOID = 3    # ret void
_T_UNREACHABLE = 4
_T_FALLOFF = 5     # block has no terminator (reference raises MemoryFault)

import math  # noqa: E402  (used by host intrinsics below)
from struct import Struct as _Struct  # noqa: E402


# --- Decoded containers ------------------------------------------------------


class DecodedBlock:
    __slots__ = (
        "name",
        "body",            # tuple of handler closures
        "n",               # len(body)
        "inject",          # tuple parallel to body: (dst, type, inst) or None
        "cum_pairs",       # cum_pairs[i]: static deltas of records 0..i-1
        "partial_pairs",   # partial_pairs[i]: pre-exec deltas of record i
        "full_pairs",      # whole block incl. terminator (the common flush)
        "opcodes",         # opcode per record incl. terminator (by_opcode)
        "opcode_items",    # pre-counted ((opcode, count), ...) for full flush
        "term_kind",
        "term",            # kind-specific payload tuple
        "phi_moves",       # {pred DecodedBlock: ((dst, slot, const), ...)} | None
        "phi_meta",        # ((type, phi inst), ...) for inject bookkeeping
        "call_meta",       # parallel to body: defined-call metadata or None
        "compiled",        # [timing segmap, plain segmap] | None (cpu.compiled)
    )

    def __init__(self, name: str):
        self.name = name
        self.phi_moves = None
        self.phi_meta = ()
        self.compiled = None


class DecodedFunction:
    __slots__ = ("fn", "nargs", "nslots", "entry", "blocks")

    def __init__(self, fn: Function):
        self.fn = fn
        self.nargs = len(fn.args)
        self.nslots = 0
        self.entry: Optional[DecodedBlock] = None
        self.blocks: List[DecodedBlock] = []


# --- Execution ---------------------------------------------------------------


# Execution lives in repro.cpu.compiled: one explicit-frame
# trampoline (run_stack) executes decoded records for the
# "decoded" engine and compiled segments for the "compiled"
# engine. This module is the decode layer only.


# --- Decode: static counter deltas -------------------------------------------


def _deltas(inst, static):
    """(full, partial) static counter deltas for one record.

    ``full`` is what a completed execution adds; ``partial`` is what the
    reference interpreter has already added at the instant each
    realistic exception site inside the record can fire (counted-before-
    executed fields: instructions, loads/stores, calls, fp/div class
    counts).
    """
    is_avx, _, uops = static
    base = {"instructions": 1}
    if is_avx:
        base["avx_instructions"] = 1
    op = inst.opcode
    if op == "unreachable":
        # The reference raises before adding uops.
        return dict(base), dict(base)
    full = dict(base)
    if uops:
        full["uops"] = uops
    partial = dict(base)
    if op == "br":
        full["branches"] = 1
        if inst.is_conditional:
            full["cond_branches"] = 1
        partial = dict(full)
    elif op == "ret":
        partial = dict(full)
    elif op == "load":
        full["loads"] = 1
        full["l1_accesses"] = 1
        partial["loads"] = 1
    elif op == "store":
        full["stores"] = 1
        full["l1_accesses"] = 1
        partial["stores"] = 1
    elif op == "call":
        full["calls"] = 1
        partial["calls"] = 1
    elif isinstance(inst, BinaryInst):
        ty = inst.type
        elem = ty.elem if ty.is_vector else ty
        if elem.is_float:
            full["fp_instructions"] = 1
            partial["fp_instructions"] = 1
        if op in ("sdiv", "udiv", "srem", "urem"):
            full["int_div_instructions"] = 1
            partial["int_div_instructions"] = 1
    elif isinstance(inst, FCmpInst):
        full["fp_instructions"] = 1
        partial["fp_instructions"] = 1
    return full, partial


# --- Decode: scalar operation specialisation ---------------------------------


def _int_op(opcode, width):
    mask = (1 << width) - 1
    if opcode == "add":
        return lambda a, b: (a + b) & mask
    if opcode == "sub":
        return lambda a, b: (a - b) & mask
    if opcode == "mul":
        return lambda a, b: (a * b) & mask
    if opcode == "and":
        return lambda a, b: a & b
    if opcode == "or":
        return lambda a, b: a | b
    if opcode == "xor":
        return lambda a, b: a ^ b
    if opcode == "shl":
        return lambda a, b: (a << (b % width)) & mask
    if opcode == "lshr":
        return lambda a, b: (a >> (b % width)) & mask
    if opcode == "ashr":
        return lambda a, b: (_to_signed(a, width) >> (b % width)) & mask
    # div/rem keep the reference helper (ArithmeticFault on zero).
    return lambda a, b: _int_binop(opcode, a, b, width)


def _float_op(opcode, bits):
    if bits == 32:
        return lambda a, b: _float_binop(opcode, a, b, 32)
    if opcode == "fadd":
        return lambda a, b: a + b
    if opcode == "fsub":
        return lambda a, b: a - b
    if opcode == "fmul":
        return lambda a, b: a * b
    return lambda a, b: _float_binop(opcode, a, b, 64)


def _vec_op(scalar_fn):
    return lambda a, b, f=scalar_fn: tuple(f(x, y) for x, y in zip(a, b))


# --- Decode: handler factories -----------------------------------------------
#
# Handler contract: ``h(M, regs, times, executed, timing) -> executed``.
# Static facts (slots, constants, latency, uops, vector-ness, port) are
# bound as keyword defaults so the interpreter loop pays LOAD_FAST, not
# closure-cell, prices. Handlers never touch the *static* perf counters
# (the block flush owns those); they only update dynamic ones (cache
# misses, corrections, ...).


def _make_binary2(rv, inst, fn2, lat, static, port, dst, opcode):
    (sa, ca), (sb, cb) = rv(inst.operands[0]), rv(inst.operands[1])
    uops, isv = static[2], static[1]

    def h(M, regs, times, executed, timing,
          sa=sa, ca=ca, sb=sb, cb=cb, dst=dst, fn2=fn2, lat=lat,
          uops=uops, isv=isv, port=port, opcode=opcode):
        a = regs[sa] if sa >= 0 else ca
        b = regs[sb] if sb >= 0 else cb
        regs[dst] = fn2(a, b)
        if timing is not None:
            times[dst] = timing.issue(
                opcode, lat,
                (times[sa] if sa >= 0 else 0.0,
                 times[sb] if sb >= 0 else 0.0),
                0.0, uops, isv, port,
            )
        return executed

    return h


def _make_unary(rv, inst, fn1, lat, static, port, dst, opcode):
    s, c = rv(inst.operands[0])
    uops, isv = static[2], static[1]

    def h(M, regs, times, executed, timing,
          s=s, c=c, dst=dst, fn1=fn1, lat=lat, uops=uops, isv=isv,
          port=port, opcode=opcode):
        regs[dst] = fn1(regs[s] if s >= 0 else c)
        if timing is not None:
            times[dst] = timing.issue(
                opcode, lat, (times[s] if s >= 0 else 0.0,),
                0.0, uops, isv, port,
            )
        return executed

    return h


def _make_load(rv, inst, costs, static, dst):
    sp, cp = rv(inst.ptr)
    ty = inst.type
    size = T.sizeof(ty)
    lat = (costs.vector_latency("load") if ty.is_vector
           else costs.scalar_latency("load"))
    port = costs.ports.get("load")
    uops, isv = static[2], static[1]

    if ty.is_vector:

        def h(M, regs, times, executed, timing,
              sp=sp, cp=cp, dst=dst, ty=ty, size=size, lat=lat, uops=uops,
              isv=isv, port=port, inst=inst):
            addr = regs[sp] if sp >= 0 else cp
            if M._mem_stream_live:
                addr = M._mem_step(addr, inst)
            regs[dst] = M.memory.load_value(ty, addr)
            cache = M.cache
            if cache is None:
                extra = _MEM_L1
            else:
                level, extra = cache.access(addr, size)
                if level >= 2:
                    c = M.counters
                    c.l1_misses += 1
                    if level >= 3:
                        c.l2_misses += 1
                        if level >= 4:
                            c.l3_misses += 1
            if timing is not None:
                times[dst] = timing.issue(
                    "load", lat, (times[sp] if sp >= 0 else 0.0,),
                    extra, uops, isv, port,
                )
            return executed

        return h

    # Scalar load: the typed-memory path (sizeof, format lookup, bounds
    # locate) is resolved at decode time and inlined. Bounds checks and
    # faults are byte-for-byte those of Memory._locate/load_scalar.
    if ty.is_float:
        unpack_from = _Struct(_FLOAT_FMT[ty.bits]).unpack_from

        def h(M, regs, times, executed, timing,
              sp=sp, cp=cp, dst=dst, size=size, lat=lat, uops=uops,
              isv=isv, port=port, unpack_from=unpack_from, inst=inst):
            addr = regs[sp] if sp >= 0 else cp
            if M._mem_stream_live:
                addr = M._mem_step(addr, inst)
            mem = M.memory
            end = addr + size
            if _HEAP_BASE <= addr and end <= mem.heap_top:
                regs[dst] = unpack_from(mem._heap, addr - _HEAP_BASE)[0]
            elif _STACK_BASE <= addr and end <= mem.stack_top:
                regs[dst] = unpack_from(mem._stack, addr - _STACK_BASE)[0]
            else:
                raise MemoryFault(addr, size, False)
            cache = M.cache
            if cache is None:
                extra = _MEM_L1
            else:
                level, extra = cache.access(addr, size)
                if level >= 2:
                    c = M.counters
                    c.l1_misses += 1
                    if level >= 3:
                        c.l2_misses += 1
                        if level >= 4:
                            c.l3_misses += 1
            if timing is not None:
                times[dst] = timing.issue(
                    "load", lat, (times[sp] if sp >= 0 else 0.0,),
                    extra, uops, isv, port,
                )
            return executed

        return h

    mask = ((1 << ty.width) - 1) if ty.is_int and ty.width % 8 != 0 else 0

    def h(M, regs, times, executed, timing,
          sp=sp, cp=cp, dst=dst, size=size, mask=mask, lat=lat, uops=uops,
          isv=isv, port=port, from_bytes=int.from_bytes, inst=inst):
        addr = regs[sp] if sp >= 0 else cp
        if M._mem_stream_live:
            addr = M._mem_step(addr, inst)
        mem = M.memory
        end = addr + size
        if _HEAP_BASE <= addr and end <= mem.heap_top:
            off = addr - _HEAP_BASE
            value = from_bytes(mem._heap[off:off + size], "little")
        elif _STACK_BASE <= addr and end <= mem.stack_top:
            off = addr - _STACK_BASE
            value = from_bytes(mem._stack[off:off + size], "little")
        else:
            raise MemoryFault(addr, size, False)
        regs[dst] = value & mask if mask else value
        cache = M.cache
        if cache is None:
            extra = _MEM_L1
        else:
            level, extra = cache.access(addr, size)
            if level >= 2:
                c = M.counters
                c.l1_misses += 1
                if level >= 3:
                    c.l2_misses += 1
                    if level >= 4:
                        c.l3_misses += 1
        if timing is not None:
            times[dst] = timing.issue(
                "load", lat, (times[sp] if sp >= 0 else 0.0,),
                extra, uops, isv, port,
            )
        return executed

    return h


def _make_store(rv, inst, costs, static):
    sv, cv = rv(inst.value)
    sp, cp = rv(inst.ptr)
    vty = inst.value.type
    size = T.sizeof(vty)
    lat = (costs.vector_latency("store") if vty.is_vector
           else costs.scalar_latency("store"))
    port = costs.ports.get("store")
    uops, isv = static[2], static[1]

    if vty.is_vector:

        def h(M, regs, times, executed, timing,
              sv=sv, cv=cv, sp=sp, cp=cp, vty=vty, size=size, lat=lat,
              uops=uops, isv=isv, port=port, inst=inst):
            addr = regs[sp] if sp >= 0 else cp
            if M._mem_stream_live:
                addr = M._mem_step(addr, inst)
            value = regs[sv] if sv >= 0 else cv
            M.memory.store_value(vty, addr, value)
            cache = M.cache
            if cache is not None:
                # Miss accounting only; the store's extra latency is
                # dropped by the reference interpreter too.
                level, _extra = cache.access(addr, size)
                if level >= 2:
                    c = M.counters
                    c.l1_misses += 1
                    if level >= 3:
                        c.l2_misses += 1
                        if level >= 4:
                            c.l3_misses += 1
            if timing is not None:
                timing.issue(
                    "store", lat,
                    (times[sv] if sv >= 0 else 0.0,
                     times[sp] if sp >= 0 else 0.0),
                    0.0, uops, isv, port,
                )
            return executed

        return h

    # Scalar store: inlined typed-memory path (see _make_load).
    if vty.is_float:
        pack_into = _Struct(_FLOAT_FMT[vty.bits]).pack_into

        def h(M, regs, times, executed, timing,
              sv=sv, cv=cv, sp=sp, cp=cp, size=size, lat=lat,
              uops=uops, isv=isv, port=port, pack_into=pack_into,
              inst=inst):
            addr = regs[sp] if sp >= 0 else cp
            if M._mem_stream_live:
                addr = M._mem_step(addr, inst)
            value = regs[sv] if sv >= 0 else cv
            mem = M.memory
            end = addr + size
            if _HEAP_BASE <= addr and end <= mem.heap_top:
                pack_into(mem._heap, addr - _HEAP_BASE, value)
            elif _STACK_BASE <= addr and end <= mem.stack_top:
                pack_into(mem._stack, addr - _STACK_BASE, value)
            else:
                raise MemoryFault(addr, size, True)
            cache = M.cache
            if cache is not None:
                level, _extra = cache.access(addr, size)
                if level >= 2:
                    c = M.counters
                    c.l1_misses += 1
                    if level >= 3:
                        c.l2_misses += 1
                        if level >= 4:
                            c.l3_misses += 1
            if timing is not None:
                timing.issue(
                    "store", lat,
                    (times[sv] if sv >= 0 else 0.0,
                     times[sp] if sp >= 0 else 0.0),
                    0.0, uops, isv, port,
                )
            return executed

        return h

    smask = (1 << (size * 8)) - 1

    def h(M, regs, times, executed, timing,
          sv=sv, cv=cv, sp=sp, cp=cp, size=size, smask=smask, lat=lat,
          uops=uops, isv=isv, port=port, inst=inst):
        addr = regs[sp] if sp >= 0 else cp
        if M._mem_stream_live:
            addr = M._mem_step(addr, inst)
        value = regs[sv] if sv >= 0 else cv
        raw = (int(value) & smask).to_bytes(size, "little")
        mem = M.memory
        end = addr + size
        if _HEAP_BASE <= addr and end <= mem.heap_top:
            off = addr - _HEAP_BASE
            mem._heap[off:off + size] = raw
        elif _STACK_BASE <= addr and end <= mem.stack_top:
            off = addr - _STACK_BASE
            mem._stack[off:off + size] = raw
        else:
            raise MemoryFault(addr, size, True)
        cache = M.cache
        if cache is not None:
            level, _extra = cache.access(addr, size)
            if level >= 2:
                c = M.counters
                c.l1_misses += 1
                if level >= 3:
                    c.l2_misses += 1
                    if level >= 4:
                        c.l3_misses += 1
        if timing is not None:
            timing.issue(
                "store", lat,
                (times[sv] if sv >= 0 else 0.0,
                 times[sp] if sp >= 0 else 0.0),
                0.0, uops, isv, port,
            )
        return executed

    return h


def _make_alloca(inst, costs, static, dst):
    size = T.sizeof(inst.allocated_type) * inst.count
    lat = costs.scalar_latency("alloca")
    port = costs.ports.get("alloca")
    uops, isv = static[2], static[1]

    def h(M, regs, times, executed, timing,
          size=size, dst=dst, lat=lat, uops=uops, isv=isv, port=port):
        regs[dst] = M.memory.stack_alloc(size)
        if timing is not None:
            times[dst] = timing.issue("alloca", lat, (), 0.0, uops, isv, port)
        return executed

    return h


def _make_gep(rv, inst, costs, static, dst):
    sp, cp = rv(inst.ptr)
    si, ci = rv(inst.index)
    esize = T.sizeof(inst.elem_type)
    ity = inst.index.type
    ty = inst.type
    port = costs.ports.get("gep")
    uops, isv = static[2], static[1]
    if ty.is_vector:
        iw = ity.elem.width if ity.is_vector else ity.width
        count = ty.count
        vec_idx = ity.is_vector
        vec_ptr = inst.ptr.type.is_vector
        lat = costs.vector_latency("gep")

        def h(M, regs, times, executed, timing,
              sp=sp, cp=cp, si=si, ci=ci, dst=dst, esize=esize, iw=iw,
              count=count, vec_idx=vec_idx, vec_ptr=vec_ptr, lat=lat,
              uops=uops, isv=isv, port=port):
            base = regs[sp] if sp >= 0 else cp
            index = regs[si] if si >= 0 else ci
            idxs = index if vec_idx else (index,) * count
            bases = base if vec_ptr else (base,) * count
            regs[dst] = tuple(
                (p + _to_signed(i, iw) * esize) & _MASK64
                for p, i in zip(bases, idxs)
            )
            if timing is not None:
                times[dst] = timing.issue(
                    "gep", lat,
                    (times[sp] if sp >= 0 else 0.0,
                     times[si] if si >= 0 else 0.0),
                    0.0, uops, isv, port,
                )
            return executed

        return h

    iw = ity.width
    lat = costs.scalar_latency("gep")

    def h(M, regs, times, executed, timing,
          sp=sp, cp=cp, si=si, ci=ci, dst=dst, esize=esize, iw=iw, lat=lat,
          uops=uops, isv=isv, port=port):
        base = regs[sp] if sp >= 0 else cp
        index = regs[si] if si >= 0 else ci
        regs[dst] = (base + _to_signed(index, iw) * esize) & _MASK64
        if timing is not None:
            times[dst] = timing.issue(
                "gep", lat,
                (times[sp] if sp >= 0 else 0.0,
                 times[si] if si >= 0 else 0.0),
                0.0, uops, isv, port,
            )
        return executed

    return h


def _make_select(rv, inst, costs, static, dst):
    sc, cc = rv(inst.cond)
    st, ct = rv(inst.tval)
    sf, cf = rv(inst.fval)
    ty = inst.type
    lat = (costs.vector_latency("select") if ty.is_vector
           else costs.scalar_latency("select"))
    vec_cond = inst.cond.type.is_vector
    port = costs.ports.get("select")
    uops, isv = static[2], static[1]

    def h(M, regs, times, executed, timing,
          sc=sc, cc=cc, st=st, ct=ct, sf=sf, cf=cf, dst=dst, lat=lat,
          vec_cond=vec_cond, uops=uops, isv=isv, port=port):
        cond = regs[sc] if sc >= 0 else cc
        tval = regs[st] if st >= 0 else ct
        fval = regs[sf] if sf >= 0 else cf
        if vec_cond:
            regs[dst] = tuple(
                t if c else f for c, t, f in zip(cond, tval, fval)
            )
        else:
            regs[dst] = tval if cond else fval
        if timing is not None:
            times[dst] = timing.issue(
                "select", lat,
                (times[sc] if sc >= 0 else 0.0,
                 times[st] if st >= 0 else 0.0,
                 times[sf] if sf >= 0 else 0.0),
                0.0, uops, isv, port,
            )
        return executed

    return h


def _make_extract(rv, inst, costs, static, dst):
    sv, cv = rv(inst.vec)
    si, ci = rv(inst.index)
    lat = costs.vector_latency("extractelement")
    port = costs.ports.get("extractelement")
    uops, isv = static[2], static[1]

    def h(M, regs, times, executed, timing,
          sv=sv, cv=cv, si=si, ci=ci, dst=dst, lat=lat, uops=uops, isv=isv,
          port=port):
        vec = regs[sv] if sv >= 0 else cv
        index = regs[si] if si >= 0 else ci
        if not 0 <= index < len(vec):
            raise MemoryFault(index, 0)
        regs[dst] = vec[index]
        if timing is not None:
            times[dst] = timing.issue(
                "extractelement", lat,
                (times[sv] if sv >= 0 else 0.0,
                 times[si] if si >= 0 else 0.0),
                0.0, uops, isv, port,
            )
        return executed

    return h


def _make_insert(rv, inst, costs, static, dst):
    sv, cv = rv(inst.vec)
    se, ce = rv(inst.elem)
    si, ci = rv(inst.index)
    lat = costs.vector_latency("insertelement")
    port = costs.ports.get("insertelement")
    uops, isv = static[2], static[1]

    def h(M, regs, times, executed, timing,
          sv=sv, cv=cv, se=se, ce=ce, si=si, ci=ci, dst=dst, lat=lat,
          uops=uops, isv=isv, port=port):
        vec = list(regs[sv] if sv >= 0 else cv)
        elem = regs[se] if se >= 0 else ce
        index = regs[si] if si >= 0 else ci
        if not 0 <= index < len(vec):
            raise MemoryFault(index, 0)
        vec[index] = elem
        regs[dst] = tuple(vec)
        if timing is not None:
            times[dst] = timing.issue(
                "insertelement", lat,
                (times[sv] if sv >= 0 else 0.0,
                 times[se] if se >= 0 else 0.0,
                 times[si] if si >= 0 else 0.0),
                0.0, uops, isv, port,
            )
        return executed

    return h


def _make_shuffle(rv, inst, costs, static, dst):
    s1, c1 = rv(inst.v1)
    s2, c2 = rv(inst.v2)
    mask = inst.mask
    lat = costs.vector_latency("shufflevector")
    port = costs.ports.get("shufflevector")
    uops, isv = static[2], static[1]

    def h(M, regs, times, executed, timing,
          s1=s1, c1=c1, s2=s2, c2=c2, dst=dst, mask=mask, lat=lat,
          uops=uops, isv=isv, port=port):
        v1 = regs[s1] if s1 >= 0 else c1
        v2 = regs[s2] if s2 >= 0 else c2
        joined = tuple(v1) + tuple(v2)
        regs[dst] = tuple(joined[j] for j in mask)
        if timing is not None:
            times[dst] = timing.issue(
                "shufflevector", lat,
                (times[s1] if s1 >= 0 else 0.0,
                 times[s2] if s2 >= 0 else 0.0),
                0.0, uops, isv, port,
            )
        return executed

    return h


def _make_raise(exc_factory):
    def h(M, regs, times, executed, timing, exc_factory=exc_factory):
        raise exc_factory()

    return h


# --- Decode: intrinsic call implementations ----------------------------------
#
# Pre-dispatched versions of ``Machine._call_intrinsic`` — the name
# prefix chain runs once at decode; each impl receives the evaluated
# argument list and the machine (for counters / memory / output).


def _intrinsic_impl(name, inst):
    if name.startswith("elzar.check_dmr."):
        elem = inst.type.elem

        def impl(M, args, elem=elem):
            lanes = args[0]
            keyed = _lane_keys(lanes, elem)
            if avxops.lanes_all_equal(keyed):
                return lanes
            M.counters.detections += 1
            raise DetectedError("ELZAR-DMR check: lanes diverged")

        return impl
    if name.startswith("elzar.branch_cond_dmr."):

        def impl(M, args):
            kind = avxops.ptest_classify(args[0])
            if kind == 2:
                M.counters.detections += 1
                raise DetectedError("ELZAR-DMR branch: true/false mix")
            return kind

        return impl
    if name.startswith("elzar.check."):
        elem = inst.type.elem

        def impl(M, args, elem=elem):
            lanes = args[0]
            keyed = _lane_keys(lanes, elem)
            if avxops.lanes_all_equal(keyed):
                return lanes
            counters = M.counters
            counters.corrections += 1
            try:
                majority = avxops.majority_value(keyed)
            except avxops.NoMajorityError as exc:
                counters.recoveries_failed += 1
                raise DetectedError(str(exc)) from exc
            value = _key_to_value(majority, elem)
            return (value,) * len(lanes)

        return impl
    if name.startswith("elzar.branch_cond_nocheck."):

        def impl(M, args):
            return 1 if all(args[0]) else 0

        return impl
    if name.startswith("elzar.branch_cond."):

        def impl(M, args):
            lanes = args[0]
            kind = avxops.ptest_classify(lanes)
            if kind == 2:
                counters = M.counters
                counters.corrections += 1
                try:
                    majority = avxops.majority_value(tuple(lanes))
                except avxops.NoMajorityError as exc:
                    counters.recoveries_failed += 1
                    raise DetectedError(str(exc)) from exc
                return 1 if majority else 0
            return kind

        return impl
    if name.startswith("tmr.vote."):
        ty = inst.type

        def impl(M, args, ty=ty):
            a, b, c = args
            ka, kb, kc = (_scalar_key(v, ty) for v in (a, b, c))
            if ka == kb and kb == kc:
                return a
            counters = M.counters
            counters.corrections += 1
            if ka == kb or ka == kc:
                return a
            if kb == kc:
                return b
            counters.recoveries_failed += 1
            raise DetectedError("TMR vote: all three copies differ")

        return impl
    if name.startswith("swift.check."):
        ty = inst.type

        def impl(M, args, ty=ty):
            a, b = args
            if _scalar_key(a, ty) != _scalar_key(b, ty):
                M.counters.detections += 1
                raise DetectedError("DMR check: copies diverged")
            return a

        return impl
    if name == "rt.alloc":
        return lambda M, args: M.memory.alloc(args[0])
    if name == "rt.print_i64":

        def impl(M, args):
            M.output.append(_to_signed(args[0], 64))
            return None

        return impl
    if name == "rt.print_f64":

        def impl(M, args):
            M.output.append(float(args[0]))
            return None

        return impl
    if name == "rt.abort":

        def impl(M, args):
            raise AbortError("rt.abort called")

        return impl
    if name.startswith("host."):
        op = name[5:]
        if op == "pow":

            def impl(M, args):
                try:
                    return float(args[0] ** args[1])
                except (OverflowError, ZeroDivisionError, ValueError):
                    return math.nan

            return impl
        fun = _HOST_UNARY.get(op)
        if fun is None:

            def impl(M, args, name=name):
                raise Trap(f"unknown host intrinsic {name}")

            return impl

        def impl(M, args, fun=fun):
            try:
                return float(fun(args[0]))
            except (OverflowError, ValueError):
                return math.nan

        return impl

    def impl(M, args, name=name):
        raise Trap(f"unknown intrinsic {name}")

    return impl


def _make_call_intrinsic(rv, inst, costs, static, dst):
    arg_rs = tuple(rv(a) for a in inst.args)
    impl = _intrinsic_impl(inst.callee.name, inst)
    lat = costs.intrinsic_latency(inst.callee.name)
    port = costs.ports.get("call")
    uops, isv = static[2], static[1]

    if len(arg_rs) == 1:
        (s0, c0), = arg_rs

        def h(M, regs, times, executed, timing,
              s0=s0, c0=c0, dst=dst, impl=impl, lat=lat, uops=uops, isv=isv,
              port=port):
            value = impl(M, (regs[s0] if s0 >= 0 else c0,))
            if dst >= 0:
                regs[dst] = value
            if timing is not None:
                done = timing.issue(
                    "call", lat, (times[s0] if s0 >= 0 else 0.0,),
                    0.0, uops, isv, port,
                )
                if dst >= 0:
                    times[dst] = done
            return executed

        return h

    def h(M, regs, times, executed, timing,
          arg_rs=arg_rs, dst=dst, impl=impl, lat=lat, uops=uops, isv=isv,
          port=port):
        value = impl(M, [regs[s] if s >= 0 else c for s, c in arg_rs])
        if dst >= 0:
            regs[dst] = value
        if timing is not None:
            done = timing.issue(
                "call", lat,
                [times[s] if s >= 0 else 0.0 for s, c in arg_rs],
                0.0, uops, isv, port,
            )
            if dst >= 0:
                times[dst] = done
        return executed

    return h


def _make_call_defined(rv, inst, costs, static, dst, dfn):
    arg_rs = tuple(rv(a) for a in inst.args)
    lat = costs.scalar_latency("call")
    port = costs.ports.get("call")
    uops, isv = static[2], static[1]

    def h(M, regs, times, executed, timing, name=inst.callee.name):
        # Unreachable: the trampoline (repro.cpu.compiled.run_stack)
        # intercepts every record whose call_meta is set and pushes an
        # explicit frame instead of invoking the handler.
        raise RuntimeError(
            f"defined call @{name} must run on the frame trampoline"
        )

    # Everything the trampoline needs to execute this record without
    # Python recursion: it pushes an explicit frame where the recursive
    # engine recursed, and completes the post-return bookkeeping
    # (dst write, call timing) itself.
    h._call_meta = (arg_rs, dst, dfn, lat, uops, isv, port, id(inst))
    return h


# --- Decode ------------------------------------------------------------------

from ..ir.instructions import Instruction  # noqa: E402


class _Undecodable(Exception):
    """Operand cannot be pre-resolved (malformed IR): the record decodes
    to a raiser that reproduces the reference interpreter's Trap."""


def _make_trap(msg):
    return _make_raise(lambda msg=msg: Trap(msg))


def _base_deltas(inst, static):
    """Deltas for a record that raises before doing any work (the
    reference counts instructions / avx, then fails inside eval)."""
    base = {"instructions": 1}
    if static[0]:
        base["avx_instructions"] = 1
    return base, dict(base)


def _build_handler(dmod, rv, inst, costs, static, dst):
    opcode = inst.opcode
    ty = inst.type
    port = costs.ports.get(opcode)

    if isinstance(inst, BinaryInst):
        elem = ty.elem if ty.is_vector else ty
        if elem.is_float:
            fn2 = _float_op(opcode, elem.bits)
        else:
            fn2 = _int_op(opcode, elem.width)
        if ty.is_vector:
            fn2 = _vec_op(fn2)
            lat = costs.vector_latency(opcode, elem)
        else:
            lat = costs.scalar_latency(opcode)
        return _make_binary2(rv, inst, fn2, lat, static, port, dst, opcode)

    if isinstance(inst, ICmpInst):
        fun = _ICMP[inst.pred]
        oty = inst.lhs.type
        if oty.is_vector:
            width = T.bitwidth(oty.elem) if not oty.elem.is_float else 64
            fn2 = (lambda a, b, fun=fun, w=width:
                   tuple(1 if fun(x, y, w) else 0 for x, y in zip(a, b)))
            lat = costs.vector_latency("icmp")
        else:
            width = T.bitwidth(oty)
            fn2 = lambda a, b, fun=fun, w=width: 1 if fun(a, b, w) else 0
            lat = costs.scalar_latency("icmp")
        return _make_binary2(rv, inst, fn2, lat, static, port, dst, "icmp")

    if isinstance(inst, FCmpInst):
        fun = _FCMP[inst.pred]
        if inst.lhs.type.is_vector:
            fn2 = (lambda a, b, fun=fun:
                   tuple(1 if fun(x, y) else 0 for x, y in zip(a, b)))
            lat = costs.vector_latency("fcmp")
        else:
            fn2 = lambda a, b, fun=fun: 1 if fun(a, b) else 0
            lat = costs.scalar_latency("fcmp")
        return _make_binary2(rv, inst, fn2, lat, static, port, dst, "fcmp")

    if isinstance(inst, CastInst):
        src = inst.value.type
        if ty.is_vector:
            se, te = src.elem, ty.elem
            fn1 = (lambda v, opcode=opcode, se=se, te=te:
                   tuple(_cast_scalar(opcode, x, se, te) for x in v))
            lat = costs.vector_latency(opcode)
        else:
            fn1 = (lambda v, opcode=opcode, se=src, te=ty:
                   _cast_scalar(opcode, v, se, te))
            lat = costs.scalar_latency(opcode)
        return _make_unary(rv, inst, fn1, lat, static, port, dst, opcode)

    if isinstance(inst, LoadInst):
        return _make_load(rv, inst, costs, static, dst)
    if isinstance(inst, StoreInst):
        return _make_store(rv, inst, costs, static)
    if isinstance(inst, AllocaInst):
        return _make_alloca(inst, costs, static, dst)
    if isinstance(inst, GepInst):
        return _make_gep(rv, inst, costs, static, dst)

    if isinstance(inst, CallInst):
        callee = inst.callee
        if callee.is_intrinsic:
            return _make_call_intrinsic(rv, inst, costs, static, dst)
        if callee.is_declaration:
            # Reference: args evaluated, calls counted, then Trap.
            return _make_trap(f"call to undefined function @{callee.name}")
        return _make_call_defined(rv, inst, costs, static, dst,
                                  dmod.function(callee))

    if isinstance(inst, SelectInst):
        return _make_select(rv, inst, costs, static, dst)
    if isinstance(inst, ExtractElementInst):
        return _make_extract(rv, inst, costs, static, dst)
    if isinstance(inst, InsertElementInst):
        return _make_insert(rv, inst, costs, static, dst)
    if isinstance(inst, ShuffleVectorInst):
        return _make_shuffle(rv, inst, costs, static, dst)

    if isinstance(inst, BroadcastInst):
        count = ty.count
        fn1 = lambda v, count=count: (v,) * count
        lat = costs.vector_latency("broadcast")
        return _make_unary(rv, inst, fn1, lat, static, port, dst, "broadcast")

    return None  # interior phi / unknown class: caller emits a raiser


_TERMINATOR_OPCODES = ("br", "ret", "unreachable")


def _fill_block(dmod, dblock, bb, bmap, rv, slot_map):
    costs = dmod.costs
    insts = bb.instructions

    # Leading phis become parallel moves (edge-keyed, see phi pass in
    # _fill_function); the body starts after them.
    start = 0
    while start < len(insts) and isinstance(insts[start], PhiInst):
        start += 1

    handlers = []
    injects = []
    fulls = []
    partials = []
    opcodes = []
    terminator = None
    for inst in insts[start:]:
        if inst.opcode in _TERMINATOR_OPCODES:
            terminator = inst
            break
        static = _compute_static(inst, costs)
        dst = slot_map.get(id(inst), -1)
        full, partial = _deltas(inst, static)
        try:
            handler = _build_handler(dmod, rv, inst, costs, static, dst)
            if handler is None:
                # Interior phi or unknown instruction class: the
                # reference counts the instruction, then _exec_inst
                # raises TypeError.
                handler = _make_raise(
                    lambda inst=inst: TypeError(f"cannot execute {inst!r}")
                )
                full, partial = _base_deltas(inst, static)
            elif isinstance(inst, CallInst) and (
                    inst.callee.is_declaration
                    and not inst.callee.is_intrinsic):
                # Undefined-callee Trap fires after calls is counted.
                full, partial = _base_deltas(inst, static)
                full["calls"] = partial["calls"] = 1
        except _Undecodable as exc:
            # The reference Traps while evaluating operands, before any
            # opcode-specific counters (loads, calls, ...) are touched.
            handler = _make_trap(str(exc))
            full, partial = _base_deltas(inst, static)
        handlers.append(handler)
        injects.append(None if inst.type.is_void
                       else (slot_map[id(inst)], inst.type, inst))
        fulls.append(full)
        partials.append(partial)
        opcodes.append(inst.opcode)

    # Terminator ---------------------------------------------------------
    term_full = {}
    term_partial = {}
    if terminator is None:
        dblock.term_kind = _T_FALLOFF
        dblock.term = None
    else:
        tstatic = _compute_static(terminator, costs)
        term_full, term_partial = _deltas(terminator, tstatic)
        top = terminator.opcode
        if top == "unreachable":
            dblock.term_kind = _T_UNREACHABLE
            dblock.term = None
            opcodes.append(top)
        elif top == "br":
            lat = costs.scalar["br"]
            if terminator.is_conditional:
                try:
                    s, c = rv(terminator.cond)
                    dblock.term_kind = _T_CONDBR
                    dblock.term = (
                        s, c,
                        bmap[id(terminator.then_block)],
                        bmap[id(terminator.else_block)],
                        terminator, lat,
                    )
                    opcodes.append(top)
                except _Undecodable as exc:
                    # Reference counts the branch, then Traps evaluating
                    # the condition: emit a raiser and end the block.
                    handlers.append(_make_trap(str(exc)))
                    injects.append(None)
                    fulls.append(term_full)
                    partials.append(dict(term_full))
                    opcodes.append(top)
                    term_full = {}
                    term_partial = {}
                    dblock.term_kind = _T_FALLOFF
                    dblock.term = None
            else:
                dblock.term_kind = _T_BR
                dblock.term = (bmap[id(terminator.then_block)], lat)
                opcodes.append(top)
        else:  # ret
            lat = costs.scalar["ret"]
            uops = tstatic[2]
            if terminator.operands:
                try:
                    s, c = rv(terminator.operands[0])
                    dblock.term_kind = _T_RET
                    dblock.term = (s, c, lat, uops)
                    opcodes.append(top)
                except _Undecodable as exc:
                    handlers.append(_make_trap(str(exc)))
                    injects.append(None)
                    fulls.append(term_full)
                    partials.append(dict(term_full))
                    opcodes.append(top)
                    term_full = {}
                    term_partial = {}
                    dblock.term_kind = _T_FALLOFF
                    dblock.term = None
            else:
                dblock.term_kind = _T_RET_VOID
                dblock.term = (lat, uops)
                opcodes.append(top)

    # Static-delta tables ------------------------------------------------
    n = len(handlers)
    cum = {}
    cum_pairs = []
    for full in fulls:
        cum_pairs.append(tuple(cum.items()))
        for k, v in full.items():
            cum[k] = cum.get(k, 0) + v
    cum_pairs.append(tuple(cum.items()))
    for k, v in term_full.items():
        cum[k] = cum.get(k, 0) + v

    dblock.body = tuple(handlers)
    dblock.n = n
    dblock.inject = tuple(injects)
    dblock.call_meta = tuple(
        getattr(h, "_call_meta", None) for h in handlers
    )
    dblock.cum_pairs = tuple(cum_pairs)
    dblock.partial_pairs = tuple(
        [tuple(p.items()) for p in partials] + [tuple(term_partial.items())]
    )
    dblock.full_pairs = tuple(cum.items())
    dblock.opcodes = tuple(opcodes)
    items = {}
    for op in opcodes:
        items[op] = items.get(op, 0) + 1
    dblock.opcode_items = tuple(items.items())


def slot_layout(fn):
    """Register-file layout of ``fn``: args first, then every
    value-producing instruction (phis included) in block order.
    Returns ``(slot_map, nslots)`` with ``slot_map`` keyed by
    ``id(value)``. Deterministic per function — the decode pass and the
    segment compiler (repro.cpu.compiled) must agree on it."""
    slot_map = {}
    slot = 0
    for arg in fn.args:
        slot_map[id(arg)] = slot
        slot += 1
    for bb in fn.blocks:
        for inst in bb.instructions:
            if not inst.type.is_void:
                slot_map[id(inst)] = slot
                slot += 1
    return slot_map, slot


def operand_resolver(slot_map, globals_addr):
    """Build the operand resolver over a slot layout: op ->
    ``(slot, constant)``; slot < 0 means use the constant. Mirrors
    Machine._eval's resolution rules; raises :class:`_Undecodable` for
    malformed operands (the reference Traps on those at runtime)."""

    def rv(op):
        if isinstance(op, Constant):
            return (-1, op.value)
        s = slot_map.get(id(op))
        if s is not None:
            return (s, None)
        if isinstance(op, GlobalVariable):
            return (-1, globals_addr[op.name])
        if isinstance(op, UndefValue):
            if op.type.is_vector:
                return (-1, (0,) * op.type.count)
            return (-1, 0.0 if op.type.is_float else 0)
        if isinstance(op, Function):
            return (-1, op)
        if isinstance(op, (Instruction, Argument)):
            raise _Undecodable(f"use of undefined value {op.ref()}")
        raise _Undecodable(f"cannot evaluate operand {op!r}")

    return rv


def _fill_function(dmod, dfn):
    fn = dfn.fn
    slot_map, dfn.nslots = slot_layout(fn)
    rv = operand_resolver(slot_map, dmod.globals_addr)

    bmap = {}
    for bb in fn.blocks:
        db = DecodedBlock(bb.name)
        bmap[id(bb)] = db
        dfn.blocks.append(db)
    dfn.entry = bmap[id(fn.entry)]

    for bb in fn.blocks:
        _fill_block(dmod, bmap[id(bb)], bb, bmap, rv, slot_map)

    # Phi pass: per-edge parallel moves. A predecessor with no entry in
    # phi_moves reproduces the reference KeyError at runtime.
    for bb in fn.blocks:
        phis = []
        for inst in bb.instructions:
            if not isinstance(inst, PhiInst):
                break
            phis.append(inst)
        if not phis:
            continue
        db = bmap[id(bb)]
        db.phi_meta = tuple((phi.type, phi) for phi in phis)
        moves_by_pred = {}
        preds = []
        seen = set()
        for phi in phis:
            for pred in phi.incoming_blocks:
                if id(pred) in seen or id(pred) not in bmap:
                    continue
                seen.add(id(pred))
                preds.append(pred)
        for pred in preds:
            moves = []
            ok = True
            for phi in phis:
                try:
                    incoming = phi.incoming_for(pred)
                except KeyError:
                    ok = False
                    break
                try:
                    s, c = rv(incoming)
                except _Undecodable:
                    ok = False
                    break
                moves.append((slot_map[id(phi)], s, c))
            if ok:
                moves_by_pred[bmap[id(pred)]] = tuple(moves)
        db.phi_moves = moves_by_pred


# --- Module-level decode + cache ---------------------------------------------


class DecodedModule:
    """All decoded functions of one module under one cost model and one
    globals layout. Obtained via :func:`decoded_module` (cached on the
    module, keyed by its version stamp)."""

    def __init__(self, module: Module, costs, globals_addr: Dict[str, int]):
        self.module = module
        self.version = module.version
        self.costs = costs
        self.globals_addr = dict(globals_addr)
        self._functions: Dict[int, DecodedFunction] = {}

    def function(self, fn: Function) -> DecodedFunction:
        dfn = self._functions.get(id(fn))
        if dfn is None:
            # Register the shell before filling so recursive and
            # mutually-recursive calls can bind it.
            dfn = DecodedFunction(fn)
            self._functions[id(fn)] = dfn
            _fill_function(self, dfn)
        return dfn


def decoded_module(module: Module, costs,
                   globals_addr: Dict[str, int]) -> DecodedModule:
    """Fetch (or build) the decoded form of ``module`` under ``costs``.

    Cached on ``module._decoded_cache`` keyed by ``(version, id(costs))``
    — ``Module.bump_version`` clears the cache, and the cached
    DecodedModule keeps the cost model alive so its id cannot be
    recycled. A machine whose globals layout differs from the cached one
    (non-default memory config) gets a private, uncached decode.
    """
    cache = module._decoded_cache
    key = (module.version, id(costs))
    dmod = cache.get(key)
    if dmod is not None:
        if dmod.globals_addr == globals_addr:
            return dmod
        return DecodedModule(module, costs, globals_addr)
    stale = [k for k in cache if k[0] != module.version]
    for k in stale:
        del cache[k]
    dmod = DecodedModule(module, costs, globals_addr)
    cache[key] = dmod
    return dmod
