"""Memcached-like in-memory key-value store (paper §VI, Figure 15a).

An open-addressing hash table (fibonacci hashing, linear probing) over
a keyspace deliberately much larger than the L1/L2 caches: the paper
attributes ELZAR's good Memcached results (72-85% of native throughput)
to the store's poor memory locality, which hides the wrapper overhead
behind cache misses.

The request loop consumes a YCSB trace (ops + keys); throughput is
derived from simulated cycles-per-op and the thread model below
(near-linear scaling for both native and hardened builds, as in
Figure 15a).
"""

from __future__ import annotations

from dataclasses import dataclass
from ..cpu.intrinsics import rt_print_i64
from ..cpu.threads import ScalabilityProfile, runtime_at
from ..ir import types as T
from ..ir.builder import IRBuilder
from ..ir.module import Module
from .ycsb import OP_READ, YcsbTrace

#: Memcached scales near-linearly; a small sync share models connection
#: handling and LRU-lock contention.
PROFILE = ScalabilityProfile(parallel_fraction=0.97, sync_fraction=0.015,
                             sync_growth=0.12)

FIB = 11400714819323198485  # 2^64 / golden ratio


@dataclass
class KvApp:
    module: Module
    entry: str
    args: tuple
    expected_checksum: int


def build(trace: YcsbTrace, table_size: int = 1 << 12) -> KvApp:
    """Build the KV request-processing program for a YCSB trace."""
    if table_size & (table_size - 1):
        raise ValueError("table_size must be a power of two")
    nops = len(trace.ops)

    module = Module(f"kvstore.{trace.name}")
    gops = module.add_global("ops", T.ArrayType(T.I64, nops), list(trace.ops))
    gkeys = module.add_global("keys", T.ArrayType(T.I64, nops), list(trace.keys))
    gtk = module.add_global("table_keys", T.ArrayType(T.I64, table_size))
    gtv = module.add_global("table_vals", T.ArrayType(T.I64, table_size))
    print_i64 = rt_print_i64(module)

    # put(key, value): insert or update; returns slot index.
    put = module.add_function("kv_put", T.FunctionType(T.I64, (T.I64, T.I64)),
                              ["key", "value"])
    b = IRBuilder()
    b.position_at_end(put.append_block("entry"))
    key, value = put.args
    stored_key = b.add(key, b.i64(1))  # avoid the 0 = empty sentinel
    h = b.lshr(b.mul(stored_key, b.i64(FIB)), b.i64(64 - table_size.bit_length() + 1))
    probe = b.begin_loop(b.i64(0), b.i64(table_size), name="probe")
    slot = b.and_(b.add(h, probe.index), b.i64(table_size - 1))
    cur = b.load(T.I64, b.gep(T.I64, gtk, slot))
    empty = b.icmp("eq", cur, b.i64(0))
    match = b.icmp("eq", cur, stored_key)
    hit = b.or_(empty, match)
    state = b.begin_if(hit)
    b.store(stored_key, b.gep(T.I64, gtk, slot))
    b.store(value, b.gep(T.I64, gtv, slot))
    b.ret(slot)
    b.position_at_end(state.merge)
    b.end_loop(probe)
    b.ret(b.i64(-1))  # table full

    # get(key): value or 0.
    get = module.add_function("kv_get", T.FunctionType(T.I64, (T.I64,)), ["key"])
    b.position_at_end(get.append_block("entry"))
    (gkey,) = get.args
    stored_key = b.add(gkey, b.i64(1))
    h = b.lshr(b.mul(stored_key, b.i64(FIB)), b.i64(64 - table_size.bit_length() + 1))
    probe = b.begin_loop(b.i64(0), b.i64(table_size), name="probe")
    slot = b.and_(b.add(h, probe.index), b.i64(table_size - 1))
    cur = b.load(T.I64, b.gep(T.I64, gtk, slot))
    match = b.icmp("eq", cur, stored_key)
    state = b.begin_if(match)
    b.ret(b.load(T.I64, b.gep(T.I64, gtv, slot)))
    b.position_at_end(state.merge)
    empty = b.icmp("eq", cur, b.i64(0))
    state2 = b.begin_if(empty)
    b.ret(b.i64(0))
    b.position_at_end(state2.merge)
    b.end_loop(probe)
    b.ret(b.i64(0))

    # main(nops): preload the keyspace, then serve the trace.
    fn = module.add_function("main", T.FunctionType(T.I64, (T.I64, T.I64)),
                             ["nops", "keyspace"])
    b.position_at_end(fn.append_block("entry"))
    nops_arg, keyspace_arg = fn.args
    pre = b.begin_loop(b.i64(0), keyspace_arg, name="preload")
    b.call(put, [pre.index, b.mul(pre.index, b.i64(3))])
    b.end_loop(pre)

    serve = b.begin_loop(b.i64(0), nops_arg, name="op")
    checksum = b.loop_phi(serve, b.i64(0), "checksum")
    op = b.load(T.I64, b.gep(T.I64, gops, serve.index))
    k = b.load(T.I64, b.gep(T.I64, gkeys, serve.index))
    is_read = b.icmp("eq", op, b.i64(OP_READ))
    state = b.begin_if(is_read, with_else=True)
    got = b.call(get, [k])
    b.begin_else(state)
    slot = b.call(put, [k, b.add(k, serve.index)])
    b.end_if(state)
    merged = b.phi(T.I64, "merged")
    merged.add_incoming(got, state.then_end)
    merged.add_incoming(slot, state.else_block)
    b.set_loop_next(serve, checksum, b.add(checksum, merged))
    b.end_loop(serve)
    b.call(print_i64, [checksum])
    b.ret(checksum)

    expected = _reference(trace, table_size)
    return KvApp(module, "main", (nops, trace.keyspace), expected)


def _reference(trace: YcsbTrace, table_size: int) -> int:
    mask = table_size - 1
    shift = 64 - table_size.bit_length() + 1
    tk = [0] * table_size
    tv = [0] * table_size

    def put(key: int, value: int) -> int:
        sk = key + 1
        h = ((sk * FIB) & ((1 << 64) - 1)) >> shift
        for i in range(table_size):
            slot = (h + i) & mask
            if tk[slot] == 0 or tk[slot] == sk:
                tk[slot] = sk
                tv[slot] = value
                return slot
        return -1

    def get(key: int) -> int:
        sk = key + 1
        h = ((sk * FIB) & ((1 << 64) - 1)) >> shift
        for i in range(table_size):
            slot = (h + i) & mask
            if tk[slot] == sk:
                return tv[slot]
            if tk[slot] == 0:
                return 0
        return 0

    for k in range(trace.keyspace):
        put(k, k * 3)
    checksum = 0
    for i, (op, k) in enumerate(zip(trace.ops, trace.keys)):
        if op == OP_READ:
            checksum += get(k)
        else:
            checksum += put(k, k + i)
    checksum &= (1 << 64) - 1
    return checksum - (1 << 64) if checksum >= 1 << 63 else checksum


def throughput(cycles_per_op: float, threads: int,
               clock_ghz: float = 2.0) -> float:
    """Requests/second at ``threads`` threads (Figure 15a model): each
    thread serves requests independently; the profile's sync share
    covers the shared LRU/connection handling."""
    total_ops = 1.0
    cycles = runtime_at(cycles_per_op * total_ops, threads, PROFILE)
    return total_ops / cycles * clock_ghz * 1e9
