"""Apache-like static web server (paper §VI, Figure 15c).

Per request: parse a small HTTP-ish header (byte scanning, hardened
application code), then send a large static page. The page copy stands
for Apache's reliance on third-party libraries and the kernel network
stack — the paper attributes ELZAR's good Apache throughput (~85% of
native) to exactly that unhardened share, so ``sendfile`` is placed on
the hardening passes' exclude list (via :data:`THIRD_PARTY`).

The paper's client repeatedly requests a 1 MB page; we scale the page
to simulation size while keeping the hardened-to-unhardened
instruction ratio small, as in the original.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cpu.intrinsics import rt_print_i64
from ..cpu.threads import ScalabilityProfile, runtime_at
from ..ir import types as T
from ..ir.builder import IRBuilder
from ..ir.module import Module
from ..workloads.common import rng

#: Functions treated as third-party (left unhardened), §IV-A / §VI.
THIRD_PARTY = frozenset({"sendfile"})

#: Apache's worker model scales near-linearly to 16 threads.
PROFILE = ScalabilityProfile(parallel_fraction=0.98, sync_fraction=0.01,
                             sync_growth=0.08)

HEADER_LEN = 64


@dataclass
class WebApp:
    module: Module
    entry: str
    args: tuple
    expected_checksum: int


def build(nrequests: int = 40, page_size: int = 8192) -> WebApp:
    r = rng(67)
    page = [int(x) for x in r.randint(0, 256, size=page_size)]
    # Requests: "GET /pageN" encoded as header bytes; N selects an offset.
    headers = []
    for i in range(nrequests):
        line = f"GET /page{i % 7} HTTP/1.1".ljust(HEADER_LEN)[:HEADER_LEN]
        headers.extend(ord(c) for c in line)

    module = Module("webserver")
    gpage = module.add_global("page", T.ArrayType(T.I8, page_size), page)
    gout = module.add_global("outbuf", T.ArrayType(T.I8, page_size))
    ghdrs = module.add_global(
        "headers", T.ArrayType(T.I8, nrequests * HEADER_LEN), headers
    )
    print_i64 = rt_print_i64(module)

    # sendfile(dst, src, n): the unhardened bulk copy (kernel stand-in).
    sendfile = module.add_function(
        "sendfile", T.FunctionType(T.I64, (T.PTR, T.PTR, T.I64)), ["dst", "src", "n"]
    )
    b = IRBuilder()
    b.position_at_end(sendfile.append_block("entry"))
    dst, src, n = sendfile.args
    cp = b.begin_loop(b.i64(0), n)
    sent = b.loop_phi(cp, b.i64(0), "sent")
    byte = b.load(T.I8, b.gep(T.I8, src, cp.index))
    b.store(byte, b.gep(T.I8, dst, cp.index))
    b.set_loop_next(cp, sent, b.add(sent, b.i64(1)))
    b.end_loop(cp)
    b.ret(sent)

    # parse_request(hdr) -> requested page index (digit after "/page").
    parse = module.add_function(
        "parse_request", T.FunctionType(T.I64, (T.PTR,)), ["hdr"]
    )
    b.position_at_end(parse.append_block("entry"))
    (hdr,) = parse.args
    scan = b.begin_loop(b.i64(0), b.i64(HEADER_LEN - 1), name="scan")
    found = b.loop_phi(scan, b.i64(-1), "found")
    ch = b.load(T.I8, b.gep(T.I8, hdr, scan.index))
    is_slash = b.icmp("eq", ch, b.i8(ord("/")))
    unset = b.icmp("eq", found, b.i64(-1))
    # Track the position after the *first* '/' ("/pageN ...").
    take = b.and_(b.zext(is_slash, T.I64), b.zext(unset, T.I64))
    hit = b.icmp("eq", take, b.i64(1))
    candidate = b.select(hit, b.add(scan.index, b.i64(1)), found)
    b.set_loop_next(scan, found, candidate)
    b.end_loop(scan)
    # found points at "page7..."; the digit is 4 bytes later.
    digit_pos = b.add(found, b.i64(4))
    digit = b.load(T.I8, b.gep(T.I8, hdr, digit_pos))
    b.ret(b.sub(b.zext(digit, T.I64), b.i64(ord("0"))))

    # main(nrequests, page_size).
    fn = module.add_function(
        "main", T.FunctionType(T.I64, (T.I64, T.I64)), ["nreq", "page_size"]
    )
    b.position_at_end(fn.append_block("entry"))
    nreq, psize = fn.args
    serve = b.begin_loop(b.i64(0), nreq, name="req")
    checksum = b.loop_phi(serve, b.i64(0), "checksum")
    hdr_ptr = b.gep(T.I8, ghdrs, b.mul(serve.index, b.i64(HEADER_LEN)))
    page_index = b.call(parse, [hdr_ptr])
    # Offset into the page so different requests copy different windows.
    chunk = b.sdiv(psize, b.i64(8))
    offset = b.mul(page_index, chunk)
    src = b.gep(T.I8, gpage, offset)
    sent = b.call(sendfile, [gout, src, chunk])
    b.set_loop_next(serve, checksum, b.add(checksum, b.add(sent, page_index)))
    b.end_loop(serve)
    b.call(print_i64, [checksum])
    b.ret(checksum)

    chunk = page_size // 8
    expected = sum(chunk + (i % 7) for i in range(nrequests))
    return WebApp(module, "main", (nrequests, page_size), expected)


def throughput(cycles_per_req: float, threads: int,
               clock_ghz: float = 2.0) -> float:
    """Requests/second at ``threads`` worker threads (Figure 15c)."""
    cycles = runtime_at(cycles_per_req, threads, PROFILE)
    return 1.0 / cycles * clock_ghz * 1e9
