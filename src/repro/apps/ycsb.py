"""YCSB-style workload generator (paper §VI).

The paper drives Memcached and SQLite3 with two "extreme" YCSB mixes:

- **Workload A**: 50% reads / 50% updates, zipfian key distribution;
- **Workload D**: 95% reads / 5% inserts, "latest" distribution (reads
  concentrate on recently inserted keys).

The generator emits deterministic (seeded) arrays of operation codes
and key indices that the IR applications consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

OP_READ = 0
OP_UPDATE = 1
OP_INSERT = 2


@dataclass
class YcsbTrace:
    name: str
    ops: List[int]
    keys: List[int]
    #: Size of the preloaded key space.
    keyspace: int


def zipf_probabilities(n: int, theta: float = 0.99) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=float)
    weights = 1.0 / np.power(ranks, theta)
    return weights / weights.sum()


def workload_a(nops: int, keyspace: int, seed: int = 100) -> YcsbTrace:
    """50/50 read/update, zipfian-distributed keys."""
    r = np.random.RandomState(seed)
    probs = zipf_probabilities(keyspace)
    keys = r.choice(keyspace, size=nops, p=probs)
    ops = r.choice([OP_READ, OP_UPDATE], size=nops, p=[0.5, 0.5])
    return YcsbTrace("A", [int(o) for o in ops], [int(k) for k in keys], keyspace)


def workload_d(nops: int, keyspace: int, seed: int = 101) -> YcsbTrace:
    """95% reads / 5% inserts; reads target the most recent keys.

    Inserted keys extend the keyspace; each read picks a key at a
    geometrically distributed distance behind the newest key.
    """
    r = np.random.RandomState(seed)
    ops: List[int] = []
    keys: List[int] = []
    newest = keyspace - 1
    for _ in range(nops):
        if r.rand() < 0.05:
            newest += 1
            ops.append(OP_INSERT)
            keys.append(newest)
        else:
            back = int(r.geometric(0.15)) - 1
            key = max(0, newest - back)
            ops.append(OP_READ)
            keys.append(key)
    return YcsbTrace("D", ops, keys, keyspace)


def trace_by_name(name: str, nops: int, keyspace: int) -> YcsbTrace:
    if name.upper() == "A":
        return workload_a(nops, keyspace)
    if name.upper() == "D":
        return workload_d(nops, keyspace)
    raise KeyError(f"unknown YCSB workload {name!r} (have A, D)")
