"""repro.apps — the paper's three case studies (§VI, Figure 15):
a Memcached-like KV store, a SQLite3-like embedded database, and an
Apache-like static web server, driven by a YCSB-style generator."""

from . import kvstore, sqldb, webserver
from .ycsb import (
    OP_INSERT,
    OP_READ,
    OP_UPDATE,
    YcsbTrace,
    trace_by_name,
    workload_a,
    workload_d,
    zipf_probabilities,
)

__all__ = [
    "OP_INSERT",
    "OP_READ",
    "OP_UPDATE",
    "YcsbTrace",
    "kvstore",
    "sqldb",
    "trace_by_name",
    "webserver",
    "workload_a",
    "workload_d",
    "zipf_probabilities",
]
