"""SQLite3-like embedded database (paper §VI, Figure 15b).

An in-memory table: a sorted key column searched by binary search
(chains of dependent loads and compares) plus an unsorted append tail
scanned linearly — the "high number of locally near loads and stores,
as well as function calls" the paper blames for ELZAR reaching only
20-30% of native throughput on SQLite3.

SQLite3 is thread-safe but not concurrent: a global lock serializes
every operation, so throughput *decreases* as threads are added (the
paper's "reverse scalability curve"); :func:`throughput` models that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..cpu.intrinsics import rt_print_i64
from ..ir import types as T
from ..ir.builder import IRBuilder
from ..ir.module import Module
from .ycsb import OP_READ, YcsbTrace

#: Per-extra-thread lock-contention cost (fraction of an op's work).
LOCK_CONTENTION = 0.12


@dataclass
class SqlApp:
    module: Module
    entry: str
    args: tuple
    expected_checksum: int


def build(trace: YcsbTrace, tail_capacity: int = 2048) -> SqlApp:
    nops = len(trace.ops)
    nsorted = trace.keyspace

    module = Module(f"sqldb.{trace.name}")
    gops = module.add_global("ops", T.ArrayType(T.I64, nops), list(trace.ops))
    gkeys = module.add_global("keys", T.ArrayType(T.I64, nops), list(trace.keys))
    # Sorted region: keys 0..keyspace-1 with values 2k+5.
    gskeys = module.add_global(
        "sorted_keys", T.ArrayType(T.I64, nsorted), list(range(nsorted))
    )
    gsvals = module.add_global(
        "sorted_vals", T.ArrayType(T.I64, nsorted), [2 * k + 5 for k in range(nsorted)]
    )
    gtkeys = module.add_global("tail_keys", T.ArrayType(T.I64, tail_capacity))
    gtvals = module.add_global("tail_vals", T.ArrayType(T.I64, tail_capacity))
    print_i64 = rt_print_i64(module)

    # select(key, nsorted, tail_len) -> value or -1.
    select = module.add_function(
        "sql_select", T.FunctionType(T.I64, (T.I64, T.I64, T.I64)),
        ["key", "nsorted", "tail_len"],
    )
    b = IRBuilder()
    b.position_at_end(select.append_block("entry"))
    key, nsorted_arg, tail_len = select.args

    # Binary search over the sorted region: a bounded bisection loop
    # (enough iterations for the build-time keyspace); once the range
    # closes or the key is found, remaining iterations are no-ops.
    bisect_steps = max(2, nsorted.bit_length() + 1)
    lo_slot = b.alloca(T.I64)
    hi_slot = b.alloca(T.I64)
    found_slot = b.alloca(T.I64)
    b.store(b.i64(0), lo_slot)
    b.store(nsorted_arg, hi_slot)
    b.store(b.i64(-1), found_slot)
    bs = b.begin_loop(b.i64(0), b.i64(bisect_steps), name="bisect")
    lo = b.load(T.I64, lo_slot)
    hi = b.load(T.I64, hi_slot)
    open_range = b.icmp("slt", lo, hi)
    cont = b.begin_if(open_range)
    mid = b.sdiv(b.add(lo, hi), b.i64(2))
    mkey = b.load(T.I64, b.gep(T.I64, gskeys, mid))
    eq = b.icmp("eq", mkey, key)
    hit = b.begin_if(eq, with_else=True)
    b.store(b.load(T.I64, b.gep(T.I64, gsvals, mid)), found_slot)
    b.store(b.i64(0), lo_slot)
    b.store(b.i64(0), hi_slot)
    b.begin_else(hit)
    below = b.icmp("slt", mkey, key)
    arm = b.begin_if(below, with_else=True)
    b.store(b.add(mid, b.i64(1)), lo_slot)
    b.begin_else(arm)
    b.store(mid, hi_slot)
    b.end_if(arm)
    b.end_if(hit)
    b.end_if(cont)
    b.end_loop(bs)

    found = b.load(T.I64, found_slot)
    got = b.icmp("sge", found, b.i64(0))
    state = b.begin_if(got)
    b.ret(found)
    b.position_at_end(state.merge)

    # Linear scan of the tail (most recent first would need reverse
    # iteration; forward scan returns the last match via a slot).
    match_slot = b.alloca(T.I64)
    b.store(b.i64(-1), match_slot)
    sc = b.begin_loop(b.i64(0), tail_len, name="scan")
    tk = b.load(T.I64, b.gep(T.I64, gtkeys, sc.index))
    same = b.icmp("eq", tk, key)
    st2 = b.begin_if(same)
    b.store(b.load(T.I64, b.gep(T.I64, gtvals, sc.index)), match_slot)
    b.end_if(st2)
    b.end_loop(sc)
    b.ret(b.load(T.I64, match_slot))

    # main(nops, keyspace): run the trace.
    fn = module.add_function(
        "main", T.FunctionType(T.I64, (T.I64, T.I64)), ["nops", "keyspace"]
    )
    b.position_at_end(fn.append_block("entry"))
    nops_arg, keyspace_arg = fn.args

    serve = b.begin_loop(b.i64(0), nops_arg, name="op")
    checksum = b.loop_phi(serve, b.i64(0), "checksum")
    tail_len = b.loop_phi(serve, b.i64(0), "tail_len")
    op = b.load(T.I64, b.gep(T.I64, gops, serve.index))
    k = b.load(T.I64, b.gep(T.I64, gkeys, serve.index))
    is_read = b.icmp("eq", op, b.i64(OP_READ))
    state = b.begin_if(is_read, with_else=True)
    value = b.call(select, [k, keyspace_arg, tail_len])
    b.begin_else(state)
    # insert/update: append to the tail.
    b.store(k, b.gep(T.I64, gtkeys, tail_len))
    appended = b.add(k, b.i64(17))
    b.store(appended, b.gep(T.I64, gtvals, tail_len))
    b.end_if(state)
    merged = b.phi(T.I64, "merged")
    merged.add_incoming(value, state.then_end)
    merged.add_incoming(appended, state.else_block)
    tail_next = b.select(is_read, tail_len, b.add(tail_len, b.i64(1)))
    b.set_loop_next(serve, checksum, b.add(checksum, merged))
    b.set_loop_next(serve, tail_len, tail_next)
    b.end_loop(serve)
    b.call(print_i64, [checksum])
    b.ret(checksum)

    expected = _reference(trace)
    return SqlApp(module, "main", (nops, trace.keyspace), expected)


def _reference(trace: YcsbTrace) -> int:
    sorted_vals = {k: 2 * k + 5 for k in range(trace.keyspace)}
    tail: List = []
    checksum = 0
    for op, k in zip(trace.ops, trace.keys):
        if op == OP_READ:
            value = -1
            if k in sorted_vals:
                value = sorted_vals[k]
            else:
                for tk, tv in tail:
                    if tk == k:
                        value = tv
            checksum += value
        else:
            tail.append((k, k + 17))
            checksum += k + 17
    checksum &= (1 << 64) - 1
    return checksum - (1 << 64) if checksum >= 1 << 63 else checksum


def throughput(cycles_per_op: float, threads: int,
               clock_ghz: float = 2.0) -> float:
    """Ops/second at ``threads`` threads: the global lock serializes all
    work, and each extra thread adds contention overhead, so throughput
    falls as threads rise (Figure 15b's reverse scalability)."""
    effective = cycles_per_op * (1.0 + LOCK_CONTENTION * (threads - 1))
    return 1.0 / effective * clock_ghz * 1e9
