"""Core value classes for the repro IR: constants, arguments, globals.

Every IR node that can appear as an operand is a :class:`Value` with a
``type`` and an optional ``name``. Instructions subclass Value in
:mod:`repro.ir.instructions`; functions in :mod:`repro.ir.function`.
"""

from __future__ import annotations

from typing import Tuple, Union

from . import types as T


class Value:
    """Base of the IR value hierarchy."""

    def __init__(self, ty: T.Type, name: str = ""):
        self.type = ty
        self.name = name

    def ref(self) -> str:
        """The textual reference used when this value appears as an operand."""
        return f"%{self.name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.type} {self.ref()}>"


class Constant(Value):
    """An immediate constant: int, float, or a vector of those.

    ``value`` is a Python int/float for scalars and a tuple for vector
    constants. Integer constants are stored in their *unsigned*
    width-masked representation; helpers on the interpreter side
    convert to signed views where needed.
    """

    def __init__(self, ty: T.Type, value: Union[int, float, Tuple]):
        super().__init__(ty)
        if ty.is_vector:
            value = tuple(_normalize_scalar(ty.elem, v) for v in value)
            if len(value) != ty.count:
                raise ValueError(
                    f"vector constant arity {len(value)} != type arity {ty.count}"
                )
        else:
            value = _normalize_scalar(ty, value)
        self.value = value

    def ref(self) -> str:
        if self.type.is_vector:
            elems = ", ".join(
                f"{self.type.elem} {_scalar_text(self.type.elem, v)}"
                for v in self.value
            )
            return f"<{elems}>"
        return _scalar_text(self.type, self.value)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Constant)
            and self.type == other.type
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash((self.type, self.value))


def _normalize_scalar(ty: T.Type, value: Union[int, float]) -> Union[int, float]:
    if ty.is_int:
        return int(value) & ((1 << ty.width) - 1)
    if ty.is_float:
        return float(value)
    if ty.is_pointer:
        return int(value) & ((1 << 64) - 1)
    raise TypeError(f"cannot build constant of type {ty}")


def _scalar_text(ty: T.Type, value: Union[int, float]) -> str:
    if ty.is_float:
        return repr(float(value))
    return str(value)


class UndefValue(Value):
    """An undefined value (used for padding shuffle masks, etc.)."""

    def ref(self) -> str:
        return "undef"


class Argument(Value):
    """A formal parameter of a function."""

    def __init__(self, ty: T.Type, name: str, index: int, parent=None):
        super().__init__(ty, name)
        self.index = index
        self.parent = parent


class GlobalVariable(Value):
    """A module-level variable; its value is a pointer to the storage.

    ``initializer`` is either None (zero-initialized), a bytes object,
    a list of scalar constants matching ``content_type``, or a numpy
    array (converted at layout time by the machine's memory manager).
    """

    def __init__(self, name: str, content_type: T.Type, initializer=None,
                 constant: bool = False):
        super().__init__(T.PTR, name)
        self.content_type = content_type
        self.initializer = initializer
        self.constant = constant

    def ref(self) -> str:
        return f"@{self.name}"


def const_int(value: int, ty: T.Type = T.I64) -> Constant:
    return Constant(ty, value)


def const_float(value: float, ty: T.Type = T.F64) -> Constant:
    return Constant(ty, value)


def const_splat(scalar: Constant, count: int) -> Constant:
    """Vector constant with ``count`` copies of ``scalar``."""
    return Constant(T.vector(scalar.type, count), (scalar.value,) * count)


def const_bool(value: bool) -> Constant:
    return Constant(T.I1, 1 if value else 0)
