"""Opcode names and classification sets for the repro IR.

The hardening passes (ELZAR, SWIFT-R) are driven by a classification of
instructions into *replicable* computation and *synchronization*
instructions (loads, stores, calls, branches, returns, atomics) —
see paper §III-B. The sets below are the single source of truth for
that classification.
"""

# Integer binary operations (two's complement, width-masked).
INT_BINARY_OPS = frozenset(
    {
        "add",
        "sub",
        "mul",
        "sdiv",
        "udiv",
        "srem",
        "urem",
        "and",
        "or",
        "xor",
        "shl",
        "lshr",
        "ashr",
    }
)

# Floating-point binary operations.
FLOAT_BINARY_OPS = frozenset({"fadd", "fsub", "fmul", "fdiv", "frem"})

BINARY_OPS = INT_BINARY_OPS | FLOAT_BINARY_OPS

# AVX2 has no packed integer division/remainder; ELZAR falls back to
# per-lane scalar division for these (paper §III-C Step 1, §VII-A).
AVX_MISSING_OPS = frozenset({"sdiv", "udiv", "srem", "urem"})

# Cast operations.
CAST_OPS = frozenset(
    {
        "trunc",
        "zext",
        "sext",
        "fptrunc",
        "fpext",
        "fptosi",
        "fptoui",
        "sitofp",
        "uitofp",
        "bitcast",
        "ptrtoint",
        "inttoptr",
    }
)

# Casts AVX2 implements poorly or not at all (truncation family —
# paper §VII-A measures an 8x microbenchmark overhead for truncations).
AVX_SLOW_CASTS = frozenset({"trunc", "fptosi", "fptoui"})

ICMP_PREDICATES = frozenset(
    {"eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge"}
)
FCMP_PREDICATES = frozenset(
    {"oeq", "one", "olt", "ole", "ogt", "oge", "ord", "uno"}
)

TERMINATOR_OPS = frozenset({"br", "ret", "unreachable"})

MEMORY_OPS = frozenset({"load", "store", "alloca"})

# Vector-manipulation operations (map to AVX extract/broadcast/shuffle).
VECTOR_OPS = frozenset(
    {"extractelement", "insertelement", "shufflevector", "broadcast"}
)

OTHER_OPS = frozenset({"icmp", "fcmp", "call", "phi", "select", "gep"})

ALL_OPS = (
    BINARY_OPS | CAST_OPS | TERMINATOR_OPS | MEMORY_OPS | VECTOR_OPS | OTHER_OPS
)

# --- Hardening classification (paper §III-B) --------------------------------
#
# Replicable: pure data-flow computation; ELZAR turns these into vector
# ops, SWIFT-R triplicates them.
REPLICABLE_OPS = BINARY_OPS | CAST_OPS | frozenset({"icmp", "fcmp", "select", "gep", "phi"})

# Synchronization: interact with memory, control flow, or the outside
# world; they stay scalar, with wrappers + checks around them.
SYNC_OPS = frozenset({"load", "store", "call", "br", "ret", "alloca", "unreachable"})


def is_replicable(opcode: str) -> bool:
    return opcode in REPLICABLE_OPS


def is_sync(opcode: str) -> bool:
    return opcode in SYNC_OPS
