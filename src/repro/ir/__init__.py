"""repro.ir — a small typed SSA intermediate representation.

Modelled on LLVM (opaque pointers, phis, first-class vectors) and rich
enough to express the ELZAR/SWIFT-R hardening transformations the paper
describes, plus the workloads they are evaluated on.
"""

from . import opcodes, types
from .builder import IRBuilder, IfState, LoopState
from .cfg import DominatorTree, Loop, find_natural_loops, reverse_postorder
from .function import BasicBlock, Function
from .instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    BroadcastInst,
    CallInst,
    CastInst,
    ExtractElementInst,
    FCmpInst,
    GepInst,
    ICmpInst,
    InsertElementInst,
    Instruction,
    LoadInst,
    PhiInst,
    RetInst,
    SelectInst,
    ShuffleVectorInst,
    StoreInst,
    UnreachableInst,
)
from .module import Module
from .parser import ParseError, parse_module
from .printer import format_function, format_instruction, format_module
from .values import (
    Argument,
    Constant,
    GlobalVariable,
    UndefValue,
    Value,
    const_bool,
    const_float,
    const_int,
    const_splat,
)
from .verifier import VerificationError, verify_function, verify_module

__all__ = [
    "Argument",
    "AllocaInst",
    "BasicBlock",
    "BinaryInst",
    "BranchInst",
    "BroadcastInst",
    "CallInst",
    "CastInst",
    "Constant",
    "DominatorTree",
    "ExtractElementInst",
    "FCmpInst",
    "Function",
    "GepInst",
    "GlobalVariable",
    "ICmpInst",
    "IRBuilder",
    "IfState",
    "InsertElementInst",
    "Instruction",
    "LoadInst",
    "Loop",
    "LoopState",
    "Module",
    "ParseError",
    "PhiInst",
    "RetInst",
    "SelectInst",
    "ShuffleVectorInst",
    "StoreInst",
    "UndefValue",
    "UnreachableInst",
    "Value",
    "VerificationError",
    "const_bool",
    "const_float",
    "const_int",
    "const_splat",
    "find_natural_loops",
    "format_function",
    "format_instruction",
    "format_module",
    "opcodes",
    "parse_module",
    "reverse_postorder",
    "types",
    "verify_function",
    "verify_module",
]
