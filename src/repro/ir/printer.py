"""Textual form of the IR (LLVM-flavoured), round-trippable with
:mod:`repro.ir.parser`."""

from __future__ import annotations

from typing import List

from . import types as T
from .function import BasicBlock, Function
from .instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    BroadcastInst,
    CallInst,
    CastInst,
    ExtractElementInst,
    FCmpInst,
    GepInst,
    ICmpInst,
    InsertElementInst,
    Instruction,
    LoadInst,
    PhiInst,
    RetInst,
    SelectInst,
    ShuffleVectorInst,
    StoreInst,
    UnreachableInst,
)
from .module import Module
from .values import GlobalVariable, Value


def _operand(v: Value) -> str:
    """``type ref`` text for an operand position."""
    return f"{v.type} {v.ref()}"


def format_instruction(inst: Instruction) -> str:
    lhs = f"{inst.ref()} = " if not inst.type.is_void else ""
    if isinstance(inst, BinaryInst):
        return f"{lhs}{inst.opcode} {inst.type} {inst.lhs.ref()}, {inst.rhs.ref()}"
    if isinstance(inst, ICmpInst):
        return (
            f"{lhs}icmp {inst.pred} {inst.lhs.type} "
            f"{inst.lhs.ref()}, {inst.rhs.ref()}"
        )
    if isinstance(inst, FCmpInst):
        return (
            f"{lhs}fcmp {inst.pred} {inst.lhs.type} "
            f"{inst.lhs.ref()}, {inst.rhs.ref()}"
        )
    if isinstance(inst, CastInst):
        return f"{lhs}{inst.opcode} {_operand(inst.value)} to {inst.type}"
    if isinstance(inst, AllocaInst):
        return f"{lhs}alloca {inst.allocated_type}, i64 {inst.count}"
    if isinstance(inst, LoadInst):
        return f"{lhs}load {inst.type}, {_operand(inst.ptr)}"
    if isinstance(inst, StoreInst):
        return f"store {_operand(inst.value)}, {_operand(inst.ptr)}"
    if isinstance(inst, GepInst):
        return f"{lhs}gep {inst.elem_type}, {_operand(inst.ptr)}, {_operand(inst.index)}"
    if isinstance(inst, BranchInst):
        if inst.is_conditional:
            return (
                f"br {_operand(inst.cond)}, label %{inst.then_block.name}, "
                f"label %{inst.else_block.name}"
            )
        return f"br label %{inst.then_block.name}"
    if isinstance(inst, RetInst):
        if inst.value is None:
            return "ret void"
        return f"ret {_operand(inst.value)}"
    if isinstance(inst, UnreachableInst):
        return "unreachable"
    if isinstance(inst, CallInst):
        args = ", ".join(_operand(a) for a in inst.args)
        return f"{lhs}call {inst.type} @{inst.callee.name}({args})"
    if isinstance(inst, PhiInst):
        pairs = ", ".join(
            f"[ {v.ref()}, %{b.name} ]" for v, b in inst.incoming()
        )
        return f"{lhs}phi {inst.type} {pairs}"
    if isinstance(inst, SelectInst):
        return (
            f"{lhs}select {_operand(inst.cond)}, {_operand(inst.tval)}, "
            f"{_operand(inst.fval)}"
        )
    if isinstance(inst, ExtractElementInst):
        return f"{lhs}extractelement {_operand(inst.vec)}, {_operand(inst.index)}"
    if isinstance(inst, InsertElementInst):
        return (
            f"{lhs}insertelement {_operand(inst.vec)}, {_operand(inst.elem)}, "
            f"{_operand(inst.index)}"
        )
    if isinstance(inst, ShuffleVectorInst):
        mask = ", ".join(str(i) for i in inst.mask)
        return (
            f"{lhs}shufflevector {_operand(inst.v1)}, {_operand(inst.v2)}, "
            f"mask <{mask}>"
        )
    if isinstance(inst, BroadcastInst):
        return f"{lhs}broadcast {_operand(inst.scalar)}, {inst.type.count}"
    raise TypeError(f"cannot print instruction {inst!r}")


def format_block(block: BasicBlock) -> str:
    lines = [f"{block.name}:"]
    for inst in block.instructions:
        lines.append(f"  {format_instruction(inst)}")
    return "\n".join(lines)


def format_function(fn: Function) -> str:
    params = ", ".join(f"{a.type} %{a.name}" for a in fn.args)
    header = f"{fn.return_type} @{fn.name}({params})"
    if fn.is_declaration:
        return f"declare {header}"
    lines = [f"define {header} {{"]
    for block in fn.blocks:
        lines.append(format_block(block))
    lines.append("}")
    return "\n".join(lines)


def format_global(gv: GlobalVariable) -> str:
    kind = "constant" if gv.constant else "global"
    init = _format_initializer(gv)
    return f"@{gv.name} = {kind} {gv.content_type} {init}"


def _format_initializer(gv: GlobalVariable) -> str:
    init = gv.initializer
    if init is None:
        return "zeroinitializer"
    ty = gv.content_type
    if isinstance(init, (bytes, bytearray)):
        elems = ", ".join(f"i8 {b}" for b in init)
        return f"[{elems}]"
    if ty.is_array:
        elem = ty.elem
        parts = ", ".join(
            f"{elem} {_scalar_text(elem, v)}" for v in init
        )
        return f"[{parts}]"
    return _scalar_text(ty, init)


def _scalar_text(ty: T.Type, value) -> str:
    if ty.is_float:
        return repr(float(value))
    return str(int(value))


def format_module(module: Module) -> str:
    parts: List[str] = [f"; module {module.name}"]
    for gv in module.globals.values():
        parts.append(format_global(gv))
    for fn in module.functions.values():
        parts.append(format_function(fn))
    return "\n\n".join(parts) + "\n"
