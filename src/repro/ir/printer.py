"""Textual form of the IR (LLVM-flavoured), round-trippable with
:mod:`repro.ir.parser`."""

from __future__ import annotations

from typing import List

from . import types as T
from .function import BasicBlock, Function
from .instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    BroadcastInst,
    CallInst,
    CastInst,
    ExtractElementInst,
    FCmpInst,
    GepInst,
    ICmpInst,
    InsertElementInst,
    Instruction,
    LoadInst,
    PhiInst,
    RetInst,
    SelectInst,
    ShuffleVectorInst,
    StoreInst,
    UnreachableInst,
)
from .module import Module
from .values import GlobalVariable, Value


class _Namer:
    """Collision-safe printed names for one function.

    In-memory names need not be unique: workload builders may reuse an
    explicit name (two ``%merged`` in different blocks), and transforms
    applied to a *parsed* function restart the ``%tN`` counter over
    names the text already uses. References in memory are by identity,
    so the IR is unambiguous — but its printed form would not be.
    The namer walks the function once, keeps every first-seen name
    verbatim (collision-free functions print byte-identically), and
    deterministically renames later duplicates ``name.r2``, ``name.r3``
    … so the text parses back to the same value graph. Values and block
    labels are uniquified in separate namespaces, as the parser
    resolves ``label %x`` against blocks only.
    """

    def __init__(self, fn: Function):
        self._values: dict = {}  # id(value) -> printed name
        self._blocks: dict = {}  # id(block) -> printed name
        # The map is keyed by identity: hold references so no id is
        # reused while we print.
        self._pinned = []
        used: set = set()
        for arg in fn.args:
            self._values[id(arg)] = self._claim(arg.name or "arg", used)
            self._pinned.append(arg)
        block_used: set = set()
        for block in fn.blocks:
            self._blocks[id(block)] = self._claim(block.name or "bb",
                                                  block_used)
            self._pinned.append(block)
        for block in fn.blocks:
            for inst in block.instructions:
                if inst.type.is_void:
                    continue
                self._values[id(inst)] = self._claim(inst.name or "v", used)
                self._pinned.append(inst)

    @staticmethod
    def _claim(name: str, used: set) -> str:
        if name not in used:
            used.add(name)
            return name
        k = 2
        while f"{name}.r{k}" in used:
            k += 1
        unique = f"{name}.r{k}"
        used.add(unique)
        return unique

    def ref(self, v: Value) -> str:
        name = self._values.get(id(v))
        return f"%{name}" if name is not None else v.ref()

    def label(self, block: BasicBlock) -> str:
        return f"%{self._blocks.get(id(block), block.name)}"

    def block_name(self, block: BasicBlock) -> str:
        return self._blocks.get(id(block), block.name)


class _IdentityNamer:
    """Fallback for printing an instruction/block outside a function
    print (debugging): raw in-memory names, no uniquing."""

    def ref(self, v: Value) -> str:
        return v.ref()

    def label(self, block: BasicBlock) -> str:
        return f"%{block.name}"

    def block_name(self, block: BasicBlock) -> str:
        return block.name


def _operand(v: Value, n) -> str:
    """``type ref`` text for an operand position."""
    return f"{v.type} {n.ref(v)}"


def format_instruction(inst: Instruction, namer=None) -> str:
    n = namer if namer is not None else _IdentityNamer()
    lhs = f"{n.ref(inst)} = " if not inst.type.is_void else ""
    if isinstance(inst, BinaryInst):
        return (
            f"{lhs}{inst.opcode} {inst.type} "
            f"{n.ref(inst.lhs)}, {n.ref(inst.rhs)}"
        )
    if isinstance(inst, ICmpInst):
        return (
            f"{lhs}icmp {inst.pred} {inst.lhs.type} "
            f"{n.ref(inst.lhs)}, {n.ref(inst.rhs)}"
        )
    if isinstance(inst, FCmpInst):
        return (
            f"{lhs}fcmp {inst.pred} {inst.lhs.type} "
            f"{n.ref(inst.lhs)}, {n.ref(inst.rhs)}"
        )
    if isinstance(inst, CastInst):
        return f"{lhs}{inst.opcode} {_operand(inst.value, n)} to {inst.type}"
    if isinstance(inst, AllocaInst):
        return f"{lhs}alloca {inst.allocated_type}, i64 {inst.count}"
    if isinstance(inst, LoadInst):
        return f"{lhs}load {inst.type}, {_operand(inst.ptr, n)}"
    if isinstance(inst, StoreInst):
        return f"store {_operand(inst.value, n)}, {_operand(inst.ptr, n)}"
    if isinstance(inst, GepInst):
        return (
            f"{lhs}gep {inst.elem_type}, {_operand(inst.ptr, n)}, "
            f"{_operand(inst.index, n)}"
        )
    if isinstance(inst, BranchInst):
        if inst.is_conditional:
            return (
                f"br {_operand(inst.cond, n)}, "
                f"label {n.label(inst.then_block)}, "
                f"label {n.label(inst.else_block)}"
            )
        return f"br label {n.label(inst.then_block)}"
    if isinstance(inst, RetInst):
        if inst.value is None:
            return "ret void"
        return f"ret {_operand(inst.value, n)}"
    if isinstance(inst, UnreachableInst):
        return "unreachable"
    if isinstance(inst, CallInst):
        args = ", ".join(_operand(a, n) for a in inst.args)
        return f"{lhs}call {inst.type} @{inst.callee.name}({args})"
    if isinstance(inst, PhiInst):
        pairs = ", ".join(
            f"[ {n.ref(v)}, {n.label(b)} ]" for v, b in inst.incoming()
        )
        return f"{lhs}phi {inst.type} {pairs}"
    if isinstance(inst, SelectInst):
        return (
            f"{lhs}select {_operand(inst.cond, n)}, "
            f"{_operand(inst.tval, n)}, {_operand(inst.fval, n)}"
        )
    if isinstance(inst, ExtractElementInst):
        return (
            f"{lhs}extractelement {_operand(inst.vec, n)}, "
            f"{_operand(inst.index, n)}"
        )
    if isinstance(inst, InsertElementInst):
        return (
            f"{lhs}insertelement {_operand(inst.vec, n)}, "
            f"{_operand(inst.elem, n)}, {_operand(inst.index, n)}"
        )
    if isinstance(inst, ShuffleVectorInst):
        mask = ", ".join(str(i) for i in inst.mask)
        return (
            f"{lhs}shufflevector {_operand(inst.v1, n)}, "
            f"{_operand(inst.v2, n)}, mask <{mask}>"
        )
    if isinstance(inst, BroadcastInst):
        return f"{lhs}broadcast {_operand(inst.scalar, n)}, {inst.type.count}"
    raise TypeError(f"cannot print instruction {inst!r}")


def format_block(block: BasicBlock, namer=None) -> str:
    n = namer if namer is not None else _IdentityNamer()
    lines = [f"{n.block_name(block)}:"]
    for inst in block.instructions:
        lines.append(f"  {format_instruction(inst, n)}")
    return "\n".join(lines)


def format_function(fn: Function) -> str:
    if fn.is_declaration:
        params = ", ".join(f"{a.type} %{a.name}" for a in fn.args)
        return f"declare {fn.return_type} @{fn.name}({params})"
    namer = _Namer(fn)
    params = ", ".join(f"{a.type} {namer.ref(a)}" for a in fn.args)
    lines = [f"define {fn.return_type} @{fn.name}({params}) {{"]
    for block in fn.blocks:
        lines.append(format_block(block, namer))
    lines.append("}")
    return "\n".join(lines)


def format_global(gv: GlobalVariable) -> str:
    kind = "constant" if gv.constant else "global"
    init = _format_initializer(gv)
    return f"@{gv.name} = {kind} {gv.content_type} {init}"


def _format_initializer(gv: GlobalVariable) -> str:
    init = gv.initializer
    if init is None:
        return "zeroinitializer"
    ty = gv.content_type
    if isinstance(init, (bytes, bytearray)):
        elems = ", ".join(f"i8 {b}" for b in init)
        return f"[{elems}]"
    if ty.is_array:
        elem = ty.elem
        parts = ", ".join(
            f"{elem} {_scalar_text(elem, v)}" for v in init
        )
        return f"[{parts}]"
    return _scalar_text(ty, init)


def _scalar_text(ty: T.Type, value) -> str:
    if ty.is_float:
        return repr(float(value))
    return str(int(value))


def format_module(module: Module) -> str:
    parts: List[str] = [f"; module {module.name}"]
    for gv in module.globals.values():
        parts.append(format_global(gv))
    for fn in module.functions.values():
        parts.append(format_function(fn))
    return "\n\n".join(parts) + "\n"
