"""Instruction classes for the repro IR.

Instructions are Values; their operands are held in ``self.operands``
(a plain list) so that generic passes can walk and rewrite them without
knowing each subclass's field names. Subclasses expose named accessor
properties over that list.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from . import opcodes as OP
from . import types as T
from .values import Value


class Instruction(Value):
    opcode: str = "?"

    def __init__(self, ty: T.Type, operands: Sequence[Value], name: str = ""):
        super().__init__(ty, name)
        self.operands: List[Value] = list(operands)
        self.parent = None  # BasicBlock, set on insertion

    @property
    def is_terminator(self) -> bool:
        return self.opcode in OP.TERMINATOR_OPS

    def replace_operand(self, old: Value, new: Value) -> None:
        for i, op in enumerate(self.operands):
            if op is old:
                self.operands[i] = new


class BinaryInst(Instruction):
    """Integer/float binary arithmetic and bitwise operations."""

    def __init__(self, opcode: str, lhs: Value, rhs: Value, name: str = ""):
        if opcode not in OP.BINARY_OPS:
            raise ValueError(f"not a binary opcode: {opcode}")
        if lhs.type != rhs.type:
            raise TypeError(f"{opcode}: operand types differ: {lhs.type} vs {rhs.type}")
        super().__init__(lhs.type, [lhs, rhs], name)
        self.opcode = opcode

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


class ICmpInst(Instruction):
    opcode = "icmp"

    def __init__(self, pred: str, lhs: Value, rhs: Value, name: str = ""):
        if pred not in OP.ICMP_PREDICATES:
            raise ValueError(f"bad icmp predicate: {pred}")
        if lhs.type != rhs.type:
            raise TypeError(f"icmp: operand types differ: {lhs.type} vs {rhs.type}")
        ty = T.vector(T.I1, lhs.type.count) if lhs.type.is_vector else T.I1
        super().__init__(ty, [lhs, rhs], name)
        self.pred = pred

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


class FCmpInst(Instruction):
    opcode = "fcmp"

    def __init__(self, pred: str, lhs: Value, rhs: Value, name: str = ""):
        if pred not in OP.FCMP_PREDICATES:
            raise ValueError(f"bad fcmp predicate: {pred}")
        if lhs.type != rhs.type:
            raise TypeError(f"fcmp: operand types differ: {lhs.type} vs {rhs.type}")
        ty = T.vector(T.I1, lhs.type.count) if lhs.type.is_vector else T.I1
        super().__init__(ty, [lhs, rhs], name)
        self.pred = pred

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


class CastInst(Instruction):
    def __init__(self, opcode: str, value: Value, to_type: T.Type, name: str = ""):
        if opcode not in OP.CAST_OPS:
            raise ValueError(f"not a cast opcode: {opcode}")
        super().__init__(to_type, [value], name)
        self.opcode = opcode

    @property
    def value(self) -> Value:
        return self.operands[0]


class AllocaInst(Instruction):
    """Stack allocation; yields a pointer to ``count`` x ``allocated_type``."""

    opcode = "alloca"

    def __init__(self, allocated_type: T.Type, count: int = 1, name: str = ""):
        super().__init__(T.PTR, [], name)
        self.allocated_type = allocated_type
        self.count = count


class LoadInst(Instruction):
    opcode = "load"

    def __init__(self, loaded_type: T.Type, ptr: Value, name: str = ""):
        if not ptr.type.is_pointer:
            raise TypeError(f"load pointer operand has type {ptr.type}")
        super().__init__(loaded_type, [ptr], name)

    @property
    def ptr(self) -> Value:
        return self.operands[0]


class StoreInst(Instruction):
    opcode = "store"

    def __init__(self, value: Value, ptr: Value):
        if not ptr.type.is_pointer:
            raise TypeError(f"store pointer operand has type {ptr.type}")
        super().__init__(T.VOID, [value, ptr])

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def ptr(self) -> Value:
        return self.operands[1]


class GepInst(Instruction):
    """Simplified getelementptr: ``ptr + index * sizeof(elem_type)``.

    The index may be any integer type (it is sign-extended to 64 bits).
    When operating on replicated (vector) pointers/indices the result is
    a vector of pointers — address arithmetic is replicable computation
    in ELZAR.
    """

    opcode = "gep"

    def __init__(self, elem_type: T.Type, ptr: Value, index: Value, name: str = ""):
        if ptr.type.is_vector:
            ty = T.vector(T.PTR, ptr.type.count)
        else:
            ty = T.PTR
        super().__init__(ty, [ptr, index], name)
        self.elem_type = elem_type

    @property
    def ptr(self) -> Value:
        return self.operands[0]

    @property
    def index(self) -> Value:
        return self.operands[1]


class BranchInst(Instruction):
    """Conditional (``cond`` is i1) or unconditional branch."""

    opcode = "br"

    def __init__(self, cond: Optional[Value], then_block, else_block=None):
        operands = [] if cond is None else [cond]
        super().__init__(T.VOID, operands)
        if cond is not None and else_block is None:
            raise ValueError("conditional branch requires an else target")
        self.then_block = then_block
        self.else_block = else_block

    @property
    def cond(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None

    @property
    def is_conditional(self) -> bool:
        return bool(self.operands)

    def targets(self):
        if self.is_conditional:
            return (self.then_block, self.else_block)
        return (self.then_block,)

    def replace_target(self, old, new) -> None:
        if self.then_block is old:
            self.then_block = new
        if self.else_block is old:
            self.else_block = new


class RetInst(Instruction):
    opcode = "ret"

    def __init__(self, value: Optional[Value] = None):
        super().__init__(T.VOID, [] if value is None else [value])

    @property
    def value(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None


class UnreachableInst(Instruction):
    opcode = "unreachable"

    def __init__(self):
        super().__init__(T.VOID, [])


class CallInst(Instruction):
    opcode = "call"

    def __init__(self, callee, args: Sequence[Value], name: str = ""):
        ftype = callee.type
        if not isinstance(ftype, T.FunctionType):
            raise TypeError(f"callee {callee} is not a function")
        if len(args) != len(ftype.params):
            raise TypeError(
                f"call to {callee.name}: {len(args)} args, expected {len(ftype.params)}"
            )
        for a, p in zip(args, ftype.params):
            if a.type != p:
                raise TypeError(
                    f"call to {callee.name}: arg type {a.type} != param type {p}"
                )
        super().__init__(ftype.ret, list(args), name)
        self.callee = callee

    @property
    def args(self) -> List[Value]:
        return self.operands


class PhiInst(Instruction):
    opcode = "phi"

    def __init__(self, ty: T.Type, name: str = ""):
        super().__init__(ty, [], name)
        self.incoming_blocks: list = []

    def add_incoming(self, value: Value, block) -> None:
        if value.type != self.type:
            raise TypeError(
                f"phi {self.ref()}: incoming type {value.type} != {self.type}"
            )
        self.operands.append(value)
        self.incoming_blocks.append(block)

    def incoming(self) -> List[Tuple[Value, object]]:
        return list(zip(self.operands, self.incoming_blocks))

    def incoming_for(self, block) -> Value:
        for value, blk in zip(self.operands, self.incoming_blocks):
            if blk is block:
                return value
        raise KeyError(f"phi {self.ref()} has no incoming from {block.name}")

    def replace_incoming_block(self, old, new) -> None:
        for i, blk in enumerate(self.incoming_blocks):
            if blk is old:
                self.incoming_blocks[i] = new


class SelectInst(Instruction):
    opcode = "select"

    def __init__(self, cond: Value, tval: Value, fval: Value, name: str = ""):
        if tval.type != fval.type:
            raise TypeError(
                f"select arms differ: {tval.type} vs {fval.type}"
            )
        super().__init__(tval.type, [cond, tval, fval], name)

    @property
    def cond(self) -> Value:
        return self.operands[0]

    @property
    def tval(self) -> Value:
        return self.operands[1]

    @property
    def fval(self) -> Value:
        return self.operands[2]


class ExtractElementInst(Instruction):
    opcode = "extractelement"

    def __init__(self, vec: Value, index: Value, name: str = ""):
        if not vec.type.is_vector:
            raise TypeError(f"extractelement on non-vector {vec.type}")
        super().__init__(vec.type.elem, [vec, index], name)

    @property
    def vec(self) -> Value:
        return self.operands[0]

    @property
    def index(self) -> Value:
        return self.operands[1]


class InsertElementInst(Instruction):
    opcode = "insertelement"

    def __init__(self, vec: Value, elem: Value, index: Value, name: str = ""):
        if not vec.type.is_vector:
            raise TypeError(f"insertelement on non-vector {vec.type}")
        if elem.type != vec.type.elem:
            raise TypeError(
                f"insertelement elem type {elem.type} != {vec.type.elem}"
            )
        super().__init__(vec.type, [vec, elem, index], name)

    @property
    def vec(self) -> Value:
        return self.operands[0]

    @property
    def elem(self) -> Value:
        return self.operands[1]

    @property
    def index(self) -> Value:
        return self.operands[2]


class ShuffleVectorInst(Instruction):
    """Lane permutation; ``mask`` is a tuple of source lane indices into
    the concatenation of the two input vectors (LLVM semantics)."""

    opcode = "shufflevector"

    def __init__(self, v1: Value, v2: Value, mask: Tuple[int, ...], name: str = ""):
        if not v1.type.is_vector or v1.type != v2.type:
            raise TypeError("shufflevector operands must be identical vectors")
        super().__init__(T.vector(v1.type.elem, len(mask)), [v1, v2], name)
        self.mask = tuple(mask)

    @property
    def v1(self) -> Value:
        return self.operands[0]

    @property
    def v2(self) -> Value:
        return self.operands[1]


class BroadcastInst(Instruction):
    """Splat a scalar across ``count`` lanes (AVX vbroadcast)."""

    opcode = "broadcast"

    def __init__(self, scalar: Value, count: int, name: str = ""):
        if not scalar.type.is_scalar:
            raise TypeError(f"broadcast of non-scalar {scalar.type}")
        super().__init__(T.vector(scalar.type, count), [scalar], name)

    @property
    def scalar(self) -> Value:
        return self.operands[0]
