"""IRBuilder: convenience API for constructing IR.

The builder keeps an insertion point (a basic block) and appends
instructions there, auto-naming results. Structured-control-flow
helpers (``begin_loop``/``end_loop``, ``begin_if``/``end_if``) emit the
canonical loop shape that the auto-vectorizer recognizes:

    preheader -> header(phis, cond, br body/exit) -> body... -> header
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from . import types as T
from .function import BasicBlock, Function
from .instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    BroadcastInst,
    CallInst,
    CastInst,
    ExtractElementInst,
    FCmpInst,
    GepInst,
    ICmpInst,
    InsertElementInst,
    LoadInst,
    PhiInst,
    RetInst,
    SelectInst,
    ShuffleVectorInst,
    StoreInst,
    UnreachableInst,
)
from .values import Constant, Value


@dataclass
class LoopState:
    """Bookkeeping for a loop under construction (see ``begin_loop``)."""

    preheader: BasicBlock
    header: BasicBlock
    body: BasicBlock
    exit: BasicBlock
    index: PhiInst
    start: Value
    end: Value
    step: Value
    cond_pred: str
    pending_phis: List[Tuple[PhiInst, Value, Optional[Value]]] = field(
        default_factory=list
    )


@dataclass
class IfState:
    cond: Value
    then_block: BasicBlock
    else_block: Optional[BasicBlock]
    merge: BasicBlock
    branch: BranchInst
    then_end: Optional[BasicBlock] = None


class IRBuilder:
    def __init__(self, block: Optional[BasicBlock] = None):
        self.block: Optional[BasicBlock] = block

    # Positioning --------------------------------------------------------------

    def position_at_end(self, block: BasicBlock) -> None:
        self.block = block

    @property
    def function(self) -> Function:
        return self.block.parent

    def _insert(self, inst, name: str = ""):
        if self.block is None:
            raise RuntimeError("builder has no insertion point")
        if not inst.name and not inst.type.is_void:
            inst.name = name or self.function.next_name()
        elif name:
            inst.name = name
        return self.block.append(inst)

    # Constants ----------------------------------------------------------------

    @staticmethod
    def i64(v: int) -> Constant:
        return Constant(T.I64, v)

    @staticmethod
    def i32(v: int) -> Constant:
        return Constant(T.I32, v)

    @staticmethod
    def i16(v: int) -> Constant:
        return Constant(T.I16, v)

    @staticmethod
    def i8(v: int) -> Constant:
        return Constant(T.I8, v)

    @staticmethod
    def i1(v: bool) -> Constant:
        return Constant(T.I1, 1 if v else 0)

    @staticmethod
    def f64(v: float) -> Constant:
        return Constant(T.F64, v)

    @staticmethod
    def f32(v: float) -> Constant:
        return Constant(T.F32, v)

    # Binary operations ----------------------------------------------------------

    def binop(self, opcode: str, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._insert(BinaryInst(opcode, lhs, rhs), name)

    def add(self, a, b, name=""):
        return self.binop("add", a, b, name)

    def sub(self, a, b, name=""):
        return self.binop("sub", a, b, name)

    def mul(self, a, b, name=""):
        return self.binop("mul", a, b, name)

    def sdiv(self, a, b, name=""):
        return self.binop("sdiv", a, b, name)

    def udiv(self, a, b, name=""):
        return self.binop("udiv", a, b, name)

    def srem(self, a, b, name=""):
        return self.binop("srem", a, b, name)

    def urem(self, a, b, name=""):
        return self.binop("urem", a, b, name)

    def and_(self, a, b, name=""):
        return self.binop("and", a, b, name)

    def or_(self, a, b, name=""):
        return self.binop("or", a, b, name)

    def xor(self, a, b, name=""):
        return self.binop("xor", a, b, name)

    def shl(self, a, b, name=""):
        return self.binop("shl", a, b, name)

    def lshr(self, a, b, name=""):
        return self.binop("lshr", a, b, name)

    def ashr(self, a, b, name=""):
        return self.binop("ashr", a, b, name)

    def fadd(self, a, b, name=""):
        return self.binop("fadd", a, b, name)

    def fsub(self, a, b, name=""):
        return self.binop("fsub", a, b, name)

    def fmul(self, a, b, name=""):
        return self.binop("fmul", a, b, name)

    def fdiv(self, a, b, name=""):
        return self.binop("fdiv", a, b, name)

    def frem(self, a, b, name=""):
        return self.binop("frem", a, b, name)

    # Comparisons ----------------------------------------------------------------

    def icmp(self, pred: str, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._insert(ICmpInst(pred, lhs, rhs), name)

    def fcmp(self, pred: str, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._insert(FCmpInst(pred, lhs, rhs), name)

    # Casts ------------------------------------------------------------------------

    def cast(self, opcode: str, value: Value, to_type: T.Type, name: str = "") -> Value:
        return self._insert(CastInst(opcode, value, to_type), name)

    def trunc(self, v, ty, name=""):
        return self.cast("trunc", v, ty, name)

    def zext(self, v, ty, name=""):
        return self.cast("zext", v, ty, name)

    def sext(self, v, ty, name=""):
        return self.cast("sext", v, ty, name)

    def fptrunc(self, v, ty, name=""):
        return self.cast("fptrunc", v, ty, name)

    def fpext(self, v, ty, name=""):
        return self.cast("fpext", v, ty, name)

    def fptosi(self, v, ty, name=""):
        return self.cast("fptosi", v, ty, name)

    def sitofp(self, v, ty, name=""):
        return self.cast("sitofp", v, ty, name)

    def uitofp(self, v, ty, name=""):
        return self.cast("uitofp", v, ty, name)

    def bitcast(self, v, ty, name=""):
        return self.cast("bitcast", v, ty, name)

    def ptrtoint(self, v, ty=T.I64, name=""):
        return self.cast("ptrtoint", v, ty, name)

    def inttoptr(self, v, name=""):
        return self.cast("inttoptr", v, T.PTR, name)

    # Memory -------------------------------------------------------------------------

    def alloca(self, ty: T.Type, count: int = 1, name: str = "") -> Value:
        return self._insert(AllocaInst(ty, count), name)

    def load(self, ty: T.Type, ptr: Value, name: str = "") -> Value:
        return self._insert(LoadInst(ty, ptr), name)

    def store(self, value: Value, ptr: Value) -> Value:
        return self._insert(StoreInst(value, ptr))

    def gep(self, elem_type: T.Type, ptr: Value, index: Value, name: str = "") -> Value:
        return self._insert(GepInst(elem_type, ptr, index), name)

    # Control flow ----------------------------------------------------------------------

    def br(self, target: BasicBlock) -> Value:
        return self._insert(BranchInst(None, target))

    def cond_br(self, cond: Value, then_block: BasicBlock,
                else_block: BasicBlock) -> Value:
        return self._insert(BranchInst(cond, then_block, else_block))

    def ret(self, value: Optional[Value] = None) -> Value:
        return self._insert(RetInst(value))

    def ret_void(self) -> Value:
        return self._insert(RetInst(None))

    def unreachable(self) -> Value:
        return self._insert(UnreachableInst())

    def call(self, callee: Function, args: Sequence[Value], name: str = "") -> Value:
        return self._insert(CallInst(callee, args), name)

    def phi(self, ty: T.Type, name: str = "") -> PhiInst:
        """Create a phi at the *start* of the current block."""
        inst = PhiInst(ty)
        inst.name = name or self.function.next_name("phi")
        self.block.insert(self.block.first_non_phi_index(), inst)
        return inst

    def select(self, cond: Value, tval: Value, fval: Value, name: str = "") -> Value:
        return self._insert(SelectInst(cond, tval, fval), name)

    # Vectors -------------------------------------------------------------------------------

    def extractelement(self, vec: Value, index: Value, name: str = "") -> Value:
        return self._insert(ExtractElementInst(vec, index), name)

    def insertelement(self, vec: Value, elem: Value, index: Value, name: str = "") -> Value:
        return self._insert(InsertElementInst(vec, elem, index), name)

    def shufflevector(self, v1: Value, v2: Value, mask: Sequence[int], name: str = "") -> Value:
        return self._insert(ShuffleVectorInst(v1, v2, tuple(mask)), name)

    def broadcast(self, scalar: Value, count: int, name: str = "") -> Value:
        return self._insert(BroadcastInst(scalar, count), name)

    # Structured control flow ------------------------------------------------------------------

    def begin_loop(self, start: Value, end: Value, step: Optional[Value] = None,
                   name: str = "i", pred: str = "slt") -> LoopState:
        """Open a counted loop ``for (name = start; name <pred> end; name += step)``.

        Positions the builder in the loop body. The induction variable
        is ``state.index``. Close with :meth:`end_loop`, which positions
        the builder in the exit block.
        """
        if step is None:
            step = Constant(start.type, 1)
        fn = self.function
        preheader = self.block
        header = fn.append_block(fn.next_name("loop"))
        body = fn.append_block(fn.next_name("body"))
        exit_block = fn.append_block(fn.next_name("endloop"))

        self.br(header)

        self.position_at_end(header)
        index = self.phi(start.type, name=fn.next_name(name))
        cond = self.icmp(pred, index, end)
        self.cond_br(cond, body, exit_block)

        self.position_at_end(body)
        return LoopState(
            preheader=preheader,
            header=header,
            body=body,
            exit=exit_block,
            index=index,
            start=start,
            end=end,
            step=step,
            cond_pred=pred,
        )

    def loop_phi(self, loop: LoopState, init: Value, name: str = "") -> PhiInst:
        """Add a loop-carried value (e.g. a reduction accumulator).

        The phi lives in the loop header; set its next-iteration value
        with :meth:`set_loop_next` before :meth:`end_loop`. After the
        loop, the phi itself holds the final value.
        """
        saved = self.block
        self.position_at_end(loop.header)
        phi = self.phi(init.type, name=name or self.function.next_name("acc"))
        self.position_at_end(saved)
        loop.pending_phis.append((phi, init, None))
        return phi

    def set_loop_next(self, loop: LoopState, phi: PhiInst, next_value: Value) -> None:
        for i, (p, init, _) in enumerate(loop.pending_phis):
            if p is phi:
                loop.pending_phis[i] = (p, init, next_value)
                return
        raise KeyError("phi was not created with loop_phi for this loop")

    def end_loop(self, loop: LoopState) -> None:
        """Close the loop: emit the increment and back edge, wire up the
        phis, and position the builder at the exit block."""
        latch = self.block
        next_index = self.add(loop.index, loop.step)
        self.br(loop.header)

        loop.index.add_incoming(loop.start, loop.preheader)
        loop.index.add_incoming(next_index, latch)
        for phi, init, nxt in loop.pending_phis:
            if nxt is None:
                raise ValueError(
                    f"loop phi {phi.ref()} has no next value; call set_loop_next"
                )
            phi.add_incoming(init, loop.preheader)
            phi.add_incoming(nxt, latch)

        self.position_at_end(loop.exit)

    def begin_if(self, cond: Value, with_else: bool = False) -> IfState:
        """Open a conditional region; positions the builder in the
        'then' block. Call :meth:`begin_else` (if ``with_else``) and
        finally :meth:`end_if`."""
        fn = self.function
        then_block = fn.append_block(fn.next_name("then"))
        merge = fn.append_block(fn.next_name("endif"))
        else_block = None
        if with_else:
            else_block = fn.append_block(fn.next_name("else"))
            branch = self.cond_br(cond, then_block, else_block)
        else:
            branch = self.cond_br(cond, then_block, merge)
        self.position_at_end(then_block)
        return IfState(cond, then_block, else_block, merge, branch)

    def begin_else(self, state: IfState) -> None:
        if state.else_block is None:
            raise ValueError("begin_if was called without with_else=True")
        if self.block.terminator is None:
            self.br(state.merge)
        state.then_end = self.block
        self.position_at_end(state.else_block)

    def end_if(self, state: IfState) -> None:
        if self.block.terminator is None:
            self.br(state.merge)
        self.position_at_end(state.merge)
