"""Parser for the textual IR form produced by :mod:`repro.ir.printer`.

The format is line-oriented: one instruction, label, or top-level
declaration per line. Forward references (branch targets, phi operands)
are resolved with placeholder values patched after the function body is
read. Global initializers other than ``zeroinitializer`` are not part
of the textual form (construct them through the API).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from . import opcodes as OP
from . import types as T
from .function import BasicBlock, Function
from .instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    BroadcastInst,
    CallInst,
    CastInst,
    ExtractElementInst,
    FCmpInst,
    GepInst,
    ICmpInst,
    InsertElementInst,
    Instruction,
    LoadInst,
    PhiInst,
    RetInst,
    SelectInst,
    ShuffleVectorInst,
    StoreInst,
    UnreachableInst,
)
from .module import Module
from .values import Constant, UndefValue, Value


class ParseError(Exception):
    pass


_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<float>-?\d+\.\d*(?:[eE][+-]?\d+)?|-?\d+[eE][+-]?\d+|-?inf|nan)"
    r"|(?P<int>-?\d+)"
    r"|(?P<word>[A-Za-z_][A-Za-z0-9_.$-]*)"
    r"|(?P<ref>[%@][A-Za-z0-9_.$-]+)"
    r"|(?P<punct>[(){}\[\]<>,=:])"
    r")"
)


#: Matches a global whose initializer is a flat ``[...]`` body (no
#: nested brackets): the type is everything between the kind keyword
#: and the last bracketed group on the line. Element bodies never
#: contain ``]``, so nested-array initializers simply fail to match
#: and fall back to the token-by-token path.
_GLOBAL_ARRAY_RE = re.compile(
    r"@(?P<name>[A-Za-z0-9_.$-]+) = (?P<kind>global|constant) "
    r"(?P<ty>.+?) \[(?P<body>[^\]]+)\]\s*$"
)


def _tokenize(line: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(line):
        m = _TOKEN_RE.match(line, pos)
        if m is None:
            if line[pos:].strip() == "":
                break
            raise ParseError(f"cannot tokenize: {line[pos:]!r}")
        tokens.append(m.group().strip())
        pos = m.end()
    return tokens


class _Forward(Value):
    """Placeholder for a not-yet-defined local value."""

    def __init__(self, ty: T.Type, name: str):
        super().__init__(ty, name)


class _Cursor:
    def __init__(self, tokens: List[str], line: str):
        self.tokens = tokens
        self.pos = 0
        self.line = line

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        tok = self.peek()
        if tok is None:
            raise ParseError(f"unexpected end of line: {self.line!r}")
        self.pos += 1
        return tok

    def expect(self, tok: str) -> None:
        got = self.next()
        if got != tok:
            raise ParseError(f"expected {tok!r}, got {got!r} in {self.line!r}")

    def accept(self, tok: str) -> bool:
        if self.peek() == tok:
            self.pos += 1
            return True
        return False

    @property
    def done(self) -> bool:
        return self.pos >= len(self.tokens)


def _parse_type(cur: _Cursor) -> T.Type:
    tok = cur.next()
    if tok == "void":
        return T.VOID
    if tok == "ptr":
        return T.PTR
    if tok == "float":
        return T.F32
    if tok == "double":
        return T.F64
    if tok.startswith("i") and tok[1:].isdigit():
        return T.int_type(int(tok[1:]))
    if tok == "<":
        count = int(cur.next())
        cur.expect("x")
        elem = _parse_type(cur)
        cur.expect(">")
        return T.vector(elem, count)
    if tok == "[":
        count = int(cur.next())
        cur.expect("x")
        elem = _parse_type(cur)
        cur.expect("]")
        return T.ArrayType(elem, count)
    raise ParseError(f"expected a type, got {tok!r} in {cur.line!r}")


class Parser:
    def __init__(self, text: str):
        self.lines = text.splitlines()
        self.index = 0
        self.module = Module()
        # Per-function state:
        self.values: Dict[str, Value] = {}
        self.forwards: Dict[str, List[_Forward]] = {}
        self.blocks: Dict[str, BasicBlock] = {}

    # Top level ---------------------------------------------------------------

    def parse(self) -> Module:
        for raw in self.lines:
            stripped = raw.strip()
            if stripped.startswith("; module "):
                self.module.name = stripped[len("; module "):].strip()
                break
            if stripped and not stripped.startswith(";"):
                break
        self._declare_signatures()
        self.index = 0
        while self.index < len(self.lines):
            line = self._current_line()
            if line is None:
                break
            if line.startswith("@"):
                self._parse_global(line)
                self.index += 1
            elif line.startswith("define"):
                self._parse_function_body(line)
            elif line.startswith("declare"):
                self.index += 1
            else:
                raise ParseError(f"unexpected top-level line: {line!r}")
        return self.module

    def _current_line(self) -> Optional[str]:
        while self.index < len(self.lines):
            raw = self.lines[self.index].split(";", 1)[0].strip()
            if raw:
                return raw
            self.index += 1
        return None

    def _declare_signatures(self) -> None:
        """Pre-scan so calls can reference functions defined later."""
        for raw in self.lines:
            line = raw.split(";", 1)[0].strip()
            if line.startswith("define") or line.startswith("declare"):
                name, ftype, arg_names = self._parse_header(line)
                if name not in self.module.functions:
                    self.module.add_function(name, ftype, arg_names)

    def _parse_header(self, line: str) -> Tuple[str, T.FunctionType, List[str]]:
        cur = _Cursor(_tokenize(line), line)
        kw = cur.next()
        if kw not in ("define", "declare"):
            raise ParseError(f"expected define/declare: {line!r}")
        ret = _parse_type(cur)
        name_tok = cur.next()
        if not name_tok.startswith("@"):
            raise ParseError(f"expected @name in {line!r}")
        cur.expect("(")
        params: List[T.Type] = []
        arg_names: List[str] = []
        while not cur.accept(")"):
            if params:
                cur.expect(",")
            ty = _parse_type(cur)
            params.append(ty)
            if cur.peek() is not None and cur.peek().startswith("%"):
                arg_names.append(cur.next()[1:])
            else:
                arg_names.append(f"arg{len(params) - 1}")
        return name_tok[1:], T.FunctionType(ret, tuple(params)), arg_names

    def _parse_global(self, line: str) -> None:
        if self._parse_global_fast(line):
            return
        cur = _Cursor(_tokenize(line), line)
        name = cur.next()[1:]
        cur.expect("=")
        kind = cur.next()
        if kind not in ("global", "constant"):
            raise ParseError(f"bad global kind in {line!r}")
        ty = _parse_type(cur)
        initializer = self._parse_initializer(cur, ty)
        if name not in self.module.globals:
            self.module.add_global(
                name, ty, initializer, constant=(kind == "constant")
            )

    def _parse_global_fast(self, line: str) -> bool:
        """Fast path for flat constant-array globals. Workload inputs
        are baked into the module as (possibly huge) arrays of scalars;
        tokenizing them element by element dominates module parse time,
        so split the printed ``[elem v, elem v, ...]`` body directly.
        Returns False (parse nothing) for any shape it cannot prove it
        handles — nested arrays, zeroinitializer, scalars — which then
        take the general token path."""
        m = _GLOBAL_ARRAY_RE.match(line)
        if m is None:
            return False
        ty = _parse_type(_Cursor(_tokenize(m.group("ty")), line))
        if not ty.is_array or ty.elem.is_array:
            return False
        prefix = f"{ty.elem} "
        plen = len(prefix)
        conv = float if ty.elem.is_float else int
        values = []
        try:
            for part in m.group("body").split(", "):
                if not part.startswith(prefix):
                    return False
                values.append(conv(part[plen:]))
        except ValueError:
            return False
        name = m.group("name")
        if name not in self.module.globals:
            self.module.add_global(
                name, ty, values, constant=(m.group("kind") == "constant")
            )
        return True

    def _parse_initializer(self, cur: _Cursor, ty: T.Type):
        tok = cur.peek()
        if tok == "zeroinitializer":
            cur.next()
            return None
        if tok == "[":
            cur.next()
            values = []
            while not cur.accept("]"):
                if values:
                    cur.expect(",")
                ety = _parse_type(cur)
                lit = cur.next()
                values.append(float(lit) if ety.is_float else int(lit))
            return values
        # Scalar literal.
        lit = cur.next()
        return float(lit) if ty.is_float else int(lit)

    # Function body -----------------------------------------------------------

    def _parse_function_body(self, header_line: str) -> None:
        name, _, _ = self._parse_header(header_line)
        fn = self.module.get_function(name)
        self.values = {f"%{a.name}": a for a in fn.args}
        self.forwards = {}
        self.blocks = {}
        self.index += 1

        # First pass: create all blocks so branches can reference them.
        body_lines: List[Tuple[int, str]] = []
        depth_index = self.index
        while depth_index < len(self.lines):
            line = self.lines[depth_index].split(";", 1)[0].strip()
            depth_index += 1
            if not line:
                continue
            if line == "}":
                break
            body_lines.append((depth_index - 1, line))
            if line.endswith(":") and re.fullmatch(r"[A-Za-z0-9_.$-]+:", line):
                label = line[:-1]
                self.blocks[label] = fn.append_block(label)
        else:
            raise ParseError(f"function @{name} has no closing brace")

        current: Optional[BasicBlock] = None
        for _, line in body_lines:
            if line.endswith(":") and line[:-1] in self.blocks:
                current = self.blocks[line[:-1]]
                continue
            if current is None:
                raise ParseError(f"instruction before first label: {line!r}")
            inst = self._parse_instruction(line, fn)
            current.append(inst)

        self._resolve_forwards(fn)
        self.index = depth_index

    def _resolve_forwards(self, fn: Function) -> None:
        unresolved = []
        for name, placeholders in self.forwards.items():
            real = self.values.get(name)
            if real is None or isinstance(real, _Forward):
                unresolved.append(name)
                continue
            for inst in fn.instructions():
                for i, op in enumerate(inst.operands):
                    if any(op is ph for ph in placeholders):
                        if op.type != real.type:
                            raise ParseError(
                                f"type mismatch for {name}: used as {op.type}, "
                                f"defined as {real.type}"
                            )
                        inst.operands[i] = real
        if unresolved:
            raise ParseError(
                f"undefined values in @{fn.name}: {sorted(unresolved)}"
            )

    # Operands ------------------------------------------------------------------

    def _value_ref(self, cur: _Cursor, ty: T.Type) -> Value:
        tok = cur.peek()
        if tok is None:
            raise ParseError(f"expected a value in {cur.line!r}")
        if tok.startswith("%"):
            cur.next()
            existing = self.values.get(tok)
            if existing is not None:
                return existing
            placeholder = _Forward(ty, tok[1:])
            self.forwards.setdefault(tok, []).append(placeholder)
            return placeholder
        if tok.startswith("@"):
            cur.next()
            name = tok[1:]
            if name in self.module.globals:
                return self.module.globals[name]
            if name in self.module.functions:
                return self.module.functions[name]
            raise ParseError(f"unknown global reference {tok}")
        if tok == "undef":
            cur.next()
            return UndefValue(ty)
        if tok == "<":
            cur.next()
            elems = []
            while not cur.accept(">"):
                if elems:
                    cur.expect(",")
                ety = _parse_type(cur)
                lit = cur.next()
                elems.append(
                    float(lit) if ety.is_float else int(lit)
                )
            if not ty.is_vector:
                raise ParseError(f"vector literal where {ty} expected")
            return Constant(ty, tuple(elems))
        # Numeric literal.
        cur.next()
        if ty.is_float:
            return Constant(ty, float(tok))
        return Constant(ty, int(tok))

    def _typed_value(self, cur: _Cursor) -> Value:
        ty = _parse_type(cur)
        return self._value_ref(cur, ty)

    def _label(self, cur: _Cursor) -> BasicBlock:
        cur.expect("label")
        tok = cur.next()
        if not tok.startswith("%"):
            raise ParseError(f"expected %label, got {tok!r}")
        block = self.blocks.get(tok[1:])
        if block is None:
            raise ParseError(f"unknown block {tok}")
        return block

    # Instructions ----------------------------------------------------------------

    def _parse_instruction(self, line: str, fn: Function) -> Instruction:
        cur = _Cursor(_tokenize(line), line)
        result_name = ""
        if cur.peek() is not None and cur.peek().startswith("%"):
            result_name = cur.next()[1:]
            cur.expect("=")
        opcode = cur.next()
        inst = self._dispatch(opcode, cur, fn)
        if result_name:
            inst.name = result_name
            self.values[f"%{result_name}"] = inst
        return inst

    def _dispatch(self, opcode: str, cur: _Cursor, fn: Function) -> Instruction:
        if opcode in OP.BINARY_OPS:
            ty = _parse_type(cur)
            lhs = self._value_ref(cur, ty)
            cur.expect(",")
            rhs = self._value_ref(cur, ty)
            return BinaryInst(opcode, lhs, rhs)
        if opcode in ("icmp", "fcmp"):
            pred = cur.next()
            ty = _parse_type(cur)
            lhs = self._value_ref(cur, ty)
            cur.expect(",")
            rhs = self._value_ref(cur, ty)
            cls = ICmpInst if opcode == "icmp" else FCmpInst
            return cls(pred, lhs, rhs)
        if opcode in OP.CAST_OPS:
            src_ty = _parse_type(cur)
            value = self._value_ref(cur, src_ty)
            cur.expect("to")
            to_ty = _parse_type(cur)
            return CastInst(opcode, value, to_ty)
        if opcode == "alloca":
            ty = _parse_type(cur)
            cur.expect(",")
            cur.expect("i64")
            count = int(cur.next())
            return AllocaInst(ty, count)
        if opcode == "load":
            ty = _parse_type(cur)
            cur.expect(",")
            ptr = self._typed_value(cur)
            return LoadInst(ty, ptr)
        if opcode == "store":
            value = self._typed_value(cur)
            cur.expect(",")
            ptr = self._typed_value(cur)
            return StoreInst(value, ptr)
        if opcode == "gep":
            elem_ty = _parse_type(cur)
            cur.expect(",")
            ptr = self._typed_value(cur)
            cur.expect(",")
            index = self._typed_value(cur)
            return GepInst(elem_ty, ptr, index)
        if opcode == "br":
            if cur.peek() == "label":
                return BranchInst(None, self._label(cur))
            cond = self._typed_value(cur)
            cur.expect(",")
            then_block = self._label(cur)
            cur.expect(",")
            else_block = self._label(cur)
            return BranchInst(cond, then_block, else_block)
        if opcode == "ret":
            if cur.peek() == "void":
                return RetInst(None)
            return RetInst(self._typed_value(cur))
        if opcode == "unreachable":
            return UnreachableInst()
        if opcode == "call":
            _parse_type(cur)  # return type; taken from callee signature
            callee_tok = cur.next()
            callee = self.module.get_function(callee_tok[1:])
            cur.expect("(")
            args: List[Value] = []
            while not cur.accept(")"):
                if args:
                    cur.expect(",")
                args.append(self._typed_value(cur))
            return CallInst(callee, args)
        if opcode == "phi":
            ty = _parse_type(cur)
            phi = PhiInst(ty)
            first = True
            while cur.peek() == "[" or (not first and cur.peek() == ","):
                if not first:
                    cur.expect(",")
                cur.expect("[")
                value = self._value_ref(cur, ty)
                cur.expect(",")
                block_tok = cur.next()
                block = self.blocks.get(block_tok[1:])
                if block is None:
                    raise ParseError(f"phi references unknown block {block_tok}")
                cur.expect("]")
                phi.add_incoming(value, block)
                first = False
            return phi
        if opcode == "select":
            cond = self._typed_value(cur)
            cur.expect(",")
            tval = self._typed_value(cur)
            cur.expect(",")
            fval = self._typed_value(cur)
            return SelectInst(cond, tval, fval)
        if opcode == "extractelement":
            vec = self._typed_value(cur)
            cur.expect(",")
            index = self._typed_value(cur)
            return ExtractElementInst(vec, index)
        if opcode == "insertelement":
            vec = self._typed_value(cur)
            cur.expect(",")
            elem = self._typed_value(cur)
            cur.expect(",")
            index = self._typed_value(cur)
            return InsertElementInst(vec, elem, index)
        if opcode == "shufflevector":
            v1 = self._typed_value(cur)
            cur.expect(",")
            v2 = self._typed_value(cur)
            cur.expect(",")
            cur.expect("mask")
            cur.expect("<")
            mask = []
            while not cur.accept(">"):
                if mask:
                    cur.expect(",")
                mask.append(int(cur.next()))
            return ShuffleVectorInst(v1, v2, tuple(mask))
        if opcode == "broadcast":
            scalar = self._typed_value(cur)
            cur.expect(",")
            count = int(cur.next())
            return BroadcastInst(scalar, count)
        raise ParseError(f"unknown opcode {opcode!r} in {cur.line!r}")


def parse_module(text: str) -> Module:
    """Parse textual IR into a :class:`Module`."""
    return Parser(text).parse()
