"""Control-flow graph analyses: orderings, dominators, dominance
frontiers, and natural-loop detection.

Dominators use the Cooper–Harvey–Kennedy iterative algorithm on the
reverse-postorder numbering; it is simple and fast enough for the
function sizes this project produces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from .function import BasicBlock, Function


def reverse_postorder(fn: Function) -> List[BasicBlock]:
    """Blocks in reverse postorder from the entry (unreachable blocks
    excluded)."""
    visited: Set[BasicBlock] = set()
    order: List[BasicBlock] = []

    # Iterative DFS to avoid recursion limits on long chains.
    stack: List[tuple] = [(fn.entry, iter(fn.entry.successors()))]
    visited.add(fn.entry)
    while stack:
        block, succs = stack[-1]
        advanced = False
        for succ in succs:
            if succ not in visited:
                visited.add(succ)
                stack.append((succ, iter(succ.successors())))
                advanced = True
                break
        if not advanced:
            order.append(block)
            stack.pop()
    order.reverse()
    return order


class DominatorTree:
    def __init__(self, fn: Function):
        self.function = fn
        self.rpo = reverse_postorder(fn)
        self._rpo_index: Dict[BasicBlock, int] = {
            b: i for i, b in enumerate(self.rpo)
        }
        self.idom: Dict[BasicBlock, Optional[BasicBlock]] = {}
        self.children: Dict[BasicBlock, List[BasicBlock]] = {
            b: [] for b in self.rpo
        }
        self._depth: Dict[BasicBlock, int] = {}
        self._compute()

    def _compute(self) -> None:
        entry = self.function.entry
        preds = self.function.compute_predecessors()
        idom: Dict[BasicBlock, Optional[BasicBlock]] = {entry: entry}

        def intersect(a: BasicBlock, b: BasicBlock) -> BasicBlock:
            while a is not b:
                while self._rpo_index[a] > self._rpo_index[b]:
                    a = idom[a]
                while self._rpo_index[b] > self._rpo_index[a]:
                    b = idom[b]
            return a

        changed = True
        while changed:
            changed = False
            for block in self.rpo:
                if block is entry:
                    continue
                new_idom = None
                for pred in preds[block]:
                    if pred in idom:
                        new_idom = pred if new_idom is None else intersect(pred, new_idom)
                if new_idom is not None and idom.get(block) is not new_idom:
                    idom[block] = new_idom
                    changed = True

        idom[entry] = None
        self.idom = idom
        for block, dom in idom.items():
            if dom is not None:
                self.children[dom].append(block)
        # Depths for fast dominance queries.
        self._depth[entry] = 0
        worklist = [entry]
        while worklist:
            block = worklist.pop()
            for child in self.children[block]:
                self._depth[child] = self._depth[block] + 1
                worklist.append(child)

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True if ``a`` dominates ``b`` (reflexive)."""
        if a not in self._depth or b not in self._depth:
            return False
        while self._depth.get(b, -1) > self._depth[a]:
            b = self.idom[b]
        return a is b

    def strictly_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates(a, b)

    def frontiers(self) -> Dict[BasicBlock, Set[BasicBlock]]:
        """Dominance frontier of each block (Cooper et al. algorithm)."""
        df: Dict[BasicBlock, Set[BasicBlock]] = {b: set() for b in self.rpo}
        preds = self.function.compute_predecessors()
        for block in self.rpo:
            if len(preds[block]) < 2:
                continue
            for pred in preds[block]:
                if pred not in self._depth:
                    continue
                runner = pred
                while runner is not self.idom[block]:
                    df[runner].add(block)
                    runner = self.idom[runner]
        return df


@dataclass
class Loop:
    """A natural loop: header plus the set of blocks on paths from the
    back-edge sources to the header."""

    header: BasicBlock
    blocks: Set[BasicBlock] = field(default_factory=set)
    latches: List[BasicBlock] = field(default_factory=list)

    @property
    def exits(self) -> List[BasicBlock]:
        out = []
        for block in self.blocks:
            for succ in block.successors():
                if succ not in self.blocks and succ not in out:
                    out.append(succ)
        return out

    def body_blocks(self) -> List[BasicBlock]:
        return [b for b in self.blocks if b is not self.header]


def find_natural_loops(fn: Function, domtree: Optional[DominatorTree] = None) -> List[Loop]:
    """Detect natural loops via back edges (edge u->h where h dom u).

    Loops sharing a header are merged, matching LLVM's LoopInfo.
    """
    domtree = domtree or DominatorTree(fn)
    loops: Dict[BasicBlock, Loop] = {}
    for block in domtree.rpo:
        for succ in block.successors():
            if domtree.dominates(succ, block):
                loop = loops.setdefault(succ, Loop(header=succ))
                loop.latches.append(block)
                _collect_loop_body(loop, block)
    return list(loops.values())


def _collect_loop_body(loop: Loop, latch: BasicBlock) -> None:
    loop.blocks.add(loop.header)
    preds_cache = loop.header.parent.compute_predecessors()
    worklist = [latch]
    while worklist:
        block = worklist.pop()
        if block in loop.blocks:
            continue
        loop.blocks.add(block)
        for pred in preds_cache.get(block, []):
            worklist.append(pred)
