"""Functions and basic blocks."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from . import types as T
from .instructions import BranchInst, Instruction, PhiInst
from .values import Argument, Value


class BasicBlock:
    def __init__(self, name: str, parent: "Function" = None):
        self.name = name
        self.parent = parent
        self.instructions: List[Instruction] = []

    def append(self, inst: Instruction) -> Instruction:
        inst.parent = self
        self.instructions.append(inst)
        return inst

    def insert(self, index: int, inst: Instruction) -> Instruction:
        inst.parent = self
        self.instructions.insert(index, inst)
        return inst

    def remove(self, inst: Instruction) -> None:
        self.instructions.remove(inst)
        inst.parent = None

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    def successors(self) -> tuple:
        term = self.terminator
        if isinstance(term, BranchInst):
            return term.targets()
        return ()

    def phis(self) -> List[PhiInst]:
        out = []
        for inst in self.instructions:
            if isinstance(inst, PhiInst):
                out.append(inst)
            else:
                break
        return out

    def first_non_phi_index(self) -> int:
        for i, inst in enumerate(self.instructions):
            if not isinstance(inst, PhiInst):
                return i
        return len(self.instructions)

    def ref(self) -> str:
        return f"%{self.name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BasicBlock {self.name}, {len(self.instructions)} insts>"


class Function(Value):
    """A function definition or declaration.

    Attributes of note:

    - ``is_declaration``: no body; resolved at run time either as an
      intrinsic (name starts with ``rt.``, ``avx.``, ``elzar.`` or
      ``tmr.``) or it must be defined elsewhere in the module.
    - ``hardened``: set by hardening passes on their outputs; used by
      the fault injector to know where faults may be injected and by
      nested-call handling in the passes themselves.
    """

    def __init__(self, name: str, ftype: T.FunctionType,
                 arg_names: Optional[List[str]] = None):
        super().__init__(ftype, name)
        self.blocks: List[BasicBlock] = []
        names = arg_names or [f"arg{i}" for i in range(len(ftype.params))]
        if len(names) != len(ftype.params):
            raise ValueError("arg_names arity mismatch")
        self.args: List[Argument] = [
            Argument(ty, nm, i, self) for i, (ty, nm) in enumerate(zip(ftype.params, names))
        ]
        self.parent = None  # Module
        self.hardened: Optional[str] = None  # e.g. "elzar", "swiftr"
        self._name_counter = 0

    @property
    def ftype(self) -> T.FunctionType:
        return self.type

    @property
    def return_type(self) -> T.Type:
        return self.ftype.ret

    @property
    def is_declaration(self) -> bool:
        return not self.blocks

    @property
    def is_intrinsic(self) -> bool:
        return self.name.split(".")[0] in (
            "rt", "avx", "elzar", "tmr", "swift", "host"
        )

    def append_block(self, name: str = "") -> BasicBlock:
        block = BasicBlock(name or self.next_name("bb"), self)
        self.blocks.append(block)
        return block

    def insert_block_after(self, after: BasicBlock, name: str = "") -> BasicBlock:
        block = BasicBlock(name or self.next_name("bb"), self)
        self.blocks.insert(self.blocks.index(after) + 1, block)
        return block

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function {self.name} has no body")
        return self.blocks[0]

    def next_name(self, prefix: str = "t") -> str:
        self._name_counter += 1
        return f"{prefix}{self._name_counter}"

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    def block_map(self) -> Dict[str, BasicBlock]:
        return {b.name: b for b in self.blocks}

    def compute_predecessors(self) -> Dict[BasicBlock, List[BasicBlock]]:
        preds: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in self.blocks}
        for block in self.blocks:
            for succ in block.successors():
                # setdefault tolerates branches to foreign blocks so the
                # verifier can report them instead of crashing here.
                preds.setdefault(succ, []).append(block)
        return preds

    def ref(self) -> str:
        return f"@{self.name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "declare" if self.is_declaration else "define"
        return f"<Function {kind} {self.name}>"
