"""IR verifier: structural and SSA well-formedness checks.

Raises :class:`VerificationError` listing every problem found. Passes
run it on their outputs in tests; the machine optionally runs it before
execution.
"""

from __future__ import annotations

from typing import List, Optional, Set

from . import types as T
from .cfg import DominatorTree
from .function import BasicBlock, Function
from .instructions import (
    BranchInst,
    CallInst,
    Instruction,
    PhiInst,
    RetInst,
)
from .module import Module
from .values import Argument, Constant, GlobalVariable, UndefValue, Value


class VerificationError(Exception):
    def __init__(self, problems: List[str]):
        self.problems = problems
        super().__init__("IR verification failed:\n" + "\n".join(problems))


def verify_module(module: Module) -> None:
    problems: List[str] = []
    for fn in module.functions.values():
        if fn.is_declaration:
            continue
        problems.extend(_check_function(fn, module))
    if problems:
        raise VerificationError(problems)


def verify_function(fn: Function, module: Optional[Module] = None) -> None:
    problems = _check_function(fn, module)
    if problems:
        raise VerificationError(problems)


def _check_function(fn: Function, module: Optional[Module]) -> List[str]:
    problems: List[str] = []
    where = f"in @{fn.name}"

    block_set = set(fn.blocks)
    for block in fn.blocks:
        if not block.instructions:
            problems.append(f"{where}: block %{block.name} is empty")
            continue
        term = block.instructions[-1]
        if not term.is_terminator:
            problems.append(
                f"{where}: block %{block.name} does not end with a terminator"
            )
        for inst in block.instructions[:-1]:
            if inst.is_terminator:
                problems.append(
                    f"{where}: terminator in the middle of %{block.name}"
                )
        seen_non_phi = False
        for inst in block.instructions:
            if isinstance(inst, PhiInst):
                if seen_non_phi:
                    problems.append(
                        f"{where}: phi {inst.ref()} after non-phi in %{block.name}"
                    )
            else:
                seen_non_phi = True
        if isinstance(term, BranchInst):
            for target in term.targets():
                if target not in block_set:
                    problems.append(
                        f"{where}: branch in %{block.name} targets foreign "
                        f"block %{target.name}"
                    )
            if term.is_conditional and term.cond.type != T.I1:
                problems.append(
                    f"{where}: branch condition in %{block.name} has type "
                    f"{term.cond.type}, expected i1"
                )
        if isinstance(term, RetInst):
            ret_ty = T.VOID if term.value is None else term.value.type
            if ret_ty != fn.return_type:
                problems.append(
                    f"{where}: ret type {ret_ty} != function return type "
                    f"{fn.return_type}"
                )

    preds = fn.compute_predecessors()
    for block in fn.blocks:
        for phi in block.phis():
            incoming_blocks = set(phi.incoming_blocks)
            pred_set = set(preds[block])
            if incoming_blocks != pred_set:
                inc = sorted(b.name for b in incoming_blocks)
                pre = sorted(b.name for b in pred_set)
                problems.append(
                    f"{where}: phi {phi.ref()} in %{block.name} incoming "
                    f"blocks {inc} != predecessors {pre}"
                )

    if module is not None:
        for inst in fn.instructions():
            if isinstance(inst, CallInst):
                callee = module.functions.get(inst.callee.name)
                if callee is None:
                    problems.append(
                        f"{where}: call to unknown function @{inst.callee.name}"
                    )
                elif callee is not inst.callee:
                    problems.append(
                        f"{where}: call to @{inst.callee.name} references a "
                        f"function object not in the module"
                    )

    problems.extend(_check_ssa(fn, where))
    return problems


def _check_ssa(fn: Function, where: str) -> List[str]:
    problems: List[str] = []
    defined: Set[int] = set()
    for arg in fn.args:
        defined.add(id(arg))
    all_insts = []
    for block in fn.blocks:
        for inst in block.instructions:
            if id(inst) in defined:
                problems.append(f"{where}: instruction {inst.ref()} defined twice")
            defined.add(id(inst))
            all_insts.append(inst)

    # Every operand must be an argument, constant, global, function,
    # undef, or an instruction of this function.
    def check_operand(inst: Instruction, op: Value) -> None:
        if isinstance(op, (Constant, UndefValue, GlobalVariable, Function)):
            return
        if isinstance(op, Argument):
            if op.parent is not fn:
                problems.append(
                    f"{where}: {inst.ref()} uses argument of another function"
                )
            return
        if isinstance(op, Instruction):
            if id(op) not in defined:
                problems.append(
                    f"{where}: {inst.ref()} uses {op.ref()} which is not "
                    f"defined in this function"
                )
            return
        if isinstance(op, BasicBlock):
            return
        problems.append(f"{where}: {inst.ref()} has bad operand {op!r}")

    for inst in all_insts:
        for op in inst.operands:
            check_operand(inst, op)

    if problems:
        return problems

    # Dominance: a use must be dominated by its definition.
    try:
        domtree = DominatorTree(fn)
    except Exception as exc:  # pragma: no cover - defensive
        return [f"{where}: dominator computation failed: {exc}"]

    reachable = set(domtree.rpo)
    positions = {}
    for block in fn.blocks:
        for i, inst in enumerate(block.instructions):
            positions[id(inst)] = (block, i)

    def def_dominates_use(defn: Value, user: Instruction,
                          use_block: BasicBlock, use_index: int) -> bool:
        if not isinstance(defn, Instruction):
            return True  # args/constants dominate everything
        dblock, dindex = positions[id(defn)]
        if dblock is use_block:
            return dindex < use_index
        return domtree.strictly_dominates(dblock, use_block) or (
            domtree.dominates(dblock, use_block)
        )

    for block in fn.blocks:
        if block not in reachable:
            continue
        for i, inst in enumerate(block.instructions):
            if isinstance(inst, PhiInst):
                for value, pred in inst.incoming():
                    if pred not in reachable:
                        continue
                    term_index = len(pred.instructions)
                    if not def_dominates_use(value, inst, pred, term_index):
                        problems.append(
                            f"{where}: phi {inst.ref()} incoming {value.ref()} "
                            f"does not dominate edge from %{pred.name}"
                        )
                continue
            for op in inst.operands:
                if isinstance(op, Instruction):
                    if positions[id(op)][0] not in reachable:
                        problems.append(
                            f"{where}: {inst.ref()} uses value from "
                            f"unreachable block"
                        )
                    elif not def_dominates_use(op, inst, block, i):
                        problems.append(
                            f"{where}: use of {op.ref()} in {inst.ref()} is "
                            f"not dominated by its definition"
                        )
    return problems
