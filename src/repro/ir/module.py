"""Module: the top-level IR container (functions + globals)."""

from __future__ import annotations

from typing import Dict, List, Optional

from . import types as T
from .function import Function
from .values import GlobalVariable


class Module:
    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalVariable] = {}
        #: Monotonic structure stamp. Anything that caches derived data
        #: keyed on the module (the pre-decoded execution engine, the
        #: campaign golden-run cache) keys on this and is invalidated
        #: when it changes. Structural edits here bump it automatically;
        #: IR passes that mutate function bodies in place must call
        #: :meth:`bump_version` (the in-tree passes and ``PassManager``
        #: all do).
        self.version: int = 0
        #: (version, cost-model id) -> decoded module (see repro.cpu.engine).
        self._decoded_cache: Dict = {}
        #: (version, entry, args digest, eligibility key) -> golden-run
        #: triple (see repro.faults.campaign.golden_run).
        self._golden_cache: Dict = {}

    def bump_version(self) -> int:
        """Invalidate caches derived from this module's IR."""
        self.version += 1
        self._decoded_cache.clear()
        self._golden_cache.clear()
        return self.version

    # Functions ---------------------------------------------------------------

    def add_function(self, name: str, ftype: T.FunctionType,
                     arg_names: Optional[List[str]] = None) -> Function:
        if name in self.functions:
            raise ValueError(f"function {name} already defined")
        fn = Function(name, ftype, arg_names)
        fn.parent = self
        self.functions[name] = fn
        self.bump_version()
        return fn

    def declare_function(self, name: str, ftype: T.FunctionType) -> Function:
        """Declare (or fetch an existing declaration of) an external function."""
        existing = self.functions.get(name)
        if existing is not None:
            if existing.type != ftype:
                raise TypeError(
                    f"redeclaration of {name} with different type: "
                    f"{existing.type} vs {ftype}"
                )
            return existing
        return self.add_function(name, ftype)

    def get_function(self, name: str) -> Function:
        fn = self.functions.get(name)
        if fn is None:
            raise KeyError(f"no function named {name}")
        return fn

    def remove_function(self, name: str) -> None:
        del self.functions[name]
        self.bump_version()

    def defined_functions(self) -> List[Function]:
        return [f for f in self.functions.values() if not f.is_declaration]

    # Globals -----------------------------------------------------------------

    def add_global(self, name: str, content_type: T.Type, initializer=None,
                   constant: bool = False) -> GlobalVariable:
        if name in self.globals:
            raise ValueError(f"global {name} already defined")
        gv = GlobalVariable(name, content_type, initializer, constant)
        self.globals[name] = gv
        self.bump_version()
        return gv

    def get_global(self, name: str) -> GlobalVariable:
        gv = self.globals.get(name)
        if gv is None:
            raise KeyError(f"no global named {name}")
        return gv

    def clone_signature_into(self, other: "Module") -> None:
        """Copy global declarations into ``other`` (used by transforms
        that build a fresh module)."""
        for gv in self.globals.values():
            if gv.name not in other.globals:
                other.add_global(gv.name, gv.content_type, gv.initializer,
                                 gv.constant)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Module {self.name}: {len(self.functions)} functions, "
            f"{len(self.globals)} globals>"
        )
