"""Module: the top-level IR container (functions + globals)."""

from __future__ import annotations

from typing import Dict, List, Optional

from . import types as T
from .function import Function
from .values import GlobalVariable


class Module:
    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalVariable] = {}

    # Functions ---------------------------------------------------------------

    def add_function(self, name: str, ftype: T.FunctionType,
                     arg_names: Optional[List[str]] = None) -> Function:
        if name in self.functions:
            raise ValueError(f"function {name} already defined")
        fn = Function(name, ftype, arg_names)
        fn.parent = self
        self.functions[name] = fn
        return fn

    def declare_function(self, name: str, ftype: T.FunctionType) -> Function:
        """Declare (or fetch an existing declaration of) an external function."""
        existing = self.functions.get(name)
        if existing is not None:
            if existing.type != ftype:
                raise TypeError(
                    f"redeclaration of {name} with different type: "
                    f"{existing.type} vs {ftype}"
                )
            return existing
        return self.add_function(name, ftype)

    def get_function(self, name: str) -> Function:
        fn = self.functions.get(name)
        if fn is None:
            raise KeyError(f"no function named {name}")
        return fn

    def remove_function(self, name: str) -> None:
        del self.functions[name]

    def defined_functions(self) -> List[Function]:
        return [f for f in self.functions.values() if not f.is_declaration]

    # Globals -----------------------------------------------------------------

    def add_global(self, name: str, content_type: T.Type, initializer=None,
                   constant: bool = False) -> GlobalVariable:
        if name in self.globals:
            raise ValueError(f"global {name} already defined")
        gv = GlobalVariable(name, content_type, initializer, constant)
        self.globals[name] = gv
        return gv

    def get_global(self, name: str) -> GlobalVariable:
        gv = self.globals.get(name)
        if gv is None:
            raise KeyError(f"no global named {name}")
        return gv

    def clone_signature_into(self, other: "Module") -> None:
        """Copy global declarations into ``other`` (used by transforms
        that build a fresh module)."""
        for gv in self.globals.values():
            if gv.name not in other.globals:
                other.add_global(gv.name, gv.content_type, gv.initializer,
                                 gv.constant)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Module {self.name}: {len(self.functions)} functions, "
            f"{len(self.globals)} globals>"
        )
