"""Type system for the repro IR.

The IR is modelled after LLVM with *opaque pointers*: a pointer carries
no pointee type; instead, every memory instruction (load, store, gep,
alloca) names the type it accesses. This mirrors modern LLVM and keeps
the hardening passes simple: replicated pointers are plain 64-bit lane
values.

Types are immutable and interned where convenient; equality is
structural so freshly constructed types compare equal to the cached
singletons.
"""

from __future__ import annotations

from typing import Tuple

POINTER_SIZE = 8  # bytes, x86-64


class Type:
    """Base class for all IR types."""

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self) -> tuple:
        return ()

    # Convenience predicates -------------------------------------------------

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def is_int(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_vector(self) -> bool:
        return isinstance(self, VectorType)

    @property
    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    @property
    def is_scalar(self) -> bool:
        """True for values that fit in one general-purpose/FP register."""
        return self.is_int or self.is_float or self.is_pointer

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self}>"


class VoidType(Type):
    def __str__(self) -> str:
        return "void"


class IntType(Type):
    """Arbitrary-width integer; widths used in practice: 1, 8, 16, 32, 64."""

    def __init__(self, width: int):
        if width < 1 or width > 64:
            raise ValueError(f"unsupported integer width: {width}")
        self.width = width

    def _key(self) -> tuple:
        return (self.width,)

    def __str__(self) -> str:
        return f"i{self.width}"


class FloatType(Type):
    """IEEE-754 binary32 or binary64."""

    def __init__(self, bits: int):
        if bits not in (32, 64):
            raise ValueError(f"unsupported float width: {bits}")
        self.bits = bits

    def _key(self) -> tuple:
        return (self.bits,)

    def __str__(self) -> str:
        return "float" if self.bits == 32 else "double"


class PointerType(Type):
    """Opaque pointer (no pointee type)."""

    def __str__(self) -> str:
        return "ptr"


class VectorType(Type):
    """Fixed-width SIMD vector of scalar elements."""

    def __init__(self, elem: Type, count: int):
        if not elem.is_scalar:
            raise ValueError(f"vector element must be scalar, got {elem}")
        if count < 2:
            raise ValueError(f"vector needs >=2 elements, got {count}")
        self.elem = elem
        self.count = count

    def _key(self) -> tuple:
        return (self.elem, self.count)

    def __str__(self) -> str:
        return f"<{self.count} x {self.elem}>"


class ArrayType(Type):
    """Flat array; used for globals and aggregate allocas."""

    def __init__(self, elem: Type, count: int):
        if count < 0:
            raise ValueError("array length must be non-negative")
        self.elem = elem
        self.count = count

    def _key(self) -> tuple:
        return (self.elem, self.count)

    def __str__(self) -> str:
        return f"[{self.count} x {self.elem}]"


class FunctionType(Type):
    def __init__(self, ret: Type, params: Tuple[Type, ...]):
        self.ret = ret
        self.params = tuple(params)

    def _key(self) -> tuple:
        return (self.ret, self.params)

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params)
        return f"{self.ret} ({params})"


# Interned singletons --------------------------------------------------------

VOID = VoidType()
I1 = IntType(1)
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)
I64 = IntType(64)
F32 = FloatType(32)
F64 = FloatType(64)
PTR = PointerType()

_INT_CACHE = {1: I1, 8: I8, 16: I16, 32: I32, 64: I64}


def int_type(width: int) -> IntType:
    """Return the (cached, if standard-width) integer type of ``width`` bits."""
    cached = _INT_CACHE.get(width)
    return cached if cached is not None else IntType(width)


def vector(elem: Type, count: int) -> VectorType:
    return VectorType(elem, count)


def sizeof(ty: Type) -> int:
    """Size in bytes of a value of type ``ty`` when stored in memory.

    Sub-byte integers (i1 and the "esoteric" widths LLVM produces,
    e.g. i9) round up to whole bytes, matching typical data layouts.
    """
    if isinstance(ty, IntType):
        return max(1, (ty.width + 7) // 8)
    if isinstance(ty, FloatType):
        return ty.bits // 8
    if isinstance(ty, PointerType):
        return POINTER_SIZE
    if isinstance(ty, VectorType):
        return sizeof(ty.elem) * ty.count
    if isinstance(ty, ArrayType):
        return sizeof(ty.elem) * ty.count
    raise TypeError(f"type {ty} has no storage size")


def bitwidth(ty: Type) -> int:
    """Width in bits of a scalar type (for masking/overflow semantics)."""
    if isinstance(ty, IntType):
        return ty.width
    if isinstance(ty, FloatType):
        return ty.bits
    if isinstance(ty, PointerType):
        return POINTER_SIZE * 8
    raise TypeError(f"type {ty} has no bit width")
