"""repro.avx — AVX lane semantics and Haswell-flavoured cost tables."""

from .costs import (
    BRANCH_MISS_PENALTY,
    HASWELL,
    ISSUE_WIDTH,
    MEM_LATENCY,
    PROPOSED_AVX,
    CostModel,
    cost_model_by_name,
)
from .ops import (
    NoMajorityError,
    bits_to_float,
    flip_bit_float,
    flip_bit_int,
    float_to_bits,
    lanes_all_equal,
    majority_value,
    ptest_all_zero,
    ptest_classify,
    recover,
    shuffle_pairwise,
)

__all__ = [
    "BRANCH_MISS_PENALTY",
    "HASWELL",
    "ISSUE_WIDTH",
    "MEM_LATENCY",
    "PROPOSED_AVX",
    "CostModel",
    "NoMajorityError",
    "bits_to_float",
    "cost_model_by_name",
    "flip_bit_float",
    "flip_bit_int",
    "float_to_bits",
    "lanes_all_equal",
    "majority_value",
    "ptest_all_zero",
    "ptest_classify",
    "recover",
    "shuffle_pairwise",
]
