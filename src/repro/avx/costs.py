"""Instruction cost tables for the timing model.

Latencies are in cycles and are Haswell-flavoured (the paper's testbed
is a 2x14-core Haswell Xeon; §V-A): scalar integer ALU ops are 1 cycle,
scalar FP add/mul 3/5, AVX integer multiply 10 (vpmulld), AVX divide
missing entirely (per-lane scalar fallback), extract/broadcast lane
moves ~3 cycles, ptest 2. The *relative* magnitudes of these numbers —
not their absolute values — produce every performance shape in the
paper (Figures 11, 12, 14, 17, Tables III and IV).

Two profiles are exported:

- :data:`HASWELL` — models AVX2 as shipped, including the wrapper and
  check costs the paper complains about (§VII-A).
- :data:`PROPOSED_AVX` — models the paper's proposed ISA changes
  (§VII-B/D): gather/scatter-backed loads and stores (no
  extract/broadcast wrappers), comparisons that set FLAGS directly (no
  ptest), and FPGA-offloaded checks (checks cost ~0 on the fast path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: Issue width of the modelled core (uops/cycle, Haswell: 4).
ISSUE_WIDTH = 4

#: Reorder-buffer size (Haswell: 192 entries) — bounds how far apart in
#: the instruction stream execution can overlap.
ROB_SIZE = 192

#: Branch misprediction penalty in cycles (Haswell: ~15-20).
BRANCH_MISS_PENALTY = 15

#: Memory hierarchy latencies (cycles): L1 hit, L2, L3, DRAM.
MEM_LATENCY = {1: 4, 2: 12, 3: 36, 4: 200}

#: Haswell dispatches scalar ALU ops to 4 ports but vector ALU ops to
#: only 3 (p0/p1/p5) — one reason Table III shows lower ILP for ELZAR.
VECTOR_ALU_RTP = 1.0 / 3.0


@dataclass(frozen=True)
class CostModel:
    """Per-opcode latencies and uop counts for scalar and (256-bit)
    vector instruction forms.

    ``scalar``/``vector`` map opcode -> latency. ``uops_scalar`` /
    ``uops_vector`` map opcode -> issue slots consumed (default 1);
    multi-uop entries model instruction sequences the paper complains
    about (extract = vextracti128 + vpextrq, broadcast = vmovq +
    vpbroadcastq, the shuffle-xor-ptest check, ...). ``intrinsics``
    maps intrinsic name prefixes to (latency, uops). ``ports`` maps
    opcode -> (port name, reciprocal throughput) structural hazards;
    vector ALU ops additionally contend for the 3-wide vector port
    group.
    """

    name: str
    scalar: Dict[str, float]
    vector: Dict[str, float]
    intrinsics: Dict[str, tuple]
    ports: Dict[str, tuple]
    uops_scalar: Dict[str, int]
    uops_vector: Dict[str, int]
    vector_alu_rtp: float = VECTOR_ALU_RTP

    def scalar_latency(self, opcode: str, ty=None) -> float:
        if ty is not None and ty.is_float:
            fp = self.scalar.get("f" + opcode)
            if fp is not None:
                return fp
        return self.scalar.get(opcode, 1.0)

    def vector_latency(self, opcode: str, ty=None) -> float:
        if ty is not None and ty.is_float:
            fp = self.vector.get("f" + opcode)
            if fp is not None:
                return fp
        return self.vector.get(opcode, 1.0)

    def scalar_uops(self, opcode: str) -> int:
        return self.uops_scalar.get(opcode, 1)

    def vector_uops(self, opcode: str) -> int:
        return self.uops_vector.get(opcode, 1)

    def intrinsic_cost(self, name: str) -> tuple:
        """(latency, uops) for an intrinsic call, longest-prefix match."""
        best = None
        for prefix, cost in self.intrinsics.items():
            if name == prefix or name.startswith(prefix + "."):
                if best is None or len(prefix) > best[0]:
                    best = (len(prefix), cost)
        return best[1] if best else (2.0, 1)

    def intrinsic_latency(self, name: str) -> float:
        return self.intrinsic_cost(name)[0]


_SCALAR = {
    # Integer ALU
    "add": 1, "sub": 1, "and": 1, "or": 1, "xor": 1,
    "shl": 1, "lshr": 1, "ashr": 1,
    "mul": 3,
    "sdiv": 26, "udiv": 26, "srem": 26, "urem": 26,
    "icmp": 1, "select": 1, "gep": 1,
    # FP (scalar SSE)
    "fadd": 3, "fsub": 3, "fmul": 5, "fdiv": 16, "frem": 24,
    "fcmp": 3,
    # Casts
    "trunc": 1, "zext": 1, "sext": 1, "bitcast": 1,
    "ptrtoint": 1, "inttoptr": 1,
    "fptrunc": 4, "fpext": 2, "fptosi": 4, "fptoui": 4,
    "sitofp": 4, "uitofp": 4,
    # Memory / control (load adds cache latency separately)
    "load": 0, "store": 1, "alloca": 1,
    "br": 1, "ret": 2, "call": 2, "phi": 0, "unreachable": 0,
    # Vector-manipulation ops used in scalar context never occur.
}

_VECTOR_HASWELL = {
    # AVX2 integer
    "add": 1, "sub": 1, "and": 1, "or": 1, "xor": 1,
    "shl": 2, "lshr": 2, "ashr": 2,
    "mul": 10,                       # vpmulld / 64-bit emulation
    # No packed integer division: per-lane scalar fallback (4 divs +
    # extract/insert traffic), §III-C step 1 / §VII-A.
    "sdiv": 120, "udiv": 120, "srem": 120, "urem": 120,
    "icmp": 1, "select": 2, "gep": 3,
    # AVX FP
    "fadd": 3, "fsub": 3, "fmul": 5, "fdiv": 28, "frem": 80,
    "fcmp": 3,
    # Casts: truncation family is the pathological case (§VII-A: 8x
    # microbenchmark overhead), modelled via lane extraction.
    "trunc": 8, "zext": 3, "sext": 3, "bitcast": 1,
    "ptrtoint": 1, "inttoptr": 1,
    "fptrunc": 6, "fpext": 4, "fptosi": 8, "fptoui": 8,
    "sitofp": 6, "uitofp": 6,
    "phi": 0,
    # Lane-manipulation (vextracti128+vpextrq / vmovq+vpbroadcastq)
    "extractelement": 5, "insertelement": 5,
    "shufflevector": 3, "broadcast": 5,
    # Vector loads/stores (whole-YMM moves)
    "load": 0, "store": 1,
}

_INTRINSICS_HASWELL = {
    # (latency, uops)
    # ELZAR check on a sync operand: shuffle + xor + ptest + jcc (Fig 8).
    "elzar.check": (9, 5),
    "elzar.check_dmr": (9, 5),
    "elzar.branch_cond_dmr": (6, 4),
    # ELZAR branch: the cmp is charged separately; ptest + ja + je (Fig 9).
    "elzar.branch_cond": (6, 4),
    # Same, with the fault check (ja) removed — "checks disabled" still
    # pays the ptest because AVX has no other way to branch (§V-B).
    "elzar.branch_cond_nocheck": (6, 3),
    # Majority-vote recovery (slow path; rarely executed).
    "elzar.recover": (30, 12),
    # SWIFT-R majority vote: 2 compares + 2 cmovs.
    "tmr.vote": (3, 4),
    # SWIFT (DMR) comparison check: cmp + jcc.
    "swift.check": (1, 2),
    # Runtime helpers.
    "rt.alloc": (20, 4),
    "rt.print_i64": (50, 10), "rt.print_f64": (50, 10),
    "rt.abort": (1, 1),
    "host": (30, 10),
}

_PORTS = {
    # port name, reciprocal throughput (cycles the unit is busy per op)
    "load": ("load", 0.5),     # two load ports
    "store": ("store", 1.0),   # one store-data port (explains Table IV
                               # stores showing no AVX overhead)
    "sdiv": ("div", 20.0), "udiv": ("div", 20.0),
    "srem": ("div", 20.0), "urem": ("div", 20.0),
    "fdiv": ("div", 14.0),
    # FP execution units: Haswell retires one FP add (p1) and two FP
    # muls (p0/p1) per cycle, for scalar and 4-wide vector ops alike —
    # the structural reason ELZAR beats SWIFT-R on FP-dense kernels
    # (Figure 14): one vector op occupies the unit once where
    # triplication occupies it three times.
    "fadd": ("fpadd", 1.0), "fsub": ("fpadd", 1.0),
    "fcmp": ("fpadd", 1.0),
    "fmul": ("fpmul", 0.5),
}

_UOPS_SCALAR = {
    # Scalar ops are almost all single-uop; division microcodes.
    "sdiv": 10, "udiv": 10, "srem": 10, "urem": 10,
    "call": 3, "ret": 2, "frem": 8,
    # Scalar address arithmetic folds into x86 addressing modes (or a
    # free lea); ELZAR's *vector* geps are real vpaddq work — one of the
    # structural reasons hardened code issues so many more instructions.
    "gep": 0,
}

_UOPS_VECTOR_HASWELL = {
    # The wrapper sequences §VII-A blames for ELZAR's overhead:
    "gep": 2,              # index scale + vpaddq (scalar geps fold away)
    "extractelement": 2,   # vextracti128 + vpextrq
    "insertelement": 2,
    "broadcast": 2,        # vmovq + vpbroadcastq (GPR -> YMM)
    "shufflevector": 1,
    # Missing AVX2 instructions emulated with long sequences:
    "sdiv": 14, "udiv": 14, "srem": 14, "urem": 14,  # 4 divs + moves
    "mul": 2,              # 64-bit lane multiply emulation
    "trunc": 4, "fptosi": 2, "fptoui": 2,
    "frem": 8,
}

HASWELL = CostModel(
    name="haswell-avx2",
    scalar=dict(_SCALAR),
    vector=dict(_VECTOR_HASWELL),
    intrinsics=dict(_INTRINSICS_HASWELL),
    ports=dict(_PORTS),
    uops_scalar=dict(_UOPS_SCALAR),
    uops_vector=dict(_UOPS_VECTOR_HASWELL),
)

_VECTOR_PROPOSED = dict(_VECTOR_HASWELL)
_VECTOR_PROPOSED.update(
    {
        # Gather/scatter-backed replicated loads/stores: no lane moves.
        "extractelement": 1,
        "insertelement": 1,
        "broadcast": 1,
        "shufflevector": 1,
        "trunc": 2,                # AVX-512 vpmov family (§VII-B)
        "fptosi": 4, "fptoui": 4,
    }
)

_UOPS_VECTOR_PROPOSED = dict(_UOPS_VECTOR_HASWELL)
_UOPS_VECTOR_PROPOSED.update(
    {
        "extractelement": 1,
        "insertelement": 1,
        "broadcast": 1,
        "trunc": 1, "fptosi": 1, "fptoui": 1,
    }
)

_INTRINSICS_PROPOSED = dict(_INTRINSICS_HASWELL)
_INTRINSICS_PROPOSED.update(
    {
        "elzar.check": (1, 0),            # FPGA-offloaded (§VII-C)
        "elzar.branch_cond": (1, 1),      # cmp sets FLAGS directly (§VII-B)
        "elzar.branch_cond_nocheck": (1, 1),
    }
)

PROPOSED_AVX = CostModel(
    name="proposed-avx",
    scalar=dict(_SCALAR),
    vector=dict(_VECTOR_PROPOSED),
    intrinsics=dict(_INTRINSICS_PROPOSED),
    ports=dict(_PORTS),
    uops_scalar=dict(_UOPS_SCALAR),
    uops_vector=dict(_UOPS_VECTOR_PROPOSED),
)


def cost_model_by_name(name: str) -> CostModel:
    models = {m.name: m for m in (HASWELL, PROPOSED_AVX)}
    if name not in models:
        raise KeyError(f"unknown cost model {name!r}; have {sorted(models)}")
    return models[name]
