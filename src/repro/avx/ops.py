"""Lane-level semantics of the AVX operations ELZAR relies on.

These helpers implement the behaviours of Figures 2, 4, 7, 8 and 9 of
the paper on Python tuples standing in for YMM register contents:
ptest-style classification of comparison results, the shuffle–xor
equality check, and the extended majority-vote recovery of §III-C.
"""

from __future__ import annotations

import struct
from typing import Sequence, Tuple


class NoMajorityError(Exception):
    """Raised when recovery finds two 2-2 groups (§III-C scenario 3):
    the same fault pattern corrupted two lanes and there is no majority,
    so program execution must stop."""


def ptest_all_zero(lanes: Sequence[int]) -> bool:
    """Model of ``ptest`` ZF: true iff every bit of the register is 0."""
    return all(v == 0 for v in lanes)


def ptest_classify(bool_lanes: Sequence[int]) -> int:
    """Classify a lane-wise comparison result (Figure 9).

    Returns 0 for all-false, 1 for all-true, 2 for a true/false mix
    (which in an error-free execution is impossible and indicates a
    fault in one of the replicas).
    """
    total = sum(1 if v else 0 for v in bool_lanes)
    if total == 0:
        return 0
    if total == len(bool_lanes):
        return 1
    return 2


def shuffle_pairwise(lanes: Sequence) -> Tuple:
    """The rotation used by the check of Figure 8: lane i receives the
    value of lane (i+1) mod n, so xor-ing with the original yields
    all-zeros exactly when all lanes agree."""
    n = len(lanes)
    return tuple(lanes[(i + 1) % n] for i in range(n))


def lanes_all_equal(lanes: Sequence) -> bool:
    first = lanes[0]
    return all(v == first for v in lanes[1:])


def majority_value(lanes: Sequence):
    """Extended recovery (§III-C): return the value at least two lanes
    agree on; raise :class:`NoMajorityError` on a 2-2 split with two
    distinct candidate values; a single fault always recovers."""
    counts = {}
    for v in lanes:
        counts[v] = counts.get(v, 0) + 1
    best = max(counts.items(), key=lambda kv: kv[1])
    ties = [v for v, c in counts.items() if c == best[1]]
    if best[1] * 2 == len(lanes) and len(ties) > 1:
        raise NoMajorityError(
            f"no majority among lanes {tuple(lanes)}"
        )
    if best[1] < 2:
        raise NoMajorityError(
            f"all lanes disagree: {tuple(lanes)}"
        )
    return best[0]


def recover(lanes: Sequence) -> Tuple:
    """Majority-vote recovery: broadcast the majority value to every
    lane (Figure 8's slow path)."""
    value = majority_value(lanes)
    return (value,) * len(lanes)


# --- Bit-level views (used for float checks and fault injection) -----------


def float_to_bits(value: float, bits: int) -> int:
    fmt = "<f" if bits == 32 else "<d"
    ifmt = "<I" if bits == 32 else "<Q"
    return struct.unpack(ifmt, struct.pack(fmt, value))[0]


def bits_to_float(raw: int, bits: int) -> float:
    fmt = "<f" if bits == 32 else "<d"
    ifmt = "<I" if bits == 32 else "<Q"
    return struct.unpack(fmt, struct.pack(ifmt, raw & ((1 << bits) - 1)))[0]


def flip_bit_int(value: int, bit: int, width: int) -> int:
    return (value ^ (1 << (bit % width))) & ((1 << width) - 1)


def flip_bit_float(value: float, bit: int, bits: int) -> float:
    raw = float_to_bits(value, bits)
    return bits_to_float(raw ^ (1 << (bit % bits)), bits)
