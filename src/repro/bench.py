"""Engine throughput benchmark: compiled vs decoded vs reference.

Measures simulated instructions per wall-clock second for every kernel
under all three execution engines (``MachineConfig.engine``), both with
and without the timing model, and reports the speedup of each
accelerated tier over the reference interpreter. ``python -m repro
bench --suite engine`` and ``benchmarks/bench_engine_throughput.py``
both drive this module; the numbers land in ``BENCH_engine.json``.

The accelerated engines must be pure performance changes: outputs,
counters, and cycles are asserted equal across all three engines for
every workload measured (any drift fails the benchmark rather than
silently reporting a speedup for a different simulation).

:func:`run_suites` is the ``--suite engine|batch|snap|all`` entry point
that also fans out to :mod:`repro.bench_batch` (batched lane-parallel
injection, ``BENCH_batch.json``) and :mod:`repro.bench_snap`
(checkpoint-resumed injection, ``BENCH_snap.json``).
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, Sequence

from .cpu.interpreter import Machine, MachineConfig
from .workloads import ALL

DEFAULT_WORKLOADS = (
    "histogram", "kmeans", "linear_regression", "matrix_multiply",
    "blackscholes", "streamcluster", "swaptions",
)

#: Measurement order: the reference tier is the denominator of every
#: speedup; "decoded" is the trampoline over decoded records and
#: "compiled" adds closure-compiled block segments on the same
#: trampoline.
ENGINES = ("reference", "decoded", "compiled")

#: Benchmark suites ``run_suites`` knows how to drive.
SUITES = ("engine", "batch", "snap")


def _run(module, entry, args, engine: str, collect_timing: bool):
    machine = Machine(
        module, MachineConfig(engine=engine, collect_timing=collect_timing)
    )
    start = time.perf_counter()
    result = machine.run(entry, args)
    elapsed = time.perf_counter() - start
    return result, elapsed


def bench_workload(name: str, scale: str = "fi", repeats: int = 3,
                   collect_timing: bool = True) -> Dict:
    """Best-of-``repeats`` throughput for one kernel on all engines."""
    built = ALL[name].build_at(scale)
    module, entry, args = built.module, built.entry, built.args

    # Warm the decode and segment-compile caches so the one-time
    # translation cost is not billed to the first timed repeat (it is
    # amortised across campaign runs either way).
    _run(module, entry, args, "compiled", collect_timing)

    times: Dict[str, List[float]] = {engine: [] for engine in ENGINES}
    results = {}
    for _ in range(repeats):
        for engine in ENGINES:
            result, elapsed = _run(module, entry, args, engine, collect_timing)
            times[engine].append(elapsed)
            results[engine] = result

    ref = results["reference"]
    for engine in ("decoded", "compiled"):
        res = results[engine]
        if res.output != ref.output:
            raise AssertionError(f"{name}: {engine} engine outputs differ")
        if res.counters.as_dict() != ref.counters.as_dict():
            raise AssertionError(f"{name}: {engine} engine counters differ")
        if collect_timing and res.cycles != ref.cycles:
            raise AssertionError(f"{name}: {engine} engine cycles differ")

    instructions = ref.counters.instructions
    best = {engine: min(ts) for engine, ts in times.items()}
    row = {"workload": name, "scale": scale, "instructions": instructions}
    for engine in ENGINES:
        row[f"{engine}_seconds"] = best[engine]
        row[f"{engine}_ips"] = instructions / best[engine]
    row["decoded_speedup"] = best["reference"] / best["decoded"]
    row["compiled_speedup"] = best["reference"] / best["compiled"]
    # Headline number: the fastest tier over the reference interpreter.
    row["speedup"] = row["compiled_speedup"]
    return row


def _geomean(rows: List[Dict], key: str) -> Optional[float]:
    if not rows:
        return None
    product = 1.0
    for row in rows:
        product *= row[key]
    return product ** (1.0 / len(rows))


def bench_engine_throughput(scale: str = "fi", repeats: int = 3,
                            workloads: Optional[Sequence[str]] = None,
                            collect_timing: bool = True,
                            verbose: bool = True) -> List[Dict]:
    names = list(workloads) if workloads else list(DEFAULT_WORKLOADS)
    rows = []
    for name in names:
        row = bench_workload(name, scale, repeats, collect_timing)
        rows.append(row)
        if verbose:
            print(
                f"{name:<18} {row['instructions']:>10} instrs  "
                f"decoded {row['decoded_speedup']:>5.2f}x  "
                f"compiled {row['compiled_speedup']:>5.2f}x  "
                f"({row['compiled_ips'] / 1e3:.0f}k ips)"
            )
    if verbose and rows:
        print(f"{'geomean speedup':<18} "
              f"decoded {_geomean(rows, 'decoded_speedup'):>16.2f}x  "
              f"compiled {_geomean(rows, 'compiled_speedup'):>5.2f}x")
    return rows


def write_report(rows: List[Dict], path: str = "BENCH_engine.json") -> None:
    report = {
        "benchmark": "engine_throughput",
        "unit": "simulated instructions per second",
        "engines": list(ENGINES),
        "geomean_speedup": _geomean(rows, "compiled_speedup"),
        "geomean_decoded_speedup": _geomean(rows, "decoded_speedup"),
        "geomean_compiled_speedup": _geomean(rows, "compiled_speedup"),
        "rows": rows,
    }
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")


def run_suites(suite: str = "engine", scale: str = "fi",
               json_path: Optional[str] = None) -> int:
    """``python -m repro bench --suite ...``: run one benchmark suite
    (or ``all``) and persist its ``BENCH_*.json`` report.

    ``json_path`` overrides the output path when a single suite runs;
    with ``all`` each suite writes its default file name.
    """
    suites = list(SUITES) if suite == "all" else [suite]
    if json_path is not None and len(suites) > 1:
        raise ValueError("--json applies to a single --suite only")
    for name in suites:
        if name not in SUITES:
            raise ValueError(f"unknown bench suite {name!r}")
        if len(suites) > 1:
            print(f"== suite: {name}")
        if name == "engine":
            rows = bench_engine_throughput(scale=scale)
            out = json_path or "BENCH_engine.json"
            write_report(rows, out)
        elif name == "batch":
            from .bench_batch import bench_batch_injection
            from .bench_batch import write_report as write_batch

            rows = bench_batch_injection(scale=scale)
            out = json_path or "BENCH_batch.json"
            write_batch(rows, out)
        else:
            from .bench_snap import bench_checkpoint_injection
            from .bench_snap import write_report as write_snap

            rows = bench_checkpoint_injection(scale=scale)
            out = json_path or "BENCH_snap.json"
            write_snap(rows, out)
        print(f"-- wrote {out}")
    return 0
