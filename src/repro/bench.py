"""Engine throughput benchmark: decoded vs reference interpreter.

Measures simulated instructions per wall-clock second for every kernel
under both execution engines (``MachineConfig.engine``), both with and
without the timing model, and reports the speedup of the pre-decoded
engine. ``python -m repro bench`` and
``benchmarks/bench_engine_throughput.py`` both drive this module; the
latter persists the numbers to ``BENCH_engine.json``.

The decoded engine must be a pure performance change: outputs,
counters, and cycles are asserted equal between the two engines for
every workload measured (any drift fails the benchmark rather than
silently reporting a speedup for a different simulation).
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, Sequence

from .cpu.interpreter import Machine, MachineConfig
from .workloads import ALL

DEFAULT_WORKLOADS = (
    "histogram", "kmeans", "linear_regression", "matrix_multiply",
    "blackscholes", "streamcluster", "swaptions",
)


def _run(module, entry, args, engine: str, collect_timing: bool):
    machine = Machine(
        module, MachineConfig(engine=engine, collect_timing=collect_timing)
    )
    start = time.perf_counter()
    result = machine.run(entry, args)
    elapsed = time.perf_counter() - start
    return result, elapsed


def bench_workload(name: str, scale: str = "fi", repeats: int = 3,
                   collect_timing: bool = True) -> Dict:
    """Best-of-``repeats`` throughput for one kernel on both engines."""
    built = ALL[name].build_at(scale)
    module, entry, args = built.module, built.entry, built.args

    # Warm the decode cache so the one-time decode cost is not billed to
    # the first timed repeat (it is amortised across campaign runs).
    _run(module, entry, args, "decoded", collect_timing)

    times = {"decoded": [], "reference": []}
    results = {}
    for _ in range(repeats):
        for engine in ("decoded", "reference"):
            result, elapsed = _run(module, entry, args, engine, collect_timing)
            times[engine].append(elapsed)
            results[engine] = result

    dec, ref = results["decoded"], results["reference"]
    if dec.output != ref.output:
        raise AssertionError(f"{name}: engine outputs differ")
    if dec.counters.as_dict() != ref.counters.as_dict():
        raise AssertionError(f"{name}: engine counters differ")
    if collect_timing and dec.cycles != ref.cycles:
        raise AssertionError(f"{name}: engine cycle counts differ")

    instructions = dec.counters.instructions
    best = {engine: min(ts) for engine, ts in times.items()}
    return {
        "workload": name,
        "scale": scale,
        "instructions": instructions,
        "decoded_seconds": best["decoded"],
        "reference_seconds": best["reference"],
        "decoded_ips": instructions / best["decoded"],
        "reference_ips": instructions / best["reference"],
        "speedup": best["reference"] / best["decoded"],
    }


def bench_engine_throughput(scale: str = "fi", repeats: int = 3,
                            workloads: Optional[Sequence[str]] = None,
                            collect_timing: bool = True,
                            verbose: bool = True) -> List[Dict]:
    names = list(workloads) if workloads else list(DEFAULT_WORKLOADS)
    rows = []
    for name in names:
        row = bench_workload(name, scale, repeats, collect_timing)
        rows.append(row)
        if verbose:
            print(
                f"{name:<18} {row['instructions']:>10} instrs  "
                f"decoded {row['decoded_ips'] / 1e3:>7.0f}k ips  "
                f"reference {row['reference_ips'] / 1e3:>7.0f}k ips  "
                f"speedup {row['speedup']:.2f}x"
            )
    if verbose and rows:
        geomean = 1.0
        for row in rows:
            geomean *= row["speedup"]
        geomean **= 1.0 / len(rows)
        print(f"{'geomean speedup':<18} {geomean:.2f}x")
    return rows


def write_report(rows: List[Dict], path: str = "BENCH_engine.json") -> None:
    geomean = 1.0
    for row in rows:
        geomean *= row["speedup"]
    report = {
        "benchmark": "engine_throughput",
        "unit": "simulated instructions per second",
        "geomean_speedup": geomean ** (1.0 / len(rows)) if rows else None,
        "rows": rows,
    }
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
