"""Content-addressed checkpoint store.

Serialized checkpoint sets land *in the toolchain artifact cache
directory* (same root, same two-level fanout, a ``.snapset`` suffix
instead of ``.json``), so one ``--gc`` budget governs build artifacts
and checkpoints together and every fabric — lab shards, cluster
workers, the campaign service — shares a single set per cell instead
of each re-executing golden prefixes.

The key digests everything that could change the bytes of the set:

* the toolchain pipeline digest and the module's IR digest (workload +
  scale + variant are subsumed by the latter — any pass change or
  version bump invalidates cleanly to a miss, never a wrong state);
* the run coordinates: entry, args key, eligibility-predicate key;
* the machine geometry (engine, budget, cache sizes, heap/stack
  capacity, call depth, counter mode) — a checkpoint is only resumable
  on the machine shape that produced it;
* the fault model and placement config, which choose the capture
  points;
* the checkpoint serialization format version.

A set file is ``RSST`` + version + meta JSON + length-prefixed state
blobs + a blake2b trailer over everything before it; a bad trailer (or
any parse error) counts as invalid, removes the file, and reads as a
miss. Loads touch mtime, so :meth:`ArtifactCache.gc` LRU-evicts cold
sets exactly like cold build artifacts.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import tempfile
from typing import Dict, List, Optional, Sequence, Tuple

from ..toolchain.cache import CacheStats, _quietly_remove, _touch, \
    cache_disabled, default_cache_path
from ..toolchain.digest import digest_of
from .format import SNAP_VERSION

SNAPSET_MAGIC = b"RSST"
SNAPSET_SUFFIX = ".snapset"
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_DIGEST_LEN = 16


def _blob_digest(data: bytes) -> bytes:
    return hashlib.blake2b(data, digest_size=_DIGEST_LEN).digest()


def checkpoint_key(module, entry: str, args_key, ekey, model: str,
                   budget: int, machine_key: tuple,
                   placement_key: tuple) -> str:
    """The content address of one checkpoint set."""
    from ..toolchain.build import module_digest, toolchain_digest

    return digest_of([
        "snap-set", SNAP_VERSION,
        toolchain_digest(),
        module_digest(module),
        entry,
        list(args_key) if isinstance(args_key, tuple) else args_key,
        list(ekey) if isinstance(ekey, tuple) else ekey,
        model,
        budget,
        list(machine_key),
        list(placement_key),
    ])


def machine_key(config) -> tuple:
    """The machine-geometry component of :func:`checkpoint_key`."""
    return (
        config.engine,
        config.cost_model.name,
        bool(config.collect_timing),
        bool(config.cache_enabled),
        config.l1_size, config.l2_size, config.l3_size,
        config.max_instructions,
        config.heap_capacity, config.stack_capacity,
        bool(config.collect_by_opcode),
        config.max_call_depth,
    )


class SnapStore:
    """Persistent checkpoint-set store beside the artifact cache."""

    def __init__(self, root: Optional[str] = None):
        if root is None:
            self._root = None if cache_disabled() else default_cache_path()
        else:
            self._root = root
        self.stats = CacheStats()

    @classmethod
    def disabled(cls) -> "SnapStore":
        store = cls(root="")
        store._root = None
        return store

    @property
    def root(self) -> Optional[str]:
        return self._root

    @property
    def enabled(self) -> bool:
        return self._root is not None

    def _path(self, key: str) -> str:
        return os.path.join(self._root, key[:2], f"{key}{SNAPSET_SUFFIX}")

    # Lookup ------------------------------------------------------------------

    def load(self, key: str) -> Optional[Tuple[List[bytes], Dict]]:
        """The (state blobs, meta) stored under ``key``, or None.
        Validates the digest trailer; corrupt sets are discarded."""
        if not self.enabled:
            return None
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                data = fh.read()
            parsed = _parse_set(data)
        except OSError:
            self.stats.misses += 1
            return None
        if parsed is None:
            self.stats.misses += 1
            self.stats.invalid += 1
            _quietly_remove(path)
            return None
        self.stats.hits += 1
        _touch(path)
        return parsed

    # Store -------------------------------------------------------------------

    def store(self, key: str, blobs: Sequence[bytes], meta: Dict) -> bool:
        """Persist a checkpoint set atomically; False when disabled or
        unwritable (the campaign simply stays cold)."""
        if not self.enabled:
            return False
        path = self._path(key)
        body = _render_set(blobs, meta)
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=os.path.dirname(path), suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(body)
                os.replace(tmp, path)
            except BaseException:
                _quietly_remove(tmp)
                raise
        except OSError:
            return False
        self.stats.stores += 1
        return True

    # Introspection -----------------------------------------------------------

    def entries(self) -> List[Dict]:
        """Meta + size for every stored set (``python -m repro snap
        ls``). Unreadable sets are listed as invalid, not raised."""
        out: List[Dict] = []
        if not self.enabled or not os.path.isdir(self._root):
            return out
        for dirpath, _dirnames, filenames in os.walk(self._root):
            for name in sorted(filenames):
                if not name.endswith(SNAPSET_SUFFIX):
                    continue
                path = os.path.join(dirpath, name)
                key = name[:-len(SNAPSET_SUFFIX)]
                try:
                    with open(path, "rb") as fh:
                        data = fh.read()
                    parsed = _parse_set(data)
                except OSError:
                    continue
                row = {"key": key, "bytes": len(data)}
                if parsed is None:
                    row["invalid"] = True
                else:
                    blobs, meta = parsed
                    row.update(meta)
                    row["states"] = len(blobs)
                out.append(row)
        return out


def _render_set(blobs: Sequence[bytes], meta: Dict) -> bytes:
    meta_json = json.dumps(meta, sort_keys=True).encode("utf-8")
    parts = [SNAPSET_MAGIC, _U32.pack(SNAP_VERSION),
             _U32.pack(len(meta_json)), meta_json,
             _U32.pack(len(blobs))]
    for blob in blobs:
        parts.append(_U64.pack(len(blob)))
        parts.append(blob)
    body = b"".join(parts)
    return body + _blob_digest(body)


def _parse_set(data: bytes) -> Optional[Tuple[List[bytes], Dict]]:
    if len(data) < 12 + _DIGEST_LEN or data[:4] != SNAPSET_MAGIC:
        return None
    body, trailer = data[:-_DIGEST_LEN], data[-_DIGEST_LEN:]
    if _blob_digest(body) != trailer:
        return None
    try:
        (version,) = _U32.unpack_from(body, 4)
        if version != SNAP_VERSION:
            return None
        (meta_len,) = _U32.unpack_from(body, 8)
        pos = 12
        meta = json.loads(body[pos:pos + meta_len].decode("utf-8"))
        pos += meta_len
        (count,) = _U32.unpack_from(body, pos)
        pos += 4
        blobs = []
        for _ in range(count):
            (n,) = _U64.unpack_from(body, pos)
            pos += 8
            blobs.append(body[pos:pos + n])
            pos += n
        if pos != len(body):
            return None
    except (struct.error, ValueError):
        return None
    return blobs, meta
