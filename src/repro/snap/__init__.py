"""repro.snap — serializable mid-run checkpoints for O(tail) fault
injection.

The subsystem in three layers (docs/CHECKPOINT.md has the full story):

* :mod:`repro.cpu.resumable` (in the cpu package, beside the engine it
  extends) — explicit-frame trampoline execution of decoded functions,
  mid-run capture into :class:`~repro.cpu.resumable.ResumeState`, and
  bit-identical resume with mid-run fault arming;
* :mod:`repro.snap.format` / :mod:`repro.snap.store` — version-tagged
  binary serialization and the content-addressed on-disk store shared
  with the toolchain artifact cache;
* :mod:`repro.snap.placement` / :mod:`repro.snap.build` — the
  vulnerability-density placement policy and the builder that turns
  one golden capture run into a shared :class:`CheckpointSet`.

Campaigns pick checkpoints up transparently: ``run_plans`` /
``InjectionSession`` resolve each plan to the nearest checkpoint at or
before its fault site and execute only the tail.
"""

from .build import MIN_ELIGIBLE, CheckpointSet, build_checkpoints
from .format import (
    SNAP_VERSION,
    SnapFormatError,
    deserialize_state,
    serialize_state,
)
from .placement import CapturePolicy, PlacementConfig, make_policy
from .store import SnapStore, checkpoint_key, machine_key

__all__ = [
    "MIN_ELIGIBLE",
    "CheckpointSet",
    "build_checkpoints",
    "SNAP_VERSION",
    "SnapFormatError",
    "serialize_state",
    "deserialize_state",
    "CapturePolicy",
    "PlacementConfig",
    "make_policy",
    "SnapStore",
    "checkpoint_key",
    "machine_key",
]
