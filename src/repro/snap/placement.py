"""Adaptive checkpoint placement.

Checkpoints are spaced along the eligible-instruction stream of the
golden run. Uniform spacing wastes density on protected regions where
few fault plans ever land; the placement policy here leans on the
static window-of-vulnerability analysis
(:func:`repro.analysis.vulnerability.exposed_sites_for_model`):
functions whose sites are mostly exposed under the campaign's fault
model get intervals up to ``density_boost`` times denser than the
base, fully-protected functions get the sparse base interval. The
policy is a pure function of (module, fault model, config) — every
process derives the identical checkpoint set, which is what lets the
content-addressed store share one set across lab shards, cluster
workers and the service.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..analysis.vulnerability import (
    CHECKER_EXPOSED,
    PROTECTED,
    SYNC_EXPOSED,
    VulnerabilityReport,
    analyze_module,
)
from ..cpu.resumable import capture_state


@dataclass(frozen=True)
class PlacementConfig:
    """Deterministic placement knobs (part of the store key: changing
    any of them produces a different checkpoint set)."""

    #: Target number of checkpoints across the whole run.
    budget: int = 24
    #: Never place checkpoints closer than this many eligible
    #: instructions, no matter how exposed the region.
    min_interval: int = 256
    #: Interval divisor in fully-exposed functions (1.0 = uniform).
    density_boost: float = 4.0
    #: Hard cap on captured checkpoints (runaway guard for workloads
    #: whose eligible count dwarfs the profile estimate).
    max_checkpoints: int = 96

    def cache_key(self) -> tuple:
        return ("placement", 1, self.budget, self.min_interval,
                self.density_boost, self.max_checkpoints)


def _exposed_fraction(fv, model: str) -> float:
    """The share of a function's sites the model's stream can corrupt —
    the per-function analogue of ``exposed_sites_for_model``."""
    total = len(fv.sites)
    if not total:
        return 0.0
    if model == "address-bitflip":
        exposed = fv.count(SYNC_EXPOSED)
    elif model == "branch-flip":
        exposed = sum(1 for s in fv.sites
                      if s.category == SYNC_EXPOSED
                      and s.label.startswith("br.cond"))
    elif model == "checker-fault":
        exposed = fv.count(CHECKER_EXPOSED) + sum(
            1 for s in fv.sites
            if s.category == SYNC_EXPOSED
            and s.label.startswith("extractelement"))
    elif model == "instruction-skip":
        exposed = (fv.count(PROTECTED) + fv.count(SYNC_EXPOSED)
                   + fv.count(CHECKER_EXPOSED))
    elif model == "memory-bitflip":
        return 0.0  # outside the register-site analysis: uniform
    else:  # register-bitflip, multi-bitflip, and future reg-stream models
        exposed = fv.exposed
    return exposed / total


def function_intervals(module, eligible: int, model: str,
                       config: Optional[PlacementConfig] = None,
                       report: Optional[VulnerabilityReport] = None,
                       ) -> Dict[str, int]:
    """Per-function capture interval (eligible instructions between
    checkpoints while that function is on top of the stack), plus the
    ``""`` key holding the base interval."""
    config = config or PlacementConfig()
    base = max(config.min_interval, eligible // max(1, config.budget))
    if report is None:
        report = analyze_module(module)
    intervals = {"": base}
    for name, fv in report.functions.items():
        frac = _exposed_fraction(fv, model)
        divisor = 1.0 + (config.density_boost - 1.0) * frac
        intervals[name] = max(config.min_interval, int(base / divisor))
    return intervals


class CapturePolicy:
    """The live capture hook :func:`repro.cpu.resumable.run_stack`
    drives: ``next_index`` is the eligible index at which to take the
    next checkpoint, ``take`` copies the state and re-arms using the
    current function's interval."""

    __slots__ = ("intervals", "base", "limit", "next_index", "states")

    def __init__(self, intervals: Dict[str, int], limit: int):
        self.intervals = intervals
        self.base = intervals.get("", 256)
        self.limit = limit
        # Skip index 0: a checkpoint at the very start is just the
        # between-runs MachineSnapshot the session already holds.
        self.next_index = min(intervals.values()) if intervals else 256
        self.states: List = []

    def take(self, M, stack, executed) -> None:
        if len(self.states) >= self.limit:
            self.next_index = 1 << 62
            return
        self.states.append(capture_state(M, stack, executed))
        fn = stack[-1].dfn.fn.name if stack else ""
        step = self.intervals.get(fn, self.base)
        self.next_index = M.eligible_executed + step


def make_policy(module, eligible: int, model: str,
                config: Optional[PlacementConfig] = None) -> CapturePolicy:
    config = config or PlacementConfig()
    intervals = function_intervals(module, eligible, model, config)
    return CapturePolicy(intervals, config.max_checkpoints)
