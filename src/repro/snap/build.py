"""Checkpoint-set builder: one golden capture run per cell, shared by
every fabric through the content-addressed store.

``build_checkpoints`` is the single entry point: it resolves the
content key, serves the set from the in-process cache or the on-disk
:class:`~repro.snap.store.SnapStore`, and only on a true cold start
pays one ``count_only`` golden run on the resumable trampoline with
the placement policy's capture hook attached. The resulting
:class:`CheckpointSet` resolves fault plans to the nearest checkpoint
at or before their dynamic site (:meth:`CheckpointSet.nearest`, or
:meth:`nearest_for_all` for a batched lane group).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..cpu.resumable import ResumeState, covers, run_resumable, stream_mark
from .format import SnapFormatError, deserialize_state, serialize_state
from .placement import PlacementConfig, make_policy
from .store import SnapStore, checkpoint_key, machine_key

#: Below this many eligible instructions the golden prefix is too short
#: for checkpoints to pay for their capture run and restore cost;
#: campaigns fall back to plain between-runs snapshots.
MIN_ELIGIBLE = 2048


@dataclass
class CheckpointSet:
    """One cell's mid-run checkpoints, sorted by eligible index."""

    key: str
    model: str
    states: Tuple[ResumeState, ...]
    from_cache: bool

    @property
    def marks(self) -> List[int]:
        return [s.eligible for s in self.states]

    def nearest(self, plan) -> Optional[ResumeState]:
        """The latest checkpoint that still reaches ``plan``'s fault
        site, or None (site earlier than every checkpoint)."""
        best = None
        best_mark = -1
        for state in self.states:
            if covers(state, plan):
                mark = stream_mark(state, plan)
                if mark > best_mark:
                    best = state
                    best_mark = mark
        return best

    def nearest_for_all(self, plans: Sequence) -> Optional[ResumeState]:
        """The latest checkpoint that reaches *every* plan's site —
        the resume point for one batched lane group."""
        best = None
        for state in self.states:
            if all(covers(state, p) for p in plans):
                if best is None or state.eligible > best.eligible:
                    best = state
        return best


def build_checkpoints(module, entry: str, args: Sequence, *,
                      budget: int,
                      fault_eligible=None,
                      model: str,
                      eligible: int,
                      placement: Optional[PlacementConfig] = None,
                      store: Optional[SnapStore] = None,
                      ) -> Optional[CheckpointSet]:
    """The cell's checkpoint set, from (in order) the module's golden
    cache, the content-addressed store, or a fresh capture run.

    Returns None when checkpointing is off for this cell: unkeyable
    eligibility predicate (no safe content address), or a golden run
    too short to profit (``eligible < MIN_ELIGIBLE``).
    """
    from ..faults.campaign import _args_key, _eligibility_key, _fresh_machine

    ekey = _eligibility_key(fault_eligible)
    if ekey is None or eligible < MIN_ELIGIBLE:
        return None
    placement = placement or PlacementConfig()
    machine = _fresh_machine(module, max_instructions=budget,
                             fault_eligible=fault_eligible)
    key = checkpoint_key(
        module, entry, _args_key(args), ekey, model, budget,
        machine_key(machine.config), placement.cache_key(),
    )
    cache_slot = ("snap-set", key)
    cached = module._golden_cache.get(cache_slot)
    if cached is not None:
        return cached

    store = store if store is not None else SnapStore()
    loaded = store.load(key) if store.enabled else None
    if loaded is not None:
        blobs, _meta = loaded
        try:
            states = tuple(
                deserialize_state(blob, machine) for blob in blobs
            )
        except SnapFormatError:
            states = None
        if states is not None:
            cset = CheckpointSet(key=key, model=model, states=states,
                                 from_cache=True)
            module._golden_cache[cache_slot] = cset
            return cset

    # Cold: one count_only golden run on the trampoline, capturing at
    # the placement policy's points.
    machine.count_only = True
    policy = make_policy(module, eligible, model, placement)
    run_resumable(machine, entry, args, capture=policy)
    states = tuple(sorted(policy.states, key=lambda s: s.eligible))
    cset = CheckpointSet(key=key, model=model, states=states,
                         from_cache=False)
    module._golden_cache[cache_slot] = cset
    if store.enabled and states:
        blobs = [serialize_state(s, machine) for s in states]
        store.store(key, blobs, meta={
            "module": module.name,
            "entry": entry,
            "model": model,
            "budget": budget,
            "marks": cset.marks,
        })
    return cset
