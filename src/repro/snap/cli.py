"""``python -m repro snap`` — build and inspect mid-run checkpoints.

::

    python -m repro snap build                 # default FI cells
    python -m repro snap build --workloads histogram --variants elzar
    python -m repro snap ls                    # stored sets + meta
    python -m repro snap stats                 # store totals

``build`` warms the content-addressed store with one checkpoint set
per (workload, variant, fault model) cell — exactly what a campaign
would build lazily on first injection — so lab shards, cluster workers
and the service all start warm. A second ``build`` is a pure cache
pass (100% hits, zero capture runs); CI asserts that.
"""

from __future__ import annotations

import argparse
import json
from typing import List, Optional

from ..faults.campaign import CampaignConfig, golden_profile
from ..toolchain import default_toolchain
from ..workloads.registry import FI_BENCHMARKS
from .build import build_checkpoints
from .placement import PlacementConfig
from .store import SnapStore


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro snap",
        description="Build and inspect mid-run injection checkpoints.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="build (or warm-load) checkpoint "
                                         "sets for campaign cells")
    build.add_argument("--workloads", default=None, metavar="W1,W2|all",
                       help="workloads to build (default: the FI benchmark "
                            "set)")
    build.add_argument("--variants", default="native,elzar",
                       metavar="V1,V2", help="variants per workload "
                                             "(default: native,elzar)")
    build.add_argument("--scale", default="test",
                       choices=("test", "fi", "perf"))
    build.add_argument("--model", default=None, metavar="NAME",
                       help="fault model for placement density (default: "
                            "the registry default model)")
    build.add_argument("--budget", type=int, default=24,
                       help="checkpoints per run (default: 24)")
    build.add_argument("--json", metavar="PATH", default=None)

    ls = sub.add_parser("ls", help="list stored checkpoint sets")
    ls.add_argument("--json", metavar="PATH", default=None)

    stats = sub.add_parser("stats", help="store totals")
    stats.add_argument("--json", metavar="PATH", default=None)
    return parser


def _cmd_build(args) -> int:
    from ..faults.models import DEFAULT_MODEL

    if args.workloads is None:
        names = [w.name for w in FI_BENCHMARKS]
    elif args.workloads.strip() == "all":
        from ..workloads.registry import ALL
        names = sorted(ALL)
    else:
        names = [w.strip() for w in args.workloads.split(",") if w.strip()]
    variants = [v.strip() for v in args.variants.split(",") if v.strip()]
    model = args.model or DEFAULT_MODEL
    placement = PlacementConfig(budget=args.budget)
    toolchain = default_toolchain()
    store = SnapStore()
    config = CampaignConfig()
    rows = []
    for name in names:
        for variant in variants:
            built = toolchain.build(name, args.scale, variant)
            _, profile = golden_profile(built.module, built.entry,
                                        built.args)
            budget = int(profile.executed * config.hang_factor) + 10_000
            cset = build_checkpoints(
                built.module, built.entry, built.args, budget=budget,
                model=model, eligible=profile.eligible,
                placement=placement, store=store,
            )
            if cset is None:
                rows.append({"workload": name, "variant": variant,
                             "skipped": True,
                             "eligible": profile.eligible})
                print(f"  {name:<18} {variant:<12} skipped "
                      f"(eligible={profile.eligible})")
                continue
            rows.append({
                "workload": name, "variant": variant, "model": model,
                "key": cset.key, "states": len(cset.states),
                "marks": cset.marks, "from_cache": cset.from_cache,
                "eligible": profile.eligible,
            })
            source = "cache" if cset.from_cache else "built"
            print(f"  {name:<18} {variant:<12} {len(cset.states):>3} "
                  f"checkpoints  {source}  key {cset.key[:12]}")
    s = store.stats
    print(f"  snap store: {s.hits} hits, {s.misses} misses, "
          f"{s.stores} stores")
    report = {"model": model, "scale": args.scale, "cells": rows,
              "store": s.as_dict()}
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"-- wrote {args.json}")
    return 0


def _cmd_ls(args) -> int:
    store = SnapStore()
    entries = store.entries()
    if not entries:
        print("no checkpoint sets stored"
              + ("" if store.enabled else " (store disabled)"))
    for row in entries:
        if row.get("invalid"):
            print(f"  {row['key'][:16]}  INVALID  {row['bytes']} bytes")
            continue
        marks = row.get("marks", [])
        span = f"{marks[0]}..{marks[-1]}" if marks else "-"
        print(f"  {row['key'][:16]}  {row.get('module', '?'):<24} "
              f"@{row.get('entry', '?'):<16} {row.get('model', '?'):<18} "
              f"{row.get('states', 0):>3} states  eligible {span}  "
              f"{row['bytes'] / 1e3:.0f} kB")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump({"sets": entries}, fh, indent=2)
            fh.write("\n")
        print(f"-- wrote {args.json}")
    return 0


def _cmd_stats(args) -> int:
    store = SnapStore()
    entries = store.entries()
    total_bytes = sum(r["bytes"] for r in entries)
    total_states = sum(r.get("states", 0) for r in entries)
    invalid = sum(1 for r in entries if r.get("invalid"))
    print(f"checkpoint store: {store.root or '(disabled)'}")
    print(f"  {len(entries)} sets, {total_states} states, "
          f"{total_bytes / 1e6:.1f} MB, {invalid} invalid")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump({"root": store.root, "sets": len(entries),
                       "states": total_states, "bytes": total_bytes,
                       "invalid": invalid}, fh, indent=2)
            fh.write("\n")
        print(f"-- wrote {args.json}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "build":
        return _cmd_build(args)
    if args.command == "ls":
        return _cmd_ls(args)
    return _cmd_stats(args)
