"""Version-tagged binary serialization for mid-run checkpoints.

A :class:`~repro.cpu.resumable.ResumeState` is process-local in two
ways: branch-predictor PCs are keyed by ``id(inst)``, and the machine
components (counters, cache, predictor, timing) are live Python
objects. This module flattens all of it into a self-contained byte
string that any process holding the same module build can restore:

* branch PCs are rewritten to stable instruction coordinates —
  ``(function name, block index)`` of the conditional-branch
  terminator — and mapped back onto the reader's decoded module;
* component objects are encoded as class-tagged state dictionaries
  over a closed value domain (no pickle: only the allowlisted classes
  in ``_CLASSES`` can be instantiated, via ``__new__`` + ``__dict__``);
* floats are stored as raw IEEE-754 bits (``<d``) so resumed timing
  and register values are bit-exact, never ``repr``-rounded.

The format is versioned (:data:`SNAP_VERSION` inside :data:`MAGIC`'d
header); readers reject unknown versions and truncated payloads with
:class:`SnapFormatError`, which stores treat as a cache miss.
"""

from __future__ import annotations

import struct
from collections import deque
from typing import Dict, List, Tuple

from ..avx.costs import CostModel
from ..cpu.branch_predictor import GSharePredictor
from ..cpu.cache import Cache, CacheHierarchy, StreamPrefetcher
from ..cpu.counters import PerfCounters
from ..cpu.engine import _T_CONDBR, decoded_module
from ..cpu.resumable import FrameState, ResumeState
from ..cpu.timing import TimingModel

MAGIC = b"RSNP"
SNAP_VERSION = 1

_F64 = struct.Struct("<d")


class SnapFormatError(ValueError):
    """Raised for wrong magic, unknown version, truncated or corrupt
    payloads, and values outside the closed domain."""


# Allowlisted component classes. Objects are restored with
# ``cls.__new__(cls)`` + ``__dict__.update`` — adding a class here is a
# statement that its state is plain data and its ``__init__`` has no
# side effects a checkpoint must replay.
_CLASSES = {
    "PerfCounters": PerfCounters,
    "CacheHierarchy": CacheHierarchy,
    "Cache": Cache,
    "StreamPrefetcher": StreamPrefetcher,
    "GSharePredictor": GSharePredictor,
    "TimingModel": TimingModel,
    "CostModel": CostModel,
}
_CLASS_NAMES = {cls: name for name, cls in _CLASSES.items()}

# Value tags.
_T_NONE = 0
_T_TRUE = 1
_T_FALSE = 2
_T_INT = 3
_T_FLOAT = 4
_T_STR = 5
_T_BYTES = 6
_T_BYTEARRAY = 7
_T_TUPLE = 8
_T_LIST = 9
_T_DICT = 10
_T_DEQUE = 11
_T_OBJECT = 12


class _Writer:
    __slots__ = ("parts",)

    def __init__(self):
        self.parts: List[bytes] = []

    def u8(self, v: int) -> None:
        self.parts.append(bytes((v,)))

    def varint(self, v: int) -> None:
        # Unsigned LEB128.
        out = bytearray()
        while True:
            b = v & 0x7F
            v >>= 7
            if v:
                out.append(b | 0x80)
            else:
                out.append(b)
                break
        self.parts.append(bytes(out))

    def svarint(self, v: int) -> None:
        # Zigzag for signed (arbitrary-precision) ints.
        self.varint((v << 1) ^ (v >> (v.bit_length() + 1)) if v < 0
                    else v << 1)

    def raw(self, data: bytes) -> None:
        self.varint(len(data))
        self.parts.append(bytes(data))

    def value(self, v) -> None:
        t = type(v)
        if v is None:
            self.u8(_T_NONE)
        elif t is bool:
            self.u8(_T_TRUE if v else _T_FALSE)
        elif t is int:
            self.u8(_T_INT)
            self.svarint(v)
        elif t is float:
            self.u8(_T_FLOAT)
            self.parts.append(_F64.pack(v))
        elif t is str:
            self.u8(_T_STR)
            self.raw(v.encode("utf-8"))
        elif t is bytes:
            self.u8(_T_BYTES)
            self.raw(v)
        elif t is bytearray:
            self.u8(_T_BYTEARRAY)
            self.raw(v)
        elif t is tuple:
            self.u8(_T_TUPLE)
            self.varint(len(v))
            for item in v:
                self.value(item)
        elif t is list:
            self.u8(_T_LIST)
            self.varint(len(v))
            for item in v:
                self.value(item)
        elif t is dict:
            self.u8(_T_DICT)
            self.varint(len(v))
            for k, item in v.items():
                self.value(k)
                self.value(item)
        elif t is deque:
            self.u8(_T_DEQUE)
            self.varint(len(v))
            for item in v:
                self.value(item)
        else:
            name = _CLASS_NAMES.get(t)
            if name is None:
                raise SnapFormatError(
                    f"cannot serialize {t.__module__}.{t.__qualname__}"
                )
            self.u8(_T_OBJECT)
            self.raw(name.encode("ascii"))
            state = v.__dict__
            self.varint(len(state))
            for k, item in state.items():
                self.raw(k.encode("utf-8"))
                self.value(item)

    def getvalue(self) -> bytes:
        return b"".join(self.parts)


class _Reader:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def u8(self) -> int:
        pos = self.pos
        if pos >= len(self.data):
            raise SnapFormatError("truncated checkpoint payload")
        self.pos = pos + 1
        return self.data[pos]

    def varint(self) -> int:
        shift = 0
        out = 0
        while True:
            b = self.u8()
            out |= (b & 0x7F) << shift
            if not b & 0x80:
                return out
            shift += 7

    def svarint(self) -> int:
        z = self.varint()
        return (z >> 1) ^ -(z & 1)

    def raw(self) -> bytes:
        n = self.varint()
        pos = self.pos
        end = pos + n
        if end > len(self.data):
            raise SnapFormatError("truncated checkpoint payload")
        self.pos = end
        return self.data[pos:end]

    def value(self):
        tag = self.u8()
        if tag == _T_NONE:
            return None
        if tag == _T_TRUE:
            return True
        if tag == _T_FALSE:
            return False
        if tag == _T_INT:
            return self.svarint()
        if tag == _T_FLOAT:
            pos = self.pos
            end = pos + 8
            if end > len(self.data):
                raise SnapFormatError("truncated checkpoint payload")
            self.pos = end
            return _F64.unpack_from(self.data, pos)[0]
        if tag == _T_STR:
            return self.raw().decode("utf-8")
        if tag == _T_BYTES:
            return self.raw()
        if tag == _T_BYTEARRAY:
            return bytearray(self.raw())
        if tag == _T_TUPLE:
            return tuple(self.value() for _ in range(self.varint()))
        if tag == _T_LIST:
            return [self.value() for _ in range(self.varint())]
        if tag == _T_DICT:
            return {self.value(): self.value()
                    for _ in range(self.varint())}
        if tag == _T_DEQUE:
            return deque(self.value() for _ in range(self.varint()))
        if tag == _T_OBJECT:
            name = self.raw().decode("ascii")
            cls = _CLASSES.get(name)
            if cls is None:
                raise SnapFormatError(f"unknown checkpoint class {name!r}")
            obj = cls.__new__(cls)
            state = {}
            for _ in range(self.varint()):
                k = self.raw().decode("utf-8")
                state[k] = self.value()
            obj.__dict__.update(state)
            return obj
        raise SnapFormatError(f"unknown value tag {tag}")


def _condbr_coords(machine):
    """Stable coordinates for every conditional-branch terminator:
    ``id(inst) <-> (function name, block index)``. Both directions are
    deterministic functions of the module build, so PCs written by one
    process land on the same branches in another."""
    dmod = decoded_module(
        machine.module, machine.config.cost_model, machine.globals_addr
    )
    id2coord: Dict[int, Tuple[str, int]] = {}
    coord2id: Dict[Tuple[str, int], int] = {}
    for fn in machine.module.defined_functions():
        dfn = dmod.function(fn)
        for bi, block in enumerate(dfn.blocks):
            if block.term_kind == _T_CONDBR:
                inst = block.term[4]
                id2coord[id(inst)] = (fn.name, bi)
                coord2id[(fn.name, bi)] = id(inst)
    return id2coord, coord2id


def serialize_state(state: ResumeState, machine) -> bytes:
    """Flatten ``state`` to bytes. ``machine`` supplies the module
    build the coordinates are relative to (any machine configured like
    the one that will resume)."""
    id2coord, _ = _condbr_coords(machine)
    w = _Writer()
    w.parts.append(MAGIC)
    w.varint(SNAP_VERSION)
    w.raw(state.heap)
    w.raw(state.stack_mem)
    w.varint(state.heap_top)
    w.varint(state.stack_top)
    w.value(tuple(state.output))
    w.value(state.counters)
    w.value(state.cache)
    w.value(state.predictor)
    w.value(state.timing)
    pcs = []
    for key, pc in state.branch_pcs.items():
        coord = id2coord.get(key)
        if coord is None:
            raise SnapFormatError("branch PC outside the decoded module")
        pcs.append((coord[0], coord[1], pc))
    pcs.sort()
    w.value(pcs)
    w.varint(state.next_pc)
    w.varint(state.executed)
    w.varint(state.eligible)
    w.varint(state.checker_sites)
    w.varint(state.mem_accesses)
    w.varint(state.cond_branches)
    w.varint(len(state.frames))
    for fs in state.frames:
        w.raw(fs.fn.encode("utf-8"))
        w.varint(fs.block)
        w.varint(fs.i)
        w.value(fs.regs)
        w.value(fs.times)
        w.varint(fs.mark)
    return w.getvalue()


def deserialize_state(data: bytes, machine) -> ResumeState:
    """Inverse of :func:`serialize_state` against the reader's module
    build. Round-trips bit-exactly: resuming a deserialized state is
    indistinguishable from resuming the in-memory original."""
    if data[:4] != MAGIC:
        raise SnapFormatError("bad checkpoint magic")
    r = _Reader(data)
    r.pos = 4
    version = r.varint()
    if version != SNAP_VERSION:
        raise SnapFormatError(f"unsupported checkpoint version {version}")
    heap = r.raw()
    stack_mem = r.raw()
    heap_top = r.varint()
    stack_top = r.varint()
    output = r.value()
    counters = r.value()
    cache = r.value()
    predictor = r.value()
    timing = r.value()
    pcs = r.value()
    _, coord2id = _condbr_coords(machine)
    branch_pcs: Dict[int, int] = {}
    for fn_name, bi, pc in pcs:
        key = coord2id.get((fn_name, bi))
        if key is None:
            raise SnapFormatError(
                f"checkpoint branch @{fn_name}#{bi} not in this module"
            )
        branch_pcs[key] = pc
    next_pc = r.varint()
    executed = r.varint()
    eligible = r.varint()
    checker_sites = r.varint()
    mem_accesses = r.varint()
    cond_branches = r.varint()
    frames = []
    for _ in range(r.varint()):
        fn = r.raw().decode("utf-8")
        block = r.varint()
        i = r.varint()
        regs = r.value()
        times = r.value()
        mark = r.varint()
        frames.append(FrameState(fn=fn, block=block, i=i, regs=regs,
                                 times=times, mark=mark))
    return ResumeState(
        heap=heap,
        stack_mem=stack_mem,
        heap_top=heap_top,
        stack_top=stack_top,
        output=output,
        counters=counters,
        cache=cache,
        predictor=predictor,
        timing=timing,
        branch_pcs=branch_pcs,
        next_pc=next_pc,
        executed=executed,
        eligible=eligible,
        checker_sites=checker_sites,
        mem_accesses=mem_accesses,
        cond_branches=cond_branches,
        frames=tuple(frames),
    )
