#!/usr/bin/env python
"""Quickstart: harden a small program with ELZAR and watch it mask a
transient CPU fault.

Builds a tiny dot-product kernel with the IR builder, prints the IR
before and after the ELZAR transformation (compare with Figures 5/10 of
the paper), runs both versions, and finally injects a single-event
upset into a replicated register to show majority voting correcting it.

Run:  python examples/quickstart.py
"""

from repro.cpu import FaultPlan, Machine, MachineConfig
from repro.ir import IRBuilder, Module, format_function
from repro.ir import types as T
from repro.passes import elzar_transform


def build_dot_product() -> Module:
    module = Module("quickstart")
    module.add_global("a", T.ArrayType(T.I64, 16), list(range(16)))
    module.add_global("b", T.ArrayType(T.I64, 16), [i * 3 + 1 for i in range(16)])
    fn = module.add_function("dot", T.FunctionType(T.I64, (T.I64,)), ["n"])
    b = IRBuilder()
    b.position_at_end(fn.append_block("entry"))
    ga, gb = module.get_global("a"), module.get_global("b")
    loop = b.begin_loop(b.i64(0), fn.args[0])
    acc = b.loop_phi(loop, b.i64(0), "acc")
    x = b.load(T.I64, b.gep(T.I64, ga, loop.index))
    y = b.load(T.I64, b.gep(T.I64, gb, loop.index))
    b.set_loop_next(loop, acc, b.add(acc, b.mul(x, y)))
    b.end_loop(loop)
    b.ret(acc)
    return module


def main() -> None:
    module = build_dot_product()
    print("=== Original IR (compare Figure 5a) ===")
    print(format_function(module.get_function("dot")))

    hardened = elzar_transform(module)
    print("\n=== ELZAR-hardened IR (compare Figures 5c/10b) ===")
    print(format_function(hardened.get_function("dot")))

    native = Machine(module).run("dot", [16])
    elzar = Machine(hardened).run("dot", [16])
    print("\n=== Performance (simulated Haswell cycles) ===")
    print(f"native: result={native.value}  cycles={native.cycles:8.0f}  "
          f"ilp={native.ilp:.2f}")
    print(f"elzar : result={elzar.value}  cycles={elzar.cycles:8.0f}  "
          f"ilp={elzar.ilp:.2f}  (overhead {elzar.cycles / native.cycles:.2f}x)")
    assert native.value == elzar.value

    print("\n=== Fault injection ===")
    # Scan for an injection point that lands in a replicated register
    # (some dynamic values are scalar or architecturally dead).
    for index in range(200):
        machine = Machine(hardened, MachineConfig(collect_timing=False))
        machine.arm_fault(FaultPlan(target_index=index, bit=13, lane=2))
        result = machine.run("dot", [16])
        if machine.counters.corrections > 0:
            break
    print(f"bit 13 of SIMD lane 2 flipped at dynamic value #{index}...")
    print(f"result: {result.value} (still correct)")
    print(f"majority-vote corrections performed: "
          f"{machine.counters.corrections}")
    assert result.value == native.value


if __name__ == "__main__":
    main()
