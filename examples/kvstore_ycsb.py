#!/usr/bin/env python
"""Case study: a Memcached-like KV store under YCSB load (Figure 15a).

Builds the open-addressing KV store, drives it with YCSB workloads A
(50/50 read/update, zipfian) and D (95/5 read/insert, latest), hardens
it with ELZAR, and prints throughput across thread counts using the
paper's thread model. The store's poor memory locality hides much of
ELZAR's wrapper cost — the paper measures 72-85% of native throughput.

Run:  python examples/kvstore_ycsb.py
"""

from repro.analysis import render_table
from repro.apps import kvstore, workload_a, workload_d
from repro.cpu import Machine, MachineConfig
from repro.passes import elzar_transform, inline_module, mem2reg

THREADS = (1, 4, 8, 12, 16)


def measure(module, entry, args, nops) -> float:
    result = Machine(module, MachineConfig()).run(entry, args)
    return result.cycles / nops


def main() -> None:
    rows = []
    for trace_name, make_trace in (("A", workload_a), ("D", workload_d)):
        trace = make_trace(250, 512)
        app = kvstore.build(trace, table_size=1 << 11)
        base = mem2reg(app.module)
        inline_module(base, threshold=60)
        mem2reg(base)
        hardened = elzar_transform(base)

        native_cpo = measure(base, app.entry, app.args, len(trace.ops))
        elzar_cpo = measure(hardened, app.entry, app.args, len(trace.ops))

        for label, cpo in (("native", native_cpo), ("elzar", elzar_cpo)):
            row = [trace_name, label]
            for t in THREADS:
                row.append(kvstore.throughput(cpo, t) / 1e3)
            rows.append(tuple(row))
        ratio = kvstore.throughput(elzar_cpo, 16) / kvstore.throughput(
            native_cpo, 16
        )
        print(f"workload {trace_name}: ELZAR reaches {100 * ratio:.0f}% of "
              f"native throughput at 16 threads")

    print()
    print(
        render_table(
            "Memcached-like KV store: throughput (kops/s, modelled 2 GHz)",
            ("workload", "version") + tuple(f"t{t}" for t in THREADS),
            rows,
            digits=0,
        )
    )
    print(
        "\nThe read-heavy workload D keeps more of the native throughput\n"
        "than the update-heavy A — updates pay ELZAR's store checks on\n"
        "both the address and the value (§V-B)."
    )


if __name__ == "__main__":
    main()
