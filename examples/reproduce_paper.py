#!/usr/bin/env python
"""Regenerate every table and figure of the paper in one run.

This is the one-stop driver behind EXPERIMENTS.md: it renders Figures
1, 11, 12, 13, 14, 15, 17 and Tables II, III, IV plus the §V-B
float-only study. Expect it to take tens of minutes at the default
"perf" scale (the simulator interprets every instruction); pass "test"
for a quick but noisier pass.

Run:  python examples/reproduce_paper.py [perf|test] [fi_injections]
"""

import sys
import time

from repro.harness import (
    AppSession,
    Session,
    fig01_simd_speedup,
    fig11_overhead,
    fig12_checks_breakdown,
    fig13_fault_injection,
    fig14_swiftr_comparison,
    fig15_case_studies,
    fig17_proposed_avx,
    fp_only_overhead,
    table2_native_stats,
    table3_ilp,
    table4_micro,
)


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "perf"
    injections = int(sys.argv[2]) if len(sys.argv) > 2 else 150
    start = time.time()
    session = Session(scale)
    apps = AppSession(scale)

    experiments = [
        lambda: fig01_simd_speedup(session, apps),
        lambda: fig11_overhead(session),
        lambda: fig12_checks_breakdown(session),
        lambda: fig13_fault_injection(injections=injections),
        lambda: fig14_swiftr_comparison(session),
        lambda: fig15_case_studies(apps),
        lambda: fig17_proposed_avx(session),
        lambda: table2_native_stats(session),
        lambda: table3_ilp(session),
        lambda: table4_micro(session),
        lambda: fp_only_overhead(session),
    ]
    for make in experiments:
        experiment = make()
        print(experiment.render())
        print(f"-- elapsed {time.time() - start:.0f}s\n")


if __name__ == "__main__":
    main()
