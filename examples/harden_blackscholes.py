#!/usr/bin/env python
"""Option pricing under hardening: ELZAR's best case.

Prices a book of options with the Black-Scholes kernel (IR libm: exp,
log, sqrt, erf — hardened along with the application, like the paper's
musl build) and compares four builds: native, ELZAR, SWIFT-R, and the
stripped-down float-only ELZAR of §V-B.

Because blackscholes is FP-dominated with few memory accesses, one AVX
operation replaces what SWIFT-R computes three times — this is the
benchmark family where the paper found ELZAR *faster* than instruction
triplication (Figure 14: -34%).

Run:  python examples/harden_blackscholes.py
"""

from repro.analysis import render_table
from repro.avx import HASWELL, PROPOSED_AVX
from repro.cpu import Machine, MachineConfig
from repro.passes import (
    ElzarOptions,
    elzar_transform,
    inline_module,
    mem2reg,
    swiftr_transform,
)
from repro.workloads import get


def main() -> None:
    built = get("blackscholes").build_at("perf")
    base = mem2reg(built.module)
    inline_module(base)
    mem2reg(base)

    builds = {
        "native": (base, HASWELL),
        "elzar": (elzar_transform(base), HASWELL),
        "swift-r": (swiftr_transform(base), HASWELL),
        "elzar (floats only)": (
            elzar_transform(base, ElzarOptions(float_only=True)), HASWELL,
        ),
        "elzar (proposed AVX)": (elzar_transform(base), PROPOSED_AVX),
    }

    rows = []
    native_cycles = None
    for label, (module, costs) in builds.items():
        machine = Machine(module, MachineConfig(cost_model=costs))
        result = machine.run(built.entry, built.args)
        if native_cycles is None:
            native_cycles = result.cycles
        rows.append(
            (
                label,
                result.output[0],
                result.cycles,
                result.cycles / native_cycles,
                result.ilp,
                result.counters.uops,
            )
        )
    print(
        render_table(
            "Black-Scholes: total book value and simulated cost per build",
            ("build", "book_value", "cycles", "overhead", "ilp", "uops"),
            rows,
        )
    )
    print(
        "\nShapes to look for (paper §V-B, Figure 14, §VII-D):\n"
        " - every build prices the book identically;\n"
        " - ELZAR beats SWIFT-R here (vector FP ops cost one issue slot);\n"
        " - float-only protection is the cheapest hardened build;\n"
        " - the proposed-AVX ISA closes most of the remaining gap."
    )


if __name__ == "__main__":
    main()
