#!/usr/bin/env python
"""Fault-injection campaign: reproduce a slice of Figure 13.

Runs single-event-upset campaigns (paper §IV-B) against the histogram
and blackscholes kernels in three builds — native, ELZAR, and SWIFT-R —
and prints the Table-I outcome breakdown for each. Histogram shows the
worst ELZAR SDC rate (the extracted-address window of vulnerability,
§V-C); blackscholes the best.

Campaigns shard injections across forked worker processes
(``workers=``); the outcome counts are bit-identical to a serial run.

Run:  python examples/fault_injection_campaign.py [injections] [workers]
"""

import os
import sys

from repro.analysis import render_table
from repro.faults import CampaignConfig, Outcome, run_campaign
from repro.passes import elzar_transform, inline_module, mem2reg, swiftr_transform
from repro.workloads import get


def main() -> None:
    injections = int(sys.argv[1]) if len(sys.argv) > 1 else 120
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else (os.cpu_count() or 1)
    config = CampaignConfig(injections=injections, seed=2016,
                            workers=workers)
    rows = []
    for name in ("histogram", "blackscholes"):
        workload = get(name)
        built = workload.build_at("fi")
        base = mem2reg(built.module)
        inline_module(base)
        mem2reg(base)
        versions = {
            "native": base,
            "elzar": elzar_transform(base),
            "swift-r": swiftr_transform(base),
        }
        for version, module in versions.items():
            result = run_campaign(
                module, built.entry, built.args, name, version, config
            )
            rows.append(
                (
                    name,
                    version,
                    result.rate(Outcome.HANG),
                    result.rate(Outcome.OS_DETECTED) + result.rate(Outcome.DETECTED),
                    result.rate(Outcome.CORRECTED),
                    result.rate(Outcome.MASKED),
                    result.sdc_rate,
                )
            )
            print(f"... {name}/{version}: {injections} injections done")
    print()
    print(
        render_table(
            f"Fault-injection outcomes ({injections} SEUs per program, %)",
            ("benchmark", "version", "hang", "os/detected", "corrected",
             "masked", "SDC"),
            rows,
            digits=1,
        )
    )
    print(
        "\nExpected shape (Figure 13): hardening cuts SDC by ~5x; ELZAR's\n"
        "residual SDCs come from faults on extracted addresses/values\n"
        "in the scalar window between check and use (§V-C)."
    )


if __name__ == "__main__":
    main()
