#!/usr/bin/env python
"""Static inspection: what does each hardening scheme do to the code?

For one kernel, prints per-function static statistics (instruction
growth, replication coverage, wrapper/check densities) for ELZAR,
ELZAR without checks, fail-stop ELZAR, SWIFT-R, and SWIFT — the static
counterpart of Table III's dynamic instruction-increase factors.

Run:  python examples/inspect_hardening.py [workload]
"""

import sys

from repro.analysis import diff_reports, inspect_module, render_table
from repro.passes import (
    ElzarOptions,
    elzar_transform,
    inline_module,
    mem2reg,
    swift_transform,
    swiftr_transform,
)
from repro.workloads import get


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "blackscholes"
    built = get(name).build_at("test")
    mem2reg(built.module)
    inline_module(built.module)
    mem2reg(built.module)
    before = inspect_module(built.module)

    schemes = {
        "elzar": elzar_transform(built.module),
        "elzar (no checks)": elzar_transform(
            built.module, ElzarOptions.no_checks()
        ),
        "elzar (fail-stop)": elzar_transform(
            built.module, ElzarOptions(fail_stop=True)
        ),
        "swift-r": swiftr_transform(built.module),
        "swift (DMR)": swift_transform(built.module),
    }

    rows = []
    for label, module in schemes.items():
        after = inspect_module(module)
        for fn_name, static_before, static_after, growth, checks, wrappers in (
            diff_reports(before, after)
        ):
            if fn_name != built.entry:
                continue
            coverage = after.functions[fn_name].replication_coverage
            rows.append(
                (
                    label,
                    static_before,
                    static_after,
                    growth,
                    f"{100 * coverage:.0f}%",
                    checks,
                    wrappers,
                )
            )
    print(
        render_table(
            f"Static hardening statistics for @{built.entry} of {name}",
            ("scheme", "instrs_before", "instrs_after", "growth",
             "replicated", "checks", "wrappers"),
            rows,
        )
    )
    print(
        "\nReading: ELZAR's growth is wrappers + checks around scalar\n"
        "sync instructions (its compute stays 1:1 as vectors), while\n"
        "SWIFT-R's growth is the triplicated compute itself — the\n"
        "trade at the heart of the paper (§III-C, Table III)."
    )


if __name__ == "__main__":
    main()
